"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. on a fully offline machine where ``pip install -e .`` cannot build a
PEP-517 editable wheel).  When the package *is* installed, the editable /
develop installation takes precedence and this is a no-op.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
