"""Legacy setup shim.

The execution environment is fully offline and has no ``wheel`` package, so
PEP-517 editable installs cannot build a wheel.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
