"""Interactive visualisation/monitoring of a running MPI computation (§2.1).

"A grid application which supports connection and disconnection from the
user to visualize and/or monitor the ongoing computation.  Hence, the grid
application is likely to use at least two middleware systems: one or more
for the computation and another for visualization/monitoring."

Here a 2-node MPI Jacobi-style iteration runs on the Myrinet cluster while a
"user workstation" attaches over Ethernet through SOAP, polls the progress a
few times, then disconnects — all without touching the MPI code.

The run is observed through the flight recorder (:mod:`repro.telemetry`):
``fw.enable_telemetry()`` attaches the hub before boot, and the closing
summary is computed from the recorded event stream with
:func:`repro.telemetry.compute_kpis` — the same KPI view
``tools/kpi_report.py`` renders from an archived JSONL trace.

Run with:  python examples/visualization_attach.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core import PadicoFramework
from repro.middleware.mpi import MpiRuntime, SUM
from repro.middleware.soap import SoapClient, SoapServer
from repro.telemetry import compute_kpis


def main():
    fw = PadicoFramework()
    cluster = fw.add_cluster(["node0", "node1"], site="rennes")
    workstation = fw.add_host("workstation", site="rennes")
    # the workstation only shares the Ethernet with the cluster
    fw.network("eth-rennes").connect(workstation)
    # attach the flight recorder: every TCP flow and every frame on the
    # wire below the middleware shows up in the KPI summary at the end
    hub = fw.enable_telemetry()
    fw.boot()

    comms = [MpiRuntime(fw.node(h.name), cluster).comm_world for h in cluster]
    progress = {"iteration": 0, "residual": 1.0, "done": False}

    # the monitoring endpoint lives on node0, next to the computation
    monitor = SoapServer(fw.node("node0"), 18500)
    monitor.register("get_progress", lambda: [progress["iteration"], progress["residual"]])

    def worker(rank):
        comm = comms[rank]
        local = np.random.default_rng(rank).random(4096)
        residual = 1.0
        iteration = 0
        while residual > 1e-3 and iteration < 40:
            # halo exchange with the other rank, then a reduction
            yield from comm.sendrecv(
                local[:64].tobytes(), dest=1 - rank, source=1 - rank, sendtag=1, recvtag=1
            )
            local = local * 0.7
            residual = yield from comm.allreduce(float(np.abs(local).mean()), op=SUM)
            iteration += 1
            if rank == 0:
                progress.update(iteration=iteration, residual=residual)
        if rank == 0:
            progress["done"] = True
        return iteration

    def user_session():
        # the user attaches *while the computation runs*, polls, detaches
        client = SoapClient(fw.node("workstation"), fw.host("node0"), 18500)
        samples = []
        for _ in range(6):
            yield fw.sim.timeout(0.002)
            iteration, residual = yield from client.call("get_progress")
            samples.append((iteration, residual))
            print(f"[workstation] iteration={iteration:3d}  residual={residual:9.5f}")
        return samples

    procs = [fw.sim.process(worker(0)), fw.sim.process(worker(1)), fw.sim.process(user_session())]
    fw.sim.run(until=fw.sim.all_of(procs), max_time=120)

    print(f"\ncomputation finished after {procs[0].value} iterations "
          f"(virtual time {fw.sim.now * 1e3:.1f} ms)")
    print("MPI ran over:", fw.node('node0').circuits.circuit('vmad:mpi').route_for(1).method,
          "— monitoring ran over SOAP/Ethernet, concurrently, "
          "with no change to either middleware")

    # what the flight recorder saw, without instrumenting any middleware
    hub.flush()
    kpis = compute_kpis(hub.events, horizon=fw.sim.now)
    print(f"\nflight recorder: {kpis['events_total']} events")
    for net, rec in sorted(kpis["links"].items()):
        print(f"  {net:<14} {rec['frames']:>5} frames  {rec['bytes']:>9} B  "
              f"utilization {rec['utilization'] * 100:5.2f}%")
    fs = kpis["flow_summary"]
    print(f"  {fs['count']} TCP flows, {fs['completed']} with completed sends")


if __name__ == "__main__":
    main()
