"""Coupled parallel components across a grid (the §2.1 scenario).

Two clusters on different sites, each running an MPI "simulation component"
internally, are coupled through a CORBA interface across the VTHD WAN —
"a MPI-based component could be connected to a PVM-based component": here
cluster A runs MPI, cluster B runs PVM, and the coupler is CORBA.

Run with:  python examples/coupled_components.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core import two_cluster_grid
from repro.middleware.corba import Interface, ORB, OMNIORB_4, Operation, Servant, TC_DOUBLE_SEQ
from repro.middleware.mpi import MpiRuntime, SUM
from repro.middleware.pvm import PvmTask

COUPLER_IDL = Interface(
    "IDL:repro/Coupler:1.0",
    [Operation("exchange_boundary", params=(("values", TC_DOUBLE_SEQ),), result=TC_DOUBLE_SEQ)],
)


class BoundaryCoupler(Servant):
    """Lives on cluster B's head node: receives A's boundary, returns B's."""

    def __init__(self):
        self.last_received = None
        self.to_return = np.zeros(8)

    def exchange_boundary(self, values):
        self.last_received = np.asarray(values)
        return self.to_return


def main():
    fw, cluster_a, cluster_b, grid = two_cluster_grid(2)

    # --- cluster A: an MPI simulation component -------------------------------
    comms_a = [MpiRuntime(fw.node(h.name), cluster_a, channel_name="simA").comm_world
               for h in cluster_a]

    # --- cluster B: a PVM analysis component -----------------------------------
    pvm_b = [PvmTask(fw.node(h.name), cluster_b, circuit_name="simB") for h in cluster_b]

    # --- the CORBA coupler between the two, across the WAN ---------------------
    coupler = BoundaryCoupler()
    coupler.to_return = np.linspace(0.0, 1.0, 8)
    server_orb = ORB(fw.node(cluster_b[0].name), OMNIORB_4)
    client_orb = ORB(fw.node(cluster_a[0].name), OMNIORB_4)
    proxy = client_orb.object_to_proxy(
        server_orb.activate_object(coupler, COUPLER_IDL, key="coupler"), COUPLER_IDL
    )

    def mpi_head():
        # each MPI rank contributes a local boundary, reduced inside the cluster
        local = np.full(8, 1.0)
        boundary = yield from comms_a[0].allreduce(local, op=SUM)
        remote = yield from proxy.invoke("exchange_boundary", boundary)
        received = np.asarray(remote)[:3]
        print(f"[cluster A head] sent boundary {boundary[:3]}..., received {received}...")
        return np.asarray(remote)

    def mpi_worker():
        result = yield from comms_a[1].allreduce(np.full(8, 2.0), op=SUM)
        return result

    def pvm_head():
        # B's head forwards whatever the coupler received to its PVM worker
        yield fw.sim.timeout(0.5)  # wait until the coupling happened
        data = coupler.last_received if coupler.last_received is not None else np.zeros(8)
        pvm_b[0].initsend()
        pvm_b[0].pkdouble(data)
        pvm_b[0].send(pvm_b[1].mytid, tag=7)
        return data

    def pvm_worker():
        yield from pvm_b[1].recv(tag=7)
        values = pvm_b[1].upkdouble()
        print(f"[cluster B worker] received coupled boundary via PVM: {values[:3]}...")
        return values

    procs = [fw.sim.process(g()) for g in (mpi_head, mpi_worker, pvm_head, pvm_worker)]
    fw.sim.run(until=fw.sim.all_of(procs), max_time=120)

    routes = fw.node(cluster_a[0].name).circuits.circuit("vmad:simA").routes()
    print("\nintra-cluster MPI route (straight parallel path):",
          {rank: r.method for rank, r in routes.items()})
    print("coupling latency dominated by the WAN: 8 ms one-way, as in the paper")
    print(f"virtual time elapsed: {fw.sim.now * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
