"""Tuning wide-area transfers: parallel streams, compression, VRP (§3.2, §5).

Moves the same dataset across three kinds of long-distance links and shows
which alternate communication method the selector (or the user's
preferences) should pick for each:

* VTHD-class WAN        → parallel streams recover the access-link bandwidth,
* slow loss-free link   → AdOC compression pays off for compressible data,
* lossy trans-continental link → VRP trades a bounded loss for ~3x bandwidth.

Run with:  python examples/wan_transfer_tuning.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import paper_lossy_pair, paper_wan_pair
from repro.methods import register_method_drivers


def transfer(fw, group, method, total, port):
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(port)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, port, method=method)
        server = yield accept_op
        t0 = fw.sim.now
        sent = 0
        while sent < total:
            n = min(256 * 1024, total - sent)
            client.write(b"temperature=300.0;pressure=101325;" * (n // 34 + 1))
            sent += n
        yield server.read(sent)
        return sent / (fw.sim.now - t0)

    return fw.sim.run(until=fw.sim.process(scenario()), max_time=3600)


def main():
    print("== VTHD-class WAN (8 ms, Ethernet-100 access links) ==")
    for method in ("sysio", "parallel_streams"):
        fw, group = paper_wan_pair()
        for host in group:
            register_method_drivers(fw.node(host.name), streams=4)
        bw = transfer(fw, group, method, 8_000_000, 9400)
        print(f"  {method:18s}: {bw / 1e6:6.2f} MB/s")

    print("\n== lossy trans-continental link (5-10 % loss) ==")
    for method in ("sysio", "vrp", "adoc"):
        fw, group = paper_lossy_pair()
        for host in group:
            register_method_drivers(fw.node(host.name), vrp_tolerance=0.10)
        bw = transfer(fw, group, method, 1_000_000, 9500)
        print(f"  {method:18s}: {bw / 1e3:6.1f} KB/s")

    print("\npaper reference: TCP ~150 KB/s vs VRP(10%) ~500 KB/s on the lossy link;")
    print("                 ~9 MB/s single stream vs ~12 MB/s parallel streams on VTHD")


if __name__ == "__main__":
    main()
