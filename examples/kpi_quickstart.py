"""Flight-recorder quickstart: record a run, replay the trace, report KPIs.

The three-step observability loop of :mod:`repro.telemetry`:

1. **Record** — ``fw.enable_telemetry(jsonl_path=...)`` streams every
   telemetry event (TCP flow lifecycle, per-frame link occupancy, churn,
   monitor pushes) to a JSONL trace while the simulation runs.
2. **Replay** — :func:`repro.telemetry.verify_replay` re-reads the trace
   and proves it reproduces the live run's KPI document byte-for-byte;
   the archived file is a complete, offline-analysable record.
3. **Report** — ``tools/kpi_report.py`` renders the same KPI view from
   the trace alone (here driven in-process; in CI it runs on artifacts).

Run with:  python examples/kpi_quickstart.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

from repro.core import PadicoFramework
from repro.simnet.networks import WanVthd
from repro.telemetry import verify_replay

import kpi_report


def main():
    trace_path = os.path.join(tempfile.mkdtemp(prefix="kpi-quickstart-"), "trace.jsonl")

    # -- 1. record: two Ethernet clusters joined by a WAN ------------------
    fw = PadicoFramework(fidelity="hybrid")
    fw.add_cluster(["a0", "a1", "a2"], site="alpha", myrinet=False)
    fw.add_cluster(["b0", "b1", "b2"], site="beta", myrinet=False)
    wan = fw.add_network(WanVthd(fw.sim, "wan-alpha-beta"))
    for gateway in ("a0", "b0"):
        fw.attach(gateway, "wan-alpha-beta")

    hub = fw.enable_telemetry(jsonl_path=trace_path)
    fw.boot()
    fw.monitoring.watch(wan, coalesce=8)

    def serve(session):
        session.set_data_handler(lambda link: link.read_available())

    # an in-cluster bulk transfer (collapses into the fluid fast path under
    # fidelity="hybrid") and a cross-cluster stream relayed over the WAN
    fw.node("a2").vlink_listen(9000).set_accept_callback(serve)
    fw.node("a1").vlink_connect(fw.node("a2"), 9000).add_callback(
        lambda ev: ev.value.write(b"x" * 4_000_000)
    )
    fw.node("b1").vlink_listen(9100).set_accept_callback(serve)
    fw.node("a1").vlink_connect(fw.node("b1"), 9100).add_callback(
        lambda ev: ev.value.write(b"y" * 400_000)
    )

    # seeded churn on the WAN, so the availability KPI has something to say
    injector = fw.fault_injector(seed=31)
    injector.fail_link_at(1.0, wan)
    injector.recover_link_at(1.6, wan)

    fw.run(until=3.0)
    horizon = fw.sim.now
    fw.disable_telemetry()  # flushes the JSONL stream
    print(f"recorded {len(hub.events)} events -> {trace_path}")

    # -- 2. replay: the trace reproduces the live KPIs byte-for-byte -------
    verify_replay(hub.events, trace_path, horizon=horizon)
    print("replay verified: trace KPIs == live KPIs (byte-identical)\n")

    # -- 3. report: what CI runs on the archived artifact ------------------
    kpi_report.main([trace_path, "--horizon", str(horizon)])


if __name__ == "__main__":
    main()
