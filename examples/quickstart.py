"""Quickstart: boot the paper's cluster and measure the headline numbers.

Builds the 2-node Myrinet-2000 + Ethernet-100 cluster of the paper, runs an
MPI ping-pong and a CORBA invocation over the *same* Myrinet network at the
same time, and prints the Table-1 style latencies/bandwidths.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import paper_cluster
from repro.bench import (
    CircuitTransport,
    CorbaTransport,
    MpiTransport,
    VLinkTransport,
    measure_bandwidth,
    measure_latency,
)
from repro.bench.report import ResultTable
from repro.middleware.corba import OMNIORB_4
from repro.middleware.mpi import MPICH_1_2_5


def main():
    rows = {
        "Circuit (parallel abstraction)": lambda fw, g: CircuitTransport(fw, g),
        "VLink (distributed abstraction)": lambda fw, g: VLinkTransport(fw, g),
        "MPICH-1.2.5": lambda fw, g: MpiTransport(fw, g, profile=MPICH_1_2_5),
        "omniORB-4.0.0": lambda fw, g: CorbaTransport(fw, g, profile=OMNIORB_4),
    }
    table = ResultTable(
        "Paper cluster: one-way latency (us) and bandwidth (MB/s) over Myrinet-2000",
        ["latency_us", "bandwidth_MBps"],
    )
    for name, maker in rows.items():
        fw, group = paper_cluster(2)
        latency = measure_latency(maker(fw, group), size=8, iterations=10)
        fw2, group2 = paper_cluster(2)
        bandwidth = measure_bandwidth(maker(fw2, group2), size=1_000_000, repeats=2)
        table.add_row(name, [latency * 1e6, bandwidth / 1e6])
    print(table.render())
    print()
    fw, group = paper_cluster(2)
    print("Deployment report:", fw.status_report()["adjacency"])


if __name__ == "__main__":
    main()
