"""Tests for the Madeleine library and the NetAccess arbitration layer."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.host import Host, HostGroup
from repro.simnet.networks import Ethernet100, Myrinet2000, SciNetwork
from repro.madeleine import (
    MadeleineDriver,
    MadeleineError,
    MadIncoming,
    MadMessage,
    PackMode,
)
from repro.madeleine.message import decode_segments, encode_segments, segment_overhead
from repro.arbitration import MadIO, NetAccessCore, SysIO
from repro.arbitration.netaccess import ArbitrationError


def myrinet_pair():
    sim = Simulator()
    net = Myrinet2000(sim)
    a, b = Host(sim, "n0"), Host(sim, "n1")
    net.connect(a)
    net.connect(b)
    return sim, net, a, b, HostGroup("g", [a, b])


# --------------------------------------------------------------------------
# Madeleine messages
# --------------------------------------------------------------------------


def test_pack_modes_roundtrip():
    msg = MadMessage(1)
    msg.pack_express(b"hdr").pack_cheaper(b"body")
    raw = msg.finish()
    incoming = MadIncoming(0, raw)
    assert incoming.unpack_express() == b"hdr"
    assert incoming.unpack_cheaper() == b"body"
    incoming.end_unpacking(require_drained=True)


def test_pack_after_finish_rejected():
    msg = MadMessage(1)
    msg.pack(b"x")
    msg.finish()
    with pytest.raises(MadeleineError):
        msg.pack(b"y")
    with pytest.raises(MadeleineError):
        msg.finish()


def test_unpack_mode_mismatch_detected():
    msg = MadMessage(1)
    msg.pack_cheaper(b"data")
    incoming = MadIncoming(0, msg.finish())
    with pytest.raises(MadeleineError):
        incoming.unpack(PackMode.EXPRESS)


def test_unpack_past_end_and_drain_check():
    msg = MadMessage(1)
    msg.pack(b"only")
    incoming = MadIncoming(0, msg.finish())
    incoming.unpack()
    with pytest.raises(MadeleineError):
        incoming.unpack()
    msg2 = MadMessage(1)
    msg2.pack(b"a").pack(b"b")
    incoming2 = MadIncoming(0, msg2.finish())
    incoming2.unpack()
    with pytest.raises(MadeleineError):
        incoming2.end_unpacking(require_drained=True)


def test_segment_encoding_roundtrip_and_overhead():
    segments = [(PackMode.EXPRESS, b"h"), (PackMode.CHEAPER, b"x" * 100)]
    raw = encode_segments(segments)
    assert len(raw) == 101 + segment_overhead(2)
    assert decode_segments(raw) == segments
    with pytest.raises(MadeleineError):
        decode_segments(raw[:-5])


def test_message_accounting():
    msg = MadMessage(1)
    msg.pack_express(b"1234").pack_cheaper(b"x" * 10)
    assert msg.segment_count == 2
    assert msg.payload_bytes == 14
    assert msg.express_bytes == 4


# --------------------------------------------------------------------------
# Madeleine driver / channels
# --------------------------------------------------------------------------


def test_madeleine_end_to_end_delivery():
    sim, net, a, b, group = myrinet_pair()
    ch_a = MadeleineDriver(a).open_channel("c", net, group)
    ch_b = MadeleineDriver(b).open_channel("c", net, group)
    got = {}

    def on_msg(incoming, delivery):
        got["express"] = incoming.unpack_express()
        got["bulk"] = incoming.unpack_cheaper()
        got["src"] = incoming.src_rank

    ch_b.set_receive_callback(on_msg)
    ch_a.send(1, b"HDR", b"PAYLOAD" * 100)
    sim.run()
    assert got["express"] == b"HDR"
    assert got["bulk"] == b"PAYLOAD" * 100
    assert got["src"] == 0
    assert ch_a.connection(1).messages_sent == 1
    assert ch_b.connection(0).messages_received == 1


def test_madeleine_hardware_channel_limit():
    sim, net, a, b, group = myrinet_pair()
    driver = MadeleineDriver(a)
    driver.open_channel("one", net, group)
    driver.open_channel("two", net, group)
    with pytest.raises(MadeleineError):
        driver.open_channel("three", net, group)  # Myrinet allows only 2


def test_sci_allows_single_channel():
    sim = Simulator()
    net = SciNetwork(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    group = HostGroup("g", [a, b])
    driver = MadeleineDriver(a)
    driver.open_channel("only", net, group)
    with pytest.raises(MadeleineError):
        driver.open_channel("more", net, group)


def test_madeleine_rejects_distributed_network():
    sim = Simulator()
    eth = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    eth.connect(a)
    eth.connect(b)
    with pytest.raises(MadeleineError):
        MadeleineDriver(a).open_channel("c", eth, HostGroup("g", [a, b]))


def test_madeleine_send_to_self_or_bad_rank_rejected():
    sim, net, a, b, group = myrinet_pair()
    ch = MadeleineDriver(a).open_channel("c", net, group)
    with pytest.raises(MadeleineError):
        ch.begin_packing(0)  # self
    with pytest.raises(MadeleineError):
        ch.begin_packing(5)


def test_madeleine_non_member_cannot_open():
    sim, net, a, b, group = myrinet_pair()
    c = Host(sim, "outsider")
    net.connect(c)
    with pytest.raises(MadeleineError):
        MadeleineDriver(c).open_channel("c", net, group)


# --------------------------------------------------------------------------
# NetAccess core
# --------------------------------------------------------------------------


def test_netaccess_priority_changes_dispatch_cost():
    sim = Simulator()
    h = Host(sim, "h")
    core = NetAccessCore(h)
    core.register_subsystem("madio")
    core.register_subsystem("sysio")
    base = core.dispatch_cost("madio")
    core.set_priority("madio", 4.0)
    assert core.dispatch_cost("madio") < base
    assert core.dispatch_cost("sysio") > base
    with pytest.raises(ArbitrationError):
        core.set_priority("unknown", 1.0)
    with pytest.raises(ArbitrationError):
        core.set_priority("madio", 0.0)


def test_netaccess_single_subsystem_has_no_interleave_penalty():
    sim = Simulator()
    core = NetAccessCore(Host(sim, "h"))
    core.register_subsystem("madio")
    assert core.dispatch_cost("madio") == pytest.approx(core.host.cpu.callback_overhead)


def test_netaccess_competitive_baseline_starves_others():
    sim = Simulator()
    core = NetAccessCore(Host(sim, "h"))
    core.register_subsystem("madio")
    core.register_subsystem("sysio")
    cooperative = core.dispatch_cost("sysio")
    core.set_competitive_baseline("madio")
    assert core.dispatch_cost("sysio") > 100 * cooperative
    assert core.dispatch_cost("madio") < 1e-6
    core.set_competitive_baseline(None)
    assert core.dispatch_cost("sysio") == pytest.approx(cooperative)
    with pytest.raises(ArbitrationError):
        core.set_competitive_baseline("nope")


def test_netaccess_accounting_and_report():
    sim = Simulator()
    core = NetAccessCore(Host(sim, "h"))
    core.register_subsystem("sysio")
    from repro.simnet.cost import Cost

    cost = Cost()
    core.charge_dispatch("sysio", cost, nbytes=100)
    report = core.fairness_report()
    assert report["sysio"]["dispatches"] == 1
    assert report["sysio"]["bytes"] == 100
    assert cost.seconds > 0


# --------------------------------------------------------------------------
# MadIO
# --------------------------------------------------------------------------


def build_madio_pair(combine_headers=True):
    sim, net, a, b, group = myrinet_pair()
    madio_a = MadIO(NetAccessCore(a), combine_headers=combine_headers)
    madio_b = MadIO(NetAccessCore(b), combine_headers=combine_headers)
    madio_a.attach(net, group)
    madio_b.attach(net, group)
    return sim, net, group, madio_a, madio_b


def test_madio_logical_multiplexing_beyond_hardware_channels():
    """MadIO provides arbitrarily many logical channels over one hw channel."""
    sim, net, group, ma, mb = build_madio_pair()
    received = {}
    channels = []
    for i in range(8):  # far more than Myrinet's 2 hardware channels
        ca = ma.open_logical_channel(f"chan{i}", net)
        cb = mb.open_logical_channel(f"chan{i}", net)
        cb.set_receive_callback(
            lambda src, hdr, body, d, i=i: received.setdefault(i, (hdr, body))
        )
        channels.append(ca)
    for i, ca in enumerate(channels):
        ca.send(1, f"h{i}".encode(), f"b{i}".encode())
    sim.run()
    assert len(received) == 8
    assert received[3] == (b"h3", b"b3")


def test_madio_requires_attach():
    sim, net, a, b, group = myrinet_pair()
    madio = MadIO(NetAccessCore(a))
    with pytest.raises(ArbitrationError):
        madio.open_logical_channel("x", net)
    with pytest.raises(ArbitrationError):
        madio.group_on(net)


def test_madio_header_combining_overhead_below_tenth_of_microsecond():
    """§4.1: 'the overhead of MadIO over plain Madeleine is less than 0.1 us'."""

    def one_way_latency(use_madio, combine=True):
        sim, net, a, b, group = myrinet_pair()
        out = {}
        if use_madio:
            ma = MadIO(NetAccessCore(a), combine_headers=combine)
            mb = MadIO(NetAccessCore(b), combine_headers=combine)
            ma.attach(net, group)
            mb.attach(net, group)
            ca = ma.open_logical_channel("bench", net)
            cb = mb.open_logical_channel("bench", net)
            cb.set_receive_callback(lambda s, h, body, d: out.setdefault("t", d.ready_time()))
            t0 = sim.now
            ca.send(1, b"H" * 8, b"x" * 8)
        else:
            ch_a = MadeleineDriver(a).open_channel("bench", net, group)
            ch_b = MadeleineDriver(b).open_channel("bench", net, group)
            ch_b.set_receive_callback(lambda inc, d: out.setdefault("t", d.ready_time()))
            t0 = sim.now
            ch_a.send(1, b"H" * 8, b"x" * 8)
        sim.run()
        return out["t"] - t0

    plain = one_way_latency(use_madio=False)
    combined = one_way_latency(use_madio=True, combine=True)
    uncombined = one_way_latency(use_madio=True, combine=False)
    assert combined - plain < 0.25e-6  # small overall (includes dispatch)
    assert combined - plain < 0.1e-6 + 0.16e-6  # multiplexing itself < 0.1 us
    assert uncombined > combined  # the ablation: separate headers cost more


def test_madio_rank_translation_for_subgroups():
    sim = Simulator()
    net = Myrinet2000(sim)
    hosts = [Host(sim, f"n{i}") for i in range(3)]
    for h in hosts:
        net.connect(h)
    full = HostGroup("full", hosts)
    sub = HostGroup("sub", [hosts[2], hosts[0]])  # reversed order subset
    madios = []
    for h in hosts:
        m = MadIO(NetAccessCore(h))
        m.attach(net, full)
        madios.append(m)
    got = {}
    c2 = madios[2].open_logical_channel("s", net, sub)
    c0 = madios[0].open_logical_channel("s", net, sub)
    c0.set_receive_callback(lambda src, h, b, d: got.setdefault("msg", (src, b)))
    # host2 is rank 0 of `sub`, host0 is rank 1 of `sub`
    c2.send(1, b"", b"hello")
    sim.run()
    assert got["msg"] == (0, b"hello")


# --------------------------------------------------------------------------
# SysIO
# --------------------------------------------------------------------------


def test_sysio_callback_receipt_loop():
    sim = Simulator()
    eth = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    eth.connect(a)
    eth.connect(b)
    sys_a = SysIO(NetAccessCore(a))
    sys_b = SysIO(NetAccessCore(b))
    got = {}

    def on_accept(sock):
        sock.set_data_callback(lambda s: got.setdefault("data", s.read_available()))

    sys_b.listen(6000, on_accept)

    def client():
        sock = yield sys_a.connect(b, 6000)
        sock.write(b"callback-me")

    sim.process(client())
    sim.run(max_time=10)
    assert got["data"] == b"callback-me"
    assert sys_b.dispatches >= 1
    assert sys_b.core.stats("sysio").dispatches >= 1


def test_sysio_duplicate_port_rejected():
    sim = Simulator()
    eth = Ethernet100(sim)
    a = Host(sim, "a")
    eth.connect(a)
    sysio = SysIO(NetAccessCore(a))
    sysio.listen(7000)
    with pytest.raises(ArbitrationError):
        sysio.listen(7000)
