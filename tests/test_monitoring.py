"""Tests for the dynamic-topology subsystem: probes, estimators, the
TopologyMonitor feedback loop, churn injection, and the TopologyKB
runtime-mutation API."""

import random

import pytest

from tests.helpers import run

from repro.abstraction import AbstractionError, LinkClass, TopologyChange
from repro.abstraction.topology import LOSSY_THRESHOLD
from repro.core import PadicoFramework
from repro.monitoring import (
    ActivePingProbe,
    EwmaEstimator,
    FaultInjector,
    LinkEstimator,
    LinkSample,
    PassiveLinkProbe,
    SlidingWindowEstimator,
    poisson_thinning_times,
)
from repro.simnet.networks import Ethernet100, WanVthd


def wan_pair_with_backup():
    """edge--wan--remote plus a gateway path (edge--lan--gw--wan2--remote)."""
    fw = PadicoFramework()
    edge = fw.add_host("edge", site="s1")
    gw = fw.add_host("gw", site="s1")
    remote = fw.add_host("remote", site="s2")
    wan = fw.add_network(WanVthd(fw.sim, "wan-direct"))
    lan = fw.add_network(Ethernet100(fw.sim, "lan"))
    wan2 = fw.add_network(WanVthd(fw.sim, "wan-backup", seed=777))
    wan.connect(edge), wan.connect(remote)
    lan.connect(edge), lan.connect(gw)
    wan2.connect(gw), wan2.connect(remote)
    return fw, edge, gw, remote, wan, lan, wan2


# --------------------------------------------------------------------------
# Estimators
# --------------------------------------------------------------------------


def test_ewma_estimator_converges():
    est = EwmaEstimator(alpha=0.5)
    assert est.value is None
    for _ in range(20):
        est.update(10.0)
    assert est.value == pytest.approx(10.0)
    for _ in range(40):
        est.update(20.0)
    assert est.value == pytest.approx(20.0, rel=1e-3)
    assert est.samples == 60


def test_sliding_window_estimator_windows():
    est = SlidingWindowEstimator(window=4)
    for x in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        est.update(x)
    assert est.mean() == pytest.approx((3 + 4 + 5 + 6) / 4)
    assert est.maximum() == 6.0


def test_link_estimator_tracks_loss_and_death_signal():
    est = LinkEstimator(window=10, min_samples=4)
    for i in range(10):
        est.update(LinkSample(at=i * 0.1, kind="ping", latency=0.008, bandwidth=1e7))
    measured = est.estimate()
    assert measured is not None
    assert measured.loss_rate == 0.0
    assert measured.latency == pytest.approx(0.008)
    for i in range(6):
        est.update(LinkSample(at=1.0 + i * 0.1, kind="ping", lost=True))
    assert est.consecutive_lost == 6
    assert est.estimate().loss_rate > 0.3


# --------------------------------------------------------------------------
# Probes
# --------------------------------------------------------------------------


def test_passive_probe_observes_real_traffic():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    fw.boot()
    samples = []
    probe = PassiveLinkProbe(wan, samples.append)
    listener = fw.node("remote").vlink_listen(7000)

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 7000)
        server = yield accept_op
        client.write(b"x" * 100_000)
        data = yield server.read(100_000)
        return data

    assert len(run(fw, scenario())) == 100_000
    assert probe.frames > 0 and len(samples) > 0
    ok = [s for s in samples if not s.lost and s.latency is not None]
    assert ok, "passive probe must extract latency samples from real frames"
    assert ok[0].latency == pytest.approx(wan.latency)
    bw = [s.bandwidth for s in ok if s.bandwidth is not None]
    assert bw and bw[0] == pytest.approx(wan.bandwidth, rel=0.05)
    probe.detach()
    assert probe._observe not in wan._observers


def test_passive_probe_sees_tcp_window_model_losses():
    """The TCP model draws losses internally (no frames drop); the surfaced
    per-burst observations must give a *passive-only* watch an honest loss
    estimate on a TCP-carried WAN hop."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    wan.loss_rate = 0.02  # well above VTHD residual: estimate converges fast
    fw.boot()
    watch = fw.monitoring.watch(wan, active=False)  # passive only: no pings
    listener = fw.node("remote").vlink_listen(7050)
    total = 600_000

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(
            fw.node("remote"), 7050, method="sysio"
        )
        server = yield accept_op
        client.write(b"z" * total)
        data = yield server.read(total)
        return data

    assert len(run(fw, scenario(), max_time=300)) == total
    estimate = watch.estimator.estimate()
    assert estimate is not None, "TCP bursts alone must feed the estimator"
    # honest loss: within a factor of ~3 of the model's configured rate on a
    # windowed estimate (sliding window of per-burst fractions), and
    # decidedly non-zero — the pre-fix passive estimate was exactly 0.0
    assert estimate.loss_rate > 0.004
    assert estimate.loss_rate < 3 * wan.loss_rate
    # honest enough to drive monitoring-derived method parameters
    fw.topology.apply_measurement(wan, loss_rate=estimate.loss_rate)
    params = fw.selector.derive_method_params("vrp", wan, reliable=False)
    assert params.get("tolerance", 0.0) > 0.0


def test_passive_only_watch_works_on_lossless_tcp_link():
    """Zero-loss bursts are reported too: a passive-only watch on a
    loss-free TCP-carried link must still reach an estimate (TCP data
    frames alone no longer count as loss samples), and the loss estimate
    must decay back down after a degraded link recovers."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    wan.loss_rate = 0.0
    fw.boot()
    # a small sliding window keeps the decay phase of the test short (the
    # lossless 400 KB transfer contributes only a handful of bursts)
    watch = fw.monitoring.watch(wan, active=False, window=16)
    total = 400_000

    def transfer(port):
        listener = fw.node("remote").vlink_listen(port)

        def scenario():
            accept_op = listener.accept()
            client = yield fw.node("edge").vlink_connect(
                fw.node("remote"), port, method="sysio"
            )
            server = yield accept_op
            client.write(b"z" * total)
            data = yield server.read(total)
            return data

        assert len(run(fw, scenario(), max_time=300)) == total

    transfer(7060)
    estimate = watch.estimator.estimate()
    assert estimate is not None, "lossless TCP traffic must still gate the estimator open"
    assert estimate.loss_rate == 0.0
    assert estimate.bandwidth is not None
    # degrade, transfer (loss accumulates), recover, transfer again: the
    # windowed estimate must fall back toward zero on the zero-loss bursts
    wan.loss_rate = 0.05
    transfer(7061)
    degraded = watch.estimator.estimate().loss_rate
    assert degraded > 0.004
    wan.loss_rate = 0.0
    transfer(7062)
    transfer(7063)  # the sliding window displaces degraded-era samples
    recovered = watch.estimator.estimate().loss_rate
    assert recovered < degraded / 2


def test_tcp_burst_samples_are_liveness_neutral():
    """Burst loss draws happen sender-side before the wire is consulted, so
    they must never touch the failure-detector signal — a blackholed link
    keeps producing 0.0-fraction bursts while every ping is lost."""
    est = LinkEstimator(window=8, min_samples=1)
    est.update(LinkSample(at=0.0, kind="ping", lost=True))
    est.update(LinkSample(at=0.1, kind="ping", lost=True))
    assert est.consecutive_lost == 2
    est.update(LinkSample(at=0.2, kind="tcp", loss_fraction=1.0))
    est.update(LinkSample(at=0.3, kind="tcp", loss_fraction=0.0))
    assert est.consecutive_lost == 2  # neither refutes nor argues death
    # a frame sample only exists when the wire accepted the frame: it refutes
    est.update(LinkSample(at=0.4, kind="frame", latency=0.001, count_loss=False))
    assert est.consecutive_lost == 0
    # and the fractions feed the windowed loss rate (the frame, being
    # count_loss=False, does not)
    assert est.estimate().loss_rate == pytest.approx((1.0 + 1.0 + 1.0 + 0.0) / 4)


def test_dead_link_detection_survives_tcp_traffic():
    """Failure detection end-to-end: TCP keeps pumping into a blackholed
    wire (its sender-side bursts draw ~zero loss), but the run of lost
    active pings still marks the link down."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    fw.boot()
    fw.monitoring.watch(wan, interval=0.02, seed=11)
    listener = fw.node("remote").vlink_listen(7070)

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(
            fw.node("remote"), 7070, method="sysio"
        )
        yield accept_op
        client.write(b"a" * 64_000)
        yield fw.sim.timeout(0.05)
        wan.up = False  # silent death: only the probes can tell
        # keep the TCP sender pumping into the blackhole throughout
        for _ in range(10):
            client.write(b"b" * 64_000)
            yield fw.sim.timeout(0.1)
        return fw.topology.is_link_up(wan)

    assert run(fw, scenario(), max_time=120) is False
    fw.monitoring.stop()


def test_active_probe_is_seeded_and_sees_degradation():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()

    def collect(seed):
        est = LinkEstimator(window=64, min_samples=1)
        probe = ActivePingProbe(wan, est.update, interval=0.01, seed=seed)
        injector = FaultInjector(fw.sim, fw.topology, seed=1, announce=False)
        injector.degrade_link_at(0.5, wan, loss_rate=0.30)
        fw.sim.run(until=1.5)
        probe.cancel()
        return probe.sent, probe.lost, est.estimate().loss_rate

    sent, lost, loss = collect(seed=7)
    assert sent >= 100
    assert lost > 0, "degraded link must lose active probes"
    assert loss > LOSSY_THRESHOLD


def test_poisson_thinning_is_deterministic_and_rate_bounded():
    rate_fn = lambda t: 2.0 + 2.0 * (t > 5.0)  # noqa: E731
    a = poisson_thinning_times(random.Random(42), rate_fn, horizon=10.0, rate_max=4.0)
    b = poisson_thinning_times(random.Random(42), rate_fn, horizon=10.0, rate_max=4.0)
    assert a == b and len(a) > 5
    assert all(0.0 <= t < 10.0 for t in a)
    early = sum(1 for t in a if t <= 5.0)
    late = len(a) - early
    assert late > early  # the second half runs at twice the rate
    with pytest.raises(ValueError):
        poisson_thinning_times(random.Random(0), lambda t: 9.0, 10.0, rate_max=4.0)


# --------------------------------------------------------------------------
# TopologyMonitor feedback loop
# --------------------------------------------------------------------------


def test_monitor_reclassifies_lossy_wan_and_invalidates_selection():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    fw.boot()
    from repro.methods import register_wan_method_drivers

    register_wan_method_drivers(fw.node("edge"))
    register_wan_method_drivers(fw.node("remote"))
    fw.monitoring.watch(wan, interval=0.01, seed=3)
    injector = fw.fault_injector(seed=5, announce=False)  # detection via probes
    injector.degrade_link_at(0.2, wan, loss_rate=0.20)

    assert fw.topology.classify_network(wan) is LinkClass.WAN
    before = fw.selector.choose_vlink(edge, remote, ["vrp", "sysio"])
    assert before.method == "sysio"

    fw.sim.run(until=2.0)
    assert fw.monitoring.pushes >= 1
    assert fw.monitoring.reclassifications >= 1
    assert fw.topology.classify_network(wan) is LinkClass.LOSSY_WAN
    after = fw.selector.choose_vlink(edge, remote, ["vrp", "sysio"])
    assert after.method == "vrp"
    assert fw.topology.link_profile(edge, remote).measured


def test_monitor_marks_dead_link_down_and_recovers():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    fw.monitoring.watch(wan, interval=0.01, seed=3, min_samples=2)
    injector = fw.fault_injector(seed=5, announce=False)
    injector.fail_link_at(0.3, wan)
    injector.recover_link_at(1.0, wan)

    fw.sim.run(until=0.9)
    assert not fw.topology.is_link_up(wan)
    assert fw.topology.link_class(edge, remote) is LinkClass.NONE  # only routed now
    fw.sim.run(until=2.0)
    assert fw.topology.is_link_up(wan)
    assert fw.monitoring.links_marked_down == 1
    assert fw.monitoring.links_marked_up == 1


# --------------------------------------------------------------------------
# Churn: oracle-mode faults and gateway death
# --------------------------------------------------------------------------


def test_fault_injector_oracle_mode_flips_routes():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    assert len(fw.routing.host_path(edge, remote)) == 1
    injector = fw.fault_injector(seed=9)
    injector.fail_link_at(0.1, wan)
    fw.sim.run(until=0.2)
    hops = fw.routing.host_path(edge, remote)
    assert [h.dst.name for h in hops] == ["gw", "remote"]
    injector.recover_link_at(0.3, wan)
    fw.sim.run(until=0.4)
    assert len(fw.routing.host_path(edge, remote)) == 1
    kinds = [e.kind for e in injector.log]
    assert kinds == ["fail-link", "recover-link"]


def test_flap_link_schedule_is_deterministic():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    a = FaultInjector(fw.sim, fw.topology, seed=11).flap_link(
        wan, horizon=30.0, down_time=0.5, rate=0.4
    )
    b = FaultInjector(fw.sim, fw.topology, seed=11).flap_link(
        wan, horizon=30.0, down_time=0.5, rate=0.4
    )
    assert a == b and len(a) >= 3
    for (down, up), (next_down, _) in zip(a, a[1:]):
        assert up <= next_down  # outage windows never overlap
    # the framework accessor is cached: degrade state saved by one call is
    # visible to a later recover through the same accessor
    assert fw.fault_injector(seed=5) is fw.fault_injector(seed=5)
    assert fw.fault_injector(seed=5) is not fw.fault_injector(seed=6)


def test_gateway_death_tears_down_relay_sessions():
    """Satellite: killing a gateway host reclaims its spliced sessions.
    Crash semantics: the close notifications towards the endpoints blackhole
    (the host is down), so recovery there is the adaptive layer's job."""
    fw = PadicoFramework()
    a = fw.add_host("edge")
    g = fw.add_host("gw")
    b = fw.add_host("remote")
    lan = fw.add_network(Ethernet100(fw.sim, "lan"))
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    lan.connect(a), lan.connect(g)
    wan.connect(g), wan.connect(b)
    fw.boot()
    listener = fw.node("remote").vlink_listen(7100)
    relay = fw.node("gw").gateway_relay
    injector = fw.fault_injector(seed=2)

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 7100)
        server = yield accept_op
        client.write(b"alive")
        data = yield server.read(5)
        assert len(relay.sessions()) == 1
        injector.kill_host_at(fw.sim.now + 0.01, g)
        yield fw.sim.timeout(0.1)  # crash semantics: no FIN escapes the host
        return data

    assert run(fw, scenario(), max_time=120) == b"alive"
    assert relay.shut_down
    assert relay.sessions() == []
    assert relay.reclaimed >= 1
    assert not fw.topology.is_host_up(g)


def test_revived_gateway_relays_again():
    fw = PadicoFramework()
    a = fw.add_host("edge")
    g = fw.add_host("gw")
    b = fw.add_host("remote")
    lan = fw.add_network(Ethernet100(fw.sim, "lan"))
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    lan.connect(a), lan.connect(g)
    wan.connect(g), wan.connect(b)
    fw.boot()
    listener = fw.node("remote").vlink_listen(7200)
    injector = fw.fault_injector(seed=4)
    injector.kill_host_at(0.1, g)
    injector.revive_host_at(0.5, g)

    def scenario():
        yield fw.sim.timeout(1.0)  # past the kill + revival
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 7200)
        server = yield accept_op
        client.write(b"post-revival")
        return (yield server.read(12))

    assert run(fw, scenario(), max_time=120) == b"post-revival"
    assert not fw.node("gw").gateway_relay.shut_down
    assert fw.topology.is_host_up(g)


# --------------------------------------------------------------------------
# TopologyKB mutation API (satellite: cache + name-index coverage)
# --------------------------------------------------------------------------


def test_measurement_bumps_generation_and_invalidates_profiles_and_routes():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    g0 = fw.topology.generation
    profile = fw.topology.link_profile(edge, remote)
    path = fw.routing.host_path(edge, remote)
    assert fw.topology.link_profile(edge, remote) is profile  # cached
    assert fw.routing.host_path(edge, remote) is path

    fw.topology.apply_measurement(wan, loss_rate=0.05)
    assert fw.topology.generation > g0
    fresh_profile = fw.topology.link_profile(edge, remote)
    assert fresh_profile is not profile
    assert fresh_profile.link_class is LinkClass.LOSSY_WAN
    assert fresh_profile.measured
    fresh_path = fw.routing.host_path(edge, remote)
    assert fresh_path is not path

    fw.topology.clear_measurement(wan)
    assert fw.topology.link_profile(edge, remote).link_class is LinkClass.WAN


def test_measured_metrics_steer_route_weights():
    """A measured bandwidth collapse makes Dijkstra prefer the healthy path."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    assert len(fw.routing.host_path(edge, remote)) == 1
    fw.topology.apply_measurement(wan, bandwidth=1_000.0, loss_rate=0.08)
    hops = fw.routing.host_path(edge, remote)
    assert [h.dst.name for h in hops] == ["gw", "remote"]


def test_host_by_name_stays_consistent_after_removal():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    assert fw.topology.host_by_name("gw") is gw
    fw.topology.remove_host(gw)
    with pytest.raises(LookupError):
        fw.topology.host_by_name("gw")
    assert gw not in fw.topology.hosts()
    # routing no longer offers the removed host as a gateway
    fw.topology.mark_link_down(wan)
    with pytest.raises(AbstractionError):
        fw.routing.host_path(edge, remote)
    # remaining hosts still resolve
    assert fw.topology.host_by_name("edge") is edge


def test_subscribers_receive_typed_changes():
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    seen = []
    fw.topology.subscribe(seen.append)
    fw.topology.apply_measurement(wan, loss_rate=0.02)
    fw.topology.mark_link_down(wan)
    fw.topology.mark_link_up(wan)
    fw.topology.mark_host_down(gw)
    kinds = [c.kind for c in seen]
    assert kinds == ["measurement", "link-state", "link-state", "host-state"]
    assert all(isinstance(c, TopologyChange) for c in seen)
    assert seen[0].network is wan and seen[3].host is gw
    generations = [c.generation for c in seen]
    assert generations == sorted(generations) and len(set(generations)) == 4
    fw.topology.unsubscribe(seen.append)
