"""Tests for the core framework, deployment config, module registry, and
cross-middleware integration scenarios (the paper's §2.1 use cases)."""

import pytest

from tests.helpers import run

from repro.core import (
    DeploymentConfig,
    FrameworkError,
    PadicoFramework,
    global_registry,
    load_deployment,
    paper_cluster,
    two_cluster_grid,
)
from repro.core.modules import ModuleRegistry


# --------------------------------------------------------------------------
# Framework / deployment
# --------------------------------------------------------------------------


def test_framework_rejects_duplicates_and_unknowns():
    fw = PadicoFramework()
    fw.add_host("a")
    with pytest.raises(FrameworkError):
        fw.add_host("a")
    with pytest.raises(FrameworkError):
        fw.host("missing")
    with pytest.raises(FrameworkError):
        fw.network("missing")
    with pytest.raises(FrameworkError):
        fw.node("a")  # not booted yet


def test_framework_boot_is_idempotent_and_builds_stack():
    fw, group = paper_cluster(2)
    node = fw.node("node0")
    assert node.booted
    assert node.netaccess is not None and node.sysio is not None
    assert node.madio is not None and node.madeleine is not None
    assert set(node.vlink.driver_names()) >= {"madio", "sysio", "loopback"}
    assert "madio" in node.circuits.adapter_names()
    fw.boot()  # second boot is a no-op
    assert fw.node("node0") is node


def test_framework_without_san_has_no_madio():
    fw, group = paper_cluster(2, myrinet=False)
    node = fw.node("node0")
    assert node.madio is None
    assert "madio" not in node.vlink.driver_names()


def test_framework_status_report():
    fw, group = paper_cluster(2)
    report = fw.status_report()
    assert report["hosts"] == ["node0", "node1"]
    assert report["booted_nodes"] == ["node0", "node1"]
    assert any("myri" in n["name"] for n in report["networks"])
    assert report["adjacency"]["node0--node1"] == "san"


def test_node_middleware_registry():
    fw, group = paper_cluster(2)
    node = fw.node("node0")
    node.register_middleware("thing", object())
    assert "thing" in node.loaded_middleware()
    with pytest.raises(FrameworkError):
        node.middleware("absent")


def test_deployment_config_realises_grid():
    config = DeploymentConfig()
    config.add_cluster("rennes", ["r0", "r1"], site="rennes", san="myrinet", lan="ethernet100")
    config.add_cluster("grenoble", ["g0", "g1"], site="grenoble", san="sci", lan="gigabit")
    config.add_wan_link("vthd", ["rennes", "grenoble"], kind="vthd")
    config.add_node("laptop", site="elsewhere")
    fw = config.realise()
    fw.boot()
    assert len(fw.hosts()) == 5
    assert fw.topology.link_class(fw.host("r0"), fw.host("r1")).value == "san"
    assert fw.topology.link_class(fw.host("r0"), fw.host("g0")).value == "wan"
    roundtrip = DeploymentConfig.from_dict(config.to_dict())
    assert roundtrip.all_node_names() == config.all_node_names()


def test_deployment_config_errors():
    config = DeploymentConfig()
    config.add_cluster("c", ["x", "x"])
    with pytest.raises(FrameworkError):
        config.all_node_names()
    bad = DeploymentConfig()
    bad.add_cluster("c", ["a"], san="quantum")
    with pytest.raises(FrameworkError):
        bad.realise()


def test_load_deployment_from_dict():
    fw = load_deployment(
        {
            "clusters": [{"name": "c", "nodes": ["n0", "n1"], "site": "s"}],
            "wan_links": [],
            "nodes": [],
        }
    )
    fw.boot()
    assert len(fw.nodes()) == 2


# --------------------------------------------------------------------------
# Module registry
# --------------------------------------------------------------------------


def test_global_registry_contains_builtin_middleware():
    import repro.middleware  # noqa: F401 - triggers registration

    registry = global_registry()
    names = registry.names()
    assert "mpi" in names and "soap" in names and "corba:Mico-2.3.7" in names
    assert {m.name for m in registry.by_paradigm("parallel")} >= {"mpi", "pvm", "dsm"}
    assert registry.get("mpi").personality == "madeleine"
    with pytest.raises(LookupError):
        registry.get("not-a-module")


def test_module_registry_load_and_validation():
    registry = ModuleRegistry()
    with pytest.raises(ValueError):
        registry.register("x", paradigm="weird", personality="p")
    made = []
    registry.register("base", paradigm="distributed", personality="syswrap",
                      factory=lambda node: made.append("base") or "BASE")
    registry.register("dep", paradigm="distributed", personality="syswrap",
                      factory=lambda node: made.append("dep") or "DEP", requires=["base"])
    fw, group = paper_cluster(2)
    node = fw.node("node0")
    instance = registry.load("dep", node)
    assert instance == "DEP"
    assert made == ["base", "dep"]
    assert node.middleware("base") == "BASE"


def test_registry_load_mpi_through_registry():
    import repro.middleware  # noqa: F401

    fw, group = paper_cluster(2)
    runtimes = [global_registry().load("mpi", fw.node(h.name), group=group) for h in group]

    def scenario():
        runtimes[0].comm_world.isend(b"via-registry", 1, tag=1)
        data = yield from runtimes[1].comm_world.recv(0, 1)
        return data

    assert run(fw, scenario()) == b"via-registry"


# --------------------------------------------------------------------------
# Integration: the paper's §2.1 scenarios
# --------------------------------------------------------------------------


def test_concurrent_mpi_and_corba_on_the_same_nodes():
    """§2.1 / §4.3: a parallel middleware and a distributed middleware share
    the same nodes and the same Myrinet network at the same time."""
    from repro.middleware.corba import Interface, ORB, OMNIORB_4, Operation, Servant, TC_LONG
    from repro.middleware.mpi import MpiRuntime

    fw, group = paper_cluster(2)
    comms = [MpiRuntime(fw.node(h.name), group).comm_world for h in group]

    iface = Interface(
        "IDL:Monitor:1.0", [Operation("progress", params=(("step", TC_LONG),), result=TC_LONG)]
    )

    class Monitor(Servant):
        def __init__(self):
            self.steps = []

        def progress(self, step):
            self.steps.append(step)
            return step * 2

    monitor = Monitor()
    server_orb = ORB(fw.node(group[1].name), OMNIORB_4)
    client_orb = ORB(fw.node(group[0].name), OMNIORB_4)
    proxy = client_orb.object_to_proxy(server_orb.activate_object(monitor, iface), iface)

    def scenario():
        # interleave MPI traffic and CORBA invocations
        acked = []
        for step in range(5):
            comms[0].isend(b"chunk" * 100, 1, tag=step)
            result = yield from proxy.invoke("progress", step)
            acked.append(result)
            data = yield from comms[1].recv(0, step)
            assert data == b"chunk" * 100
        return acked

    acked = run(fw, scenario())
    assert acked == [0, 2, 4, 6, 8]
    assert monitor.steps == list(range(5))
    # both subsystems were dispatched by the same arbitration core
    report = fw.node(group[1].name).netaccess.fairness_report()
    assert report["madio"]["dispatches"] > 0


def test_mpi_component_coupled_to_soap_monitoring():
    """§2.2: "a SOAP-based monitoring system of a MPI application"."""
    from repro.middleware.mpi import MpiRuntime, SUM
    from repro.middleware.soap import SoapClient, SoapServer

    fw, group = paper_cluster(2)
    comms = [MpiRuntime(fw.node(h.name), group).comm_world for h in group]
    monitor_state = {}
    server = SoapServer(fw.node(group[1].name), 18300)
    server.register("report", lambda rank=0, norm=0.0: monitor_state.update({rank: norm}) or True)
    client = SoapClient(fw.node(group[0].name), fw.node(group[1].name).host, 18300)

    def rank0():
        local = 3.0
        total = yield from comms[0].allreduce(local, op=SUM)
        yield from client.call("report", rank=0, norm=total)
        return total

    def rank1():
        total = yield from comms[1].allreduce(4.0, op=SUM)
        return total

    p0 = fw.sim.process(rank0())
    p1 = fw.sim.process(rank1())
    fw.sim.run(until=fw.sim.all_of([p0, p1]), max_time=30)
    assert p0.value == p1.value == 7.0
    assert monitor_state == {0: 7.0}


def test_two_cluster_grid_mpi_inside_corba_across():
    """§2.1: parallel components — MPI inside each cluster, a distributed
    middleware coupling the two clusters across the WAN."""
    from repro.middleware.corba import Interface, ORB, OMNIORB_4, Operation, Servant, TC_DOUBLE
    from repro.middleware.mpi import MpiRuntime, SUM

    fw, cluster_a, cluster_b, grid = two_cluster_grid(2)
    comms_a = [
        MpiRuntime(fw.node(h.name), cluster_a, channel_name="a").comm_world for h in cluster_a
    ]
    comms_b = [
        MpiRuntime(fw.node(h.name), cluster_b, channel_name="b").comm_world for h in cluster_b
    ]

    iface = Interface("IDL:Coupler:1.0",
                      [Operation("exchange", params=(("value", TC_DOUBLE),), result=TC_DOUBLE)])

    class Coupler(Servant):
        def __init__(self):
            self.received = None

        def exchange(self, value):
            self.received = value
            return value * 10.0

    coupler = Coupler()
    server_orb = ORB(fw.node(cluster_b[0].name), OMNIORB_4)
    client_orb = ORB(fw.node(cluster_a[0].name), OMNIORB_4)
    proxy = client_orb.object_to_proxy(server_orb.activate_object(coupler, iface), iface)

    # intra-cluster MPI uses the straight Myrinet path
    mpi_circuit = fw.node(cluster_a[0].name).circuits.circuit("vmad:a")
    assert mpi_circuit.route_for(1).method == "madio"

    def head_a():
        local_sum = yield from comms_a[0].allreduce(1.5, op=SUM)
        coupled = yield from proxy.invoke("exchange", local_sum)
        return coupled

    def worker(comm, value):
        result = yield from comm.allreduce(value, op=SUM)
        return result

    pa0 = fw.sim.process(head_a())
    pa1 = fw.sim.process(worker(comms_a[1], 2.5))
    fw.sim.run(until=fw.sim.all_of([pa0, pa1]), max_time=60)
    assert pa1.value == 4.0
    assert coupler.received == 4.0
    assert pa0.value == 40.0


def test_arbitration_fairness_vs_competitive_baseline():
    """§4.1: without arbitration an active-polling middleware starves the
    other; with NetAccess both make progress with comparable costs."""
    from repro.middleware.mpi import MpiRuntime

    def corba_latency(competitive: bool):
        from repro.middleware.corba import Interface, ORB, OMNIORB_4, Operation, Servant, TC_LONG

        fw, group = paper_cluster(2)
        # an MPI runtime is present and (in the ablation) busy-polls the CPU
        for h in group:
            MpiRuntime(fw.node(h.name), group)
        if competitive:
            for h in group:
                fw.node(h.name).netaccess.set_competitive_baseline("madio")
        iface = Interface(
            "IDL:P:1.0", [Operation("poke", params=(("x", TC_LONG),), result=TC_LONG)]
        )

        class P(Servant):
            def poke(self, x):
                return x

        # the CORBA traffic uses the system sockets (SysIO subsystem), the MPI
        # hog busy-polls the high-performance network (MadIO subsystem)
        server = ORB(fw.node(group[1].name), OMNIORB_4, forced_method="sysio")
        client = ORB(fw.node(group[0].name), OMNIORB_4, forced_method="sysio")
        proxy = client.object_to_proxy(server.activate_object(P(), iface), iface)

        def scenario():
            yield from proxy.invoke("poke", 1)
            t0 = fw.sim.now
            yield from proxy.invoke("poke", 2)
            return fw.sim.now - t0

        return run(fw, scenario())

    cooperative = corba_latency(competitive=False)
    starved = corba_latency(competitive=True)
    assert starved > cooperative * 5
