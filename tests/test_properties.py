"""Property-based tests (hypothesis) on the core data structures and codecs."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simnet.cost import Cost, combine_bandwidths, required_copy_bandwidth, split_even
from repro.simnet.engine import Simulator
from repro.madeleine.message import PackMode, decode_segments, encode_segments
from repro.abstraction.drivers import StreamBuffer
from repro.middleware.corba.cdr import (
    CdrInputStream,
    CdrOutputStream,
    SequenceTC,
    StructTC,
    TC_BOOLEAN,
    TC_DOUBLE,
    TC_LONG,
    TC_OCTET_SEQ,
    TC_STRING,
)
from repro.middleware.corba.giop import GiopMessage, make_reply, make_request
from repro.middleware.soap import build_envelope, parse_envelope
from repro.methods.adoc import AdocCodec

COMMON = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------
# split_even / bandwidth algebra
# --------------------------------------------------------------------------


@COMMON
@given(
    total=st.integers(min_value=0, max_value=10_000_000),
    parts=st.integers(min_value=1, max_value=64),
)
def test_split_even_partitions_exactly(total, parts):
    chunks = split_even(total, parts)
    assert len(chunks) == parts
    assert sum(chunks) == total
    assert max(chunks) - min(chunks) <= 1


@COMMON
@given(
    observed=st.floats(min_value=1.0, max_value=200.0),
    wire=st.floats(min_value=201.0, max_value=10_000.0),
)
def test_copy_bandwidth_inversion(observed, wire):
    copy = required_copy_bandwidth(observed, wire)
    assert combine_bandwidths(wire, copy) == np.float64(observed).item() or abs(
        combine_bandwidths(wire, copy) - observed
    ) < 1e-6 * observed


@COMMON
@given(st.lists(st.tuples(st.floats(min_value=1e-9, max_value=1e-3),
                          st.sampled_from(["a", "b", "c"])), max_size=30))
def test_cost_total_equals_sum_of_components(charges):
    cost = Cost()
    for seconds, label in charges:
        cost.charge(seconds, label)
    assert abs(cost.seconds - sum(s for s, _ in charges)) < 1e-12
    assert abs(sum(cost.breakdown().values()) - cost.seconds) < 1e-12


# --------------------------------------------------------------------------
# Madeleine segment encoding
# --------------------------------------------------------------------------


@COMMON
@given(
    st.lists(
        st.tuples(st.sampled_from([PackMode.EXPRESS, PackMode.CHEAPER]),
                  st.binary(max_size=2048)),
        max_size=20,
    )
)
def test_segment_encoding_roundtrip(segments):
    assert decode_segments(encode_segments(segments)) == segments


# --------------------------------------------------------------------------
# StreamBuffer invariants
# --------------------------------------------------------------------------


@COMMON
@given(st.lists(st.binary(min_size=0, max_size=500), max_size=20),
       st.lists(st.integers(min_value=1, max_value=300), max_size=20))
def test_stream_buffer_preserves_byte_order(chunks, read_sizes):
    sim = Simulator()
    buf = StreamBuffer(sim)
    for chunk in chunks:
        buf.append(chunk)
    everything = b"".join(chunks)
    out = bytearray()
    for n in read_sizes:
        out += buf.read_available(n)
    out += buf.read_available()
    assert bytes(out) == everything
    assert buf.available() == 0


# --------------------------------------------------------------------------
# CDR marshalling
# --------------------------------------------------------------------------

_sample_struct = StructTC("S", [("id", TC_LONG), ("name", TC_STRING), ("flag", TC_BOOLEAN)])
_sample_seq = SequenceTC(TC_DOUBLE)


@COMMON
@given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
       st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.text(max_size=100),
       st.binary(max_size=1000),
       st.booleans())
def test_cdr_primitives_roundtrip(i, d, s, raw, b):
    out = CdrOutputStream()
    TC_LONG.encode(out, i)
    TC_DOUBLE.encode(out, d)
    TC_STRING.encode(out, s)
    TC_OCTET_SEQ.encode(out, raw)
    TC_BOOLEAN.encode(out, b)
    inp = CdrInputStream(out.getvalue())
    assert TC_LONG.decode(inp) == i
    assert TC_DOUBLE.decode(inp) == d
    assert TC_STRING.decode(inp) == s
    assert TC_OCTET_SEQ.decode(inp) == raw
    assert TC_BOOLEAN.decode(inp) == b


@COMMON
@given(st.lists(st.fixed_dictionaries({
    "id": st.integers(min_value=-1000, max_value=1000),
    "name": st.text(max_size=20),
    "flag": st.booleans(),
}), max_size=10))
def test_cdr_struct_sequence_roundtrip(values):
    tc = SequenceTC(_sample_struct)
    out = CdrOutputStream()
    tc.encode(out, values)
    assert tc.decode(CdrInputStream(out.getvalue())) == values


@COMMON
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=50))
def test_cdr_double_sequence_roundtrip(values):
    out = CdrOutputStream()
    _sample_seq.encode(out, values)
    assert _sample_seq.decode(CdrInputStream(out.getvalue())) == values


# --------------------------------------------------------------------------
# GIOP framing
# --------------------------------------------------------------------------


@COMMON
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.binary(min_size=1, max_size=64),
       st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
               min_size=1, max_size=30),
       st.binary(max_size=4096))
def test_giop_request_roundtrip(request_id, key, operation, body):
    msg = make_request(request_id, key, operation, body)
    wire = msg.encode()
    decoded = GiopMessage.decode(wire[:12], wire[12:])
    assert (decoded.request_id, decoded.object_key, decoded.operation, decoded.body) == (
        request_id, key, operation, body,
    )


@COMMON
@given(st.integers(min_value=0, max_value=2**32 - 1), st.binary(max_size=4096),
       st.integers(min_value=0, max_value=2))
def test_giop_reply_roundtrip(request_id, body, status):
    msg = make_reply(request_id, body, status=status)
    wire = msg.encode()
    decoded = GiopMessage.decode(wire[:12], wire[12:])
    assert (decoded.request_id, decoded.body, decoded.reply_status) == (request_id, body, status)


# --------------------------------------------------------------------------
# SOAP envelopes
# --------------------------------------------------------------------------


@COMMON
@given(st.dictionaries(
    keys=st.from_regex(r"[a-zA-Z][a-zA-Z0-9]{0,10}", fullmatch=True),
    values=st.one_of(
        st.integers(min_value=-(10**9), max_value=10**9),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.text(max_size=40),
        st.booleans(),
        st.binary(max_size=200),
    ),
    max_size=8,
))
def test_soap_envelope_roundtrip(params):
    xml = build_envelope("op", params)
    op, decoded = parse_envelope(xml)
    assert op == "op"
    assert dict(decoded) == params


# --------------------------------------------------------------------------
# AdOC codec
# --------------------------------------------------------------------------


@COMMON
@given(st.binary(min_size=0, max_size=20_000))
def test_adoc_codec_lossless(block):
    codec = AdocCodec()
    flags, wire, _ = codec.encode(block)
    decoded, _ = codec.decode(flags, wire, len(block))
    assert decoded == block
