"""Unit tests for the TCP model (handshake, streams, congestion behaviour)."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.networks import Ethernet100, LossyInternet, WanVthd
from repro.simnet.tcp import TcpError, TcpModel, TcpStack


def make_pair(net_cls=Ethernet100, **net_kwargs):
    sim = Simulator()
    net = net_cls(sim, **net_kwargs)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    return sim, net, TcpStack(a), TcpStack(b), a, b


def transfer(sim, stack_a, stack_b, host_b, nbytes, port=5000):
    """Helper: move nbytes from a to b, return (elapsed, data_ok)."""
    listener = stack_b.listen(port)
    result = {}

    def client():
        conn = yield stack_a.connect(host_b, port)
        result["t0"] = sim.now
        yield conn.send(b"x" * nbytes)

    def server():
        conn = yield listener.accept()
        data = yield conn.recv_exact(nbytes)
        result["t1"] = sim.now
        result["ok"] = data == b"x" * nbytes

    sim.process(client())
    sim.process(server())
    sim.run(max_time=600)
    return result["t1"] - result["t0"], result["ok"]


def test_handshake_establishes_both_ends():
    sim, net, sa, sb, a, b = make_pair()
    listener = sb.listen(9000)
    out = {}

    def client():
        conn = yield sa.connect(b, 9000)
        out["client"] = conn.established

    def server():
        conn = yield listener.accept()
        out["server"] = conn.established

    sim.process(client())
    sim.process(server())
    sim.run()
    assert out == {"client": True, "server": True}


def test_connect_refused_when_no_listener():
    sim, net, sa, sb, a, b = make_pair()

    def client():
        try:
            yield sa.connect(b, 12345)
        except TcpError as exc:
            return str(exc)

    result = sim.run(until=sim.process(client()))
    assert "refused" in result


def test_duplicate_listen_rejected():
    sim, net, sa, sb, a, b = make_pair()
    sb.listen(7000)
    with pytest.raises(TcpError):
        sb.listen(7000)


def test_no_common_network_raises():
    sim = Simulator()
    net = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)  # b is NOT attached
    sa, sb = TcpStack(a), TcpStack(b)

    def client():
        try:
            yield sa.connect(b, 1)
        except TcpError as exc:
            return "no-route"

    assert sim.run(until=sim.process(client())) == "no-route"


def test_stream_preserves_content_and_order():
    sim, net, sa, sb, a, b = make_pair()
    listener = sb.listen(9001)
    chunks = [bytes([i]) * (100 + i) for i in range(20)]
    out = {}

    def client():
        conn = yield sa.connect(b, 9001)
        for chunk in chunks:
            conn.send(chunk)

    def server():
        conn = yield listener.accept()
        data = yield conn.recv_exact(sum(len(c) for c in chunks))
        out["data"] = data

    sim.process(client())
    sim.process(server())
    sim.run(max_time=60)
    assert out["data"] == b"".join(chunks)


def test_recv_partial_and_available():
    sim, net, sa, sb, a, b = make_pair()
    listener = sb.listen(9002)
    out = {}

    def client():
        conn = yield sa.connect(b, 9002)
        yield conn.send(b"abcdef")

    def server():
        conn = yield listener.accept()
        first = yield conn.recv(4)
        out["first"] = first
        rest = yield conn.recv_exact(6 - len(first))
        out["rest"] = rest
        out["leftover"] = conn.available()

    sim.process(client())
    sim.process(server())
    sim.run(max_time=10)
    assert out["first"] + out["rest"] == b"abcdef"
    assert out["leftover"] == 0


def test_lan_bandwidth_close_to_paper_reference():
    """Fast Ethernet TCP should plateau near ~11 MB/s (Figure 3 reference)."""
    sim, net, sa, sb, a, b = make_pair()
    elapsed, ok = transfer(sim, sa, sb, b, 1_000_000)
    assert ok
    bw = 1_000_000 / elapsed / 1e6
    assert 10.0 < bw < 12.5


def test_small_message_latency_on_lan():
    sim, net, sa, sb, a, b = make_pair()
    elapsed, ok = transfer(sim, sa, sb, b, 32)
    assert ok
    assert 50e-6 < elapsed < 200e-6


def test_wan_single_stream_well_below_access_bandwidth():
    """VTHD: one TCP stream gets ~9-10 MB/s, clearly below the 12.5 MB/s access link."""
    sim, net, sa, sb, a, b = make_pair(WanVthd)
    elapsed, ok = transfer(sim, sa, sb, b, 16_000_000)
    assert ok
    bw = 16_000_000 / elapsed / 1e6
    assert 7.0 < bw < 11.5


def test_lossy_link_tcp_collapse():
    """5-10 % loss collapses TCP to the ~150 KB/s the paper reports."""
    sim, net, sa, sb, a, b = make_pair(LossyInternet)
    elapsed, ok = transfer(sim, sa, sb, b, 1_000_000)
    assert ok
    kbps = 1_000_000 / elapsed / 1e3
    assert 80 < kbps < 260


def test_congestion_window_grows_on_clean_network():
    sim, net, sa, sb, a, b = make_pair()
    listener = sb.listen(9005)
    out = {}

    def client():
        conn = yield sa.connect(b, 9005)
        initial = conn.cwnd
        yield conn.send(b"z" * 500_000)
        out["initial"] = initial
        out["final"] = conn.cwnd
        out["retx"] = conn.retransmitted_bytes

    def server():
        conn = yield listener.accept()
        yield conn.recv_exact(500_000)

    sim.process(client())
    sim.process(server())
    sim.run(max_time=60)
    assert out["final"] > out["initial"]
    assert out["retx"] == 0


def test_receive_window_caps_cwnd():
    sim, net, sa, sb, a, b = make_pair()
    sa.model = TcpModel(receive_window=8 * 1460)
    listener = sb.listen(9006)
    out = {}

    def client():
        conn = yield sa.connect(b, 9006)
        yield conn.send(b"z" * 200_000)
        out["cwnd"] = conn.cwnd

    def server():
        conn = yield listener.accept()
        yield conn.recv_exact(200_000)

    sim.process(client())
    sim.process(server())
    sim.run(max_time=60)
    assert out["cwnd"] <= 8 * 1460


def test_close_fails_pending_reads():
    sim, net, sa, sb, a, b = make_pair()
    listener = sb.listen(9007)
    out = {}

    def client():
        conn = yield sa.connect(b, 9007)
        conn.close()

    def server():
        conn = yield listener.accept()
        try:
            yield conn.recv_exact(10)
        except TcpError:
            out["failed"] = True

    sim.process(client())
    sim.process(server())
    sim.run(max_time=10)
    assert out.get("failed") is True


def test_send_on_closed_connection_raises():
    sim, net, sa, sb, a, b = make_pair()
    listener = sb.listen(9008)
    out = {}

    def client():
        conn = yield sa.connect(b, 9008)
        conn.close()
        try:
            conn.send(b"late")
        except TcpError:
            out["raised"] = True

    sim.process(client())
    sim.process(server_noop(listener))
    sim.run(max_time=10)
    assert out.get("raised") is True


def server_noop(listener):
    def _gen():
        yield listener.accept()
    return _gen()


def test_empty_send_completes_immediately():
    sim, net, sa, sb, a, b = make_pair()
    listener = sb.listen(9009)
    out = {}

    def client():
        conn = yield sa.connect(b, 9009)
        n = yield conn.send(b"")
        out["n"] = n

    sim.process(client())
    sim.process(server_noop(listener))
    sim.run(max_time=10)
    assert out["n"] == 0


def test_segment_appends_never_reorder_across_sizes():
    """Receive-side regression: a later, smaller segment's cheaper
    kernel-side processing must not let its bytes overtake an earlier large
    segment's (found as content corruption on relayed multi-hop transfers:
    the stream arrived complete but reordered)."""
    from repro.core import PadicoFramework
    from repro.simnet.networks import grid_deployment

    fw = PadicoFramework()
    grid = grid_deployment(fw, rows=2, cols=2, hosts_per_cluster=4)
    fw.boot()
    src = grid.clusters[0][-1]
    dst = grid.clusters[1][1]  # no common network: two gateway relays
    listener = fw.node(dst.name).vlink_listen(7100)
    payload = bytes(range(256)) * 1024  # 256 KB, position-recognizable

    def scenario():
        acc = listener.accept()
        client = yield fw.node(src.name).vlink_connect(fw.node(dst.name), 7100)
        server = yield acc
        pending = client.write(payload)
        data = yield server.read(len(payload))
        yield pending
        return data

    data = fw.sim.run(until=fw.sim.process(scenario()), max_time=60)
    assert data == payload
