"""Unit tests for hosts, host groups, network models and NIC arbitration."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.host import CpuModel, Host, HostGroup
from repro.simnet.network import Network
from repro.simnet.networks import (
    Ethernet100,
    GigabitEthernet,
    Loopback,
    LossyInternet,
    Myrinet2000,
    SciNetwork,
    WanVthd,
)
from repro.simnet.cost import Cost, MB


def make_pair(net_cls=Myrinet2000):
    sim = Simulator()
    net = net_cls(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    return sim, net, a, b


def test_cpu_model_copy_time():
    cpu = CpuModel(memcpy_bandwidth=100 * MB)
    assert cpu.copy_time(1_000_000) == pytest.approx(0.01)


def test_host_nic_registration():
    sim, net, a, b = make_pair()
    assert a.is_attached(net)
    assert a.nic_for(net).host is a
    assert net in a.networks()
    assert net.connect(a) is a.nic_for(net)  # re-connect returns the same NIC
    # attaching the same network twice through attach_nic is rejected
    with pytest.raises(ValueError):
        a.attach_nic(a.nic_for(net))


def test_host_services():
    sim = Simulator()
    h = Host(sim, "svc")
    h.register_service("thing", 42)
    assert h.get_service("thing") == 42
    assert h.require_service("thing") == 42
    assert h.has_service("thing")
    with pytest.raises(ValueError):
        h.register_service("thing", 43)
    h.register_service("thing", 43, replace=True)
    assert h.get_service("thing") == 43
    with pytest.raises(LookupError):
        h.require_service("missing")


def test_host_sites_and_shared_networks():
    sim, net, a, b = make_pair()
    a.site = "rennes"
    b.site = "grenoble"
    assert a.site == "rennes"
    assert net in a.shares_network_with(b)
    c = Host(sim, "c")
    assert a.shares_network_with(c) == []


def test_host_group():
    sim, net, a, b = make_pair()
    group = HostGroup("g", [a, b])
    assert len(group) == 2
    assert group.index_of(b) == 1
    assert group.contains(a)
    assert group[0] is a
    assert list(group) == [a, b]
    c = Host(sim, "c")
    assert not group.contains(c)
    with pytest.raises(ValueError):
        group.index_of(c)
    with pytest.raises(ValueError):
        HostGroup("dup", [a, a])


def test_host_group_sites():
    sim, net, a, b = make_pair()
    a.site = "s1"
    b.site = "s2"
    assert HostGroup("g", [a, b]).sites() == ["s1", "s2"]


def test_network_parameter_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, "bad", latency=-1, bandwidth=1)
    with pytest.raises(ValueError):
        Network(sim, "bad", latency=1, bandwidth=1, loss_rate=1.5)


def test_network_timing_model():
    sim = Simulator()
    eth = Ethernet100(sim)
    assert eth.packets_for(0) == 1
    assert eth.packets_for(1460) == 1
    assert eth.packets_for(1461) == 2
    assert eth.wire_bytes(1460) == 1460 + 58
    assert eth.one_way_time(0) > eth.latency
    assert eth.serialization_time(12_500_000) > 0.9  # ~1 s at 12.5 MB/s


def test_network_paradigms():
    sim = Simulator()
    assert Myrinet2000(sim).is_parallel
    assert SciNetwork(sim).is_parallel
    assert Loopback(sim).is_parallel
    assert Ethernet100(sim).is_distributed
    assert GigabitEthernet(sim).is_distributed
    assert WanVthd(sim).is_distributed
    assert LossyInternet(sim).is_distributed


def test_network_describe_and_addresses():
    sim, net, a, b = make_pair(Ethernet100)
    desc = net.describe()
    assert desc["paradigm"] == "distributed"
    assert set(desc["hosts"]) == {"a", "b"}
    assert net.nic_of(a).address.startswith("10.")
    myri = Myrinet2000(sim)
    myri.connect(a)
    assert myri.nic_of(a).address.startswith("myri://")
    with pytest.raises(LookupError):
        myri.nic_of(b)


def test_nic_single_owner_arbitration_claim():
    """Only one owner per NIC: the paper's 'arbitration layer is the only
    client of the system-level resources' property."""
    sim, net, a, b = make_pair()
    nic = net.nic_of(a)
    nic.set_receive_handler(lambda d: None, owner="madeleine")
    nic.set_receive_handler(lambda d: None, owner="madeleine")  # same owner ok
    with pytest.raises(PermissionError):
        nic.set_receive_handler(lambda d: None, owner="rogue-middleware")
    assert nic.owner == "madeleine"


def test_transmit_delivers_payload_and_charges_latency():
    sim, net, a, b = make_pair()
    got = {}

    def handler(delivery):
        got["payload"] = delivery.payload
        got["time"] = sim.now

    net.nic_of(b).set_receive_handler(handler, owner="test")
    net.transmit(a, b, b"hello", channel="x")
    sim.run()
    assert got["payload"] == b"hello"
    assert got["time"] >= net.latency
    assert net.frames_sent == 1
    assert net.bytes_carried == 5


def test_transmit_to_self_rejected_except_loopback():
    sim, net, a, b = make_pair()
    with pytest.raises(ValueError):
        net.transmit(a, a, b"x")
    lo = Loopback(sim)
    lo.connect(a)
    got = {}
    lo.nic_of(a).set_receive_handler(lambda d: got.setdefault("p", d.payload), owner="t")
    lo.transmit(a, a, b"self")
    sim.run()
    assert got["p"] == b"self"


def test_send_cost_delays_transmission():
    sim, net, a, b = make_pair()
    times = []
    net.nic_of(b).set_receive_handler(lambda d: times.append(sim.now), owner="t")
    net.transmit(a, b, b"x" * 100)
    net2_time_base = None
    sim.run()
    baseline = times[0]

    sim2, net2, a2, b2 = make_pair()
    times2 = []
    net2.nic_of(b2).set_receive_handler(lambda d: times2.append(sim2.now), owner="t")
    net2.transmit(a2, b2, b"x" * 100, send_cost=Cost().charge(5e-6))
    sim2.run()
    assert times2[0] == pytest.approx(baseline + 5e-6)


def test_tx_occupancy_serialises_frames():
    sim, net, a, b = make_pair(Ethernet100)
    arrivals = []
    net.nic_of(b).set_receive_handler(lambda d: arrivals.append(sim.now), owner="t")
    net.transmit(a, b, b"x" * 14600)
    net.transmit(a, b, b"y" * 14600)
    sim.run()
    # second frame cannot arrive before the first has fully left the NIC
    assert arrivals[1] - arrivals[0] >= net.serialization_time(14600) * 0.99


def test_datagram_loss_is_deterministic_per_seed():
    def drops(seed):
        sim = Simulator()
        net = LossyInternet(sim, seed=seed)
        a, b = Host(sim, "a"), Host(sim, "b")
        net.connect(a)
        net.connect(b)
        net.nic_of(b).set_receive_handler(lambda d: None, owner="t")
        lost = 0
        for _ in range(200):
            if net.transmit_datagram(a, b, b"z" * 1000) is None:
                lost += 1
        sim.run()
        return lost

    assert drops(1) == drops(1)
    assert 0 < drops(1) < 200


def test_drop_without_handler_is_recorded():
    sim, net, a, b = make_pair()
    net.transmit(a, b, b"nobody-home")
    sim.run()
    assert net.frames_dropped == 1
    assert net.drop_log[0][1] == "no-handler"


def test_myrinet_hardware_channel_count():
    sim = Simulator()
    assert Myrinet2000(sim).hardware_channels == 2
    assert SciNetwork(sim).hardware_channels == 1
