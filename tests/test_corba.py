"""Tests for the CORBA middleware: CDR, GIOP, ORB invocation, profiles."""

import numpy as np
import pytest

from tests.helpers import run

from repro.middleware.corba import (
    CdrError,
    CdrInputStream,
    CdrOutputStream,
    CorbaError,
    GiopError,
    GiopMessage,
    Interface,
    MICO_2_3_7,
    MSG_REPLY,
    MSG_REQUEST,
    OMNIORB_3,
    OMNIORB_4,
    ORB,
    ORBACUS_4_0_5,
    ObjectReference,
    Operation,
    Servant,
    SequenceTC,
    StructTC,
    TC_DOUBLE,
    TC_DOUBLE_SEQ,
    TC_LONG,
    TC_OCTET_SEQ,
    TC_STRING,
    TC_VOID,
)
from repro.middleware.corba.giop import make_reply, make_request


# --------------------------------------------------------------------------
# CDR
# --------------------------------------------------------------------------


def test_cdr_primitive_roundtrip_with_alignment():
    out = CdrOutputStream()
    out.put_octet(7)
    out.put_double(3.5)       # forces 8-byte alignment after a 1-byte value
    out.put_long(-42)
    out.put_string("héllo")
    out.put_boolean(True)
    inp = CdrInputStream(out.getvalue())
    assert inp.get_octet() == 7
    assert inp.get_double() == 3.5
    assert inp.get_long() == -42
    assert inp.get_string() == "héllo"
    assert inp.get_boolean() is True
    assert inp.remaining == 0


def test_cdr_truncation_detected():
    out = CdrOutputStream()
    out.put_long(1)
    inp = CdrInputStream(out.getvalue()[:2])
    with pytest.raises(CdrError):
        inp.get_long()


def test_cdr_typed_sequences():
    out = CdrOutputStream()
    TC_DOUBLE_SEQ.encode(out, np.array([1.0, 2.5, -3.0]))
    TC_OCTET_SEQ.encode(out, b"raw-bytes")
    inp = CdrInputStream(out.getvalue())
    arr = TC_DOUBLE_SEQ.decode(inp)
    assert np.allclose(arr, [1.0, 2.5, -3.0])
    assert TC_OCTET_SEQ.decode(inp) == b"raw-bytes"
    with pytest.raises(CdrError):
        TC_OCTET_SEQ.encode(CdrOutputStream(), 12345)


def test_cdr_struct_and_nested_sequence():
    point = StructTC("Point", [("x", TC_DOUBLE), ("y", TC_DOUBLE), ("label", TC_STRING)])
    path = SequenceTC(point)
    out = CdrOutputStream()
    value = [{"x": 1.0, "y": 2.0, "label": "a"}, {"x": -1.0, "y": 0.5, "label": "b"}]
    path.encode(out, value)
    assert path.decode(CdrInputStream(out.getvalue())) == value
    with pytest.raises(CdrError):
        point.encode(CdrOutputStream(), {"x": 1.0})  # missing fields


def test_cdr_void():
    out = CdrOutputStream()
    TC_VOID.encode(out, None)
    assert len(out) == 0
    with pytest.raises(CdrError):
        TC_VOID.encode(out, 1)


# --------------------------------------------------------------------------
# GIOP
# --------------------------------------------------------------------------


def test_giop_request_roundtrip():
    req = make_request(17, b"objkey", "compute", b"\x01\x02\x03")
    wire = req.encode()
    header, payload = wire[:12], wire[12:]
    msg_type, size, version = GiopMessage.parse_header(header)
    assert msg_type == MSG_REQUEST and size == len(payload)
    decoded = GiopMessage.decode(header, payload)
    assert decoded.request_id == 17
    assert decoded.object_key == b"objkey"
    assert decoded.operation == "compute"
    assert decoded.body == b"\x01\x02\x03"


def test_giop_reply_roundtrip_and_errors():
    rep = make_reply(9, b"result", status=0)
    wire = rep.encode()
    decoded = GiopMessage.decode(wire[:12], wire[12:])
    assert decoded.msg_type == MSG_REPLY and decoded.request_id == 9
    with pytest.raises(GiopError):
        GiopMessage.parse_header(b"NOPE" + wire[4:12])
    with pytest.raises(GiopError):
        GiopMessage.decode(wire[:12], wire[12:] + b"extra")
    with pytest.raises(GiopError):
        GiopMessage.parse_header(b"short")


# --------------------------------------------------------------------------
# Interface / Operation
# --------------------------------------------------------------------------


def test_interface_declaration_and_arg_checking():
    iface = Interface(
        "IDL:Test:1.0",
        [Operation("add", params=(("a", TC_LONG), ("b", TC_LONG)), result=TC_LONG)],
    )
    assert iface.operation_names() == ["add"]
    with pytest.raises(LookupError):
        iface.operation("sub")
    with pytest.raises(ValueError):
        iface.add_operation(Operation("add"))
    out = CdrOutputStream()
    with pytest.raises(CdrError):
        iface.operation("add").encode_args(out, [1])  # wrong arity


# --------------------------------------------------------------------------
# End-to-end ORB invocations
# --------------------------------------------------------------------------

CALC_IDL = Interface(
    "IDL:repro/Calculator:1.0",
    [
        Operation("add", params=(("a", TC_DOUBLE), ("b", TC_DOUBLE)), result=TC_DOUBLE),
        Operation("concat", params=(("s", TC_STRING), ("n", TC_LONG)), result=TC_STRING),
        Operation("checksum", params=(("data", TC_OCTET_SEQ),), result=TC_LONG),
        Operation("fail", params=(), result=TC_VOID),
        Operation("notify", params=(("msg", TC_STRING),), result=TC_VOID, oneway=True),
    ],
)


class Calculator(Servant):
    def __init__(self):
        self.notifications = []

    def add(self, a, b):
        return a + b

    def concat(self, s, n):
        return s * n

    def checksum(self, data):
        return sum(data) % 2**31

    def fail(self):
        raise ValueError("servant-side failure")

    def notify(self, msg):
        self.notifications.append(msg)


def make_orbs(fw, group, profile=OMNIORB_4):
    server_orb = ORB(fw.node(group[1].name), profile)
    client_orb = ORB(fw.node(group[0].name), profile)
    servant = Calculator()
    ref = server_orb.activate_object(servant, CALC_IDL, key="calc")
    proxy = client_orb.object_to_proxy(ref, CALC_IDL)
    return servant, proxy, server_orb, client_orb, ref


def test_orb_invocation_roundtrip(cluster):
    fw, group = cluster
    servant, proxy, server_orb, client_orb, ref = make_orbs(fw, group)

    def scenario():
        total = yield from proxy.invoke("add", 2.5, 4.0)
        text = yield from proxy.invoke("concat", "ab", 3)
        digest = yield from proxy.invoke("checksum", b"\x01\x02\x03\x04")
        return total, text, digest

    total, text, digest = run(fw, scenario())
    assert total == 6.5 and text == "ababab" and digest == 10
    assert server_orb.requests_served == 3


def test_orb_ior_stringification(cluster):
    fw, group = cluster
    servant, proxy, server_orb, client_orb, ref = make_orbs(fw, group)
    ior = ref.to_string()
    assert ior.startswith("corbaloc::")
    parsed = ObjectReference.from_string(ior)
    assert parsed.host_name == ref.host_name
    assert parsed.object_key == ref.object_key
    proxy2 = client_orb.string_to_object(ior, CALC_IDL)

    def scenario():
        return (yield from proxy2.invoke("add", 1.0, 1.0))

    assert run(fw, scenario()) == 2.0
    with pytest.raises(CorbaError):
        ObjectReference.from_string("IOR:00deadbeef")


def test_orb_system_exception_propagates(cluster):
    fw, group = cluster
    servant, proxy, *_ = make_orbs(fw, group)

    def scenario():
        try:
            yield from proxy.invoke("fail")
        except CorbaError as exc:
            return str(exc)

    assert "servant-side failure" in run(fw, scenario())


def test_orb_unknown_object_key(cluster):
    fw, group = cluster
    servant, proxy, server_orb, client_orb, ref = make_orbs(fw, group)
    bogus = ObjectReference(ref.host_name, ref.port, b"missing", CALC_IDL.repo_id)
    bogus_proxy = client_orb.object_to_proxy(bogus, CALC_IDL)

    def scenario():
        try:
            yield from bogus_proxy.invoke("add", 1.0, 1.0)
        except CorbaError:
            return "rejected"

    assert run(fw, scenario()) == "rejected"


def test_orb_oneway_invocation(cluster):
    fw, group = cluster
    servant, proxy, *_ = make_orbs(fw, group)

    def scenario():
        yield from proxy.invoke("notify", "fire-and-forget")
        yield fw.sim.timeout(1e-3)
        return servant.notifications

    assert run(fw, scenario()) == ["fire-and-forget"]


def test_orb_duplicate_key_rejected(cluster):
    fw, group = cluster
    orb = ORB(fw.node(group[0].name), OMNIORB_4)
    orb.activate_object(Calculator(), CALC_IDL, key="dup")
    with pytest.raises(CorbaError):
        orb.activate_object(Calculator(), CALC_IDL, key="dup")


def test_orb_runs_over_myrinet_through_syswrap(cluster):
    """The headline claim: an unmodified ORB uses Myrinet because SysWrap maps
    its sockets onto the MadIO VLink driver."""
    fw, group = cluster
    servant, proxy, server_orb, client_orb, ref = make_orbs(fw, group)

    def scenario():
        yield from proxy.invoke("add", 1.0, 1.0)
        conn = client_orb._client_conns[(ref.host_name, ref.port)]
        return conn.sock.driver_name

    assert run(fw, scenario()) == "madio"


def test_orb_profile_performance_ordering(cluster):
    """Zero-copy ORBs (omniORB) must beat copying ORBs (Mico/ORBacus) on both
    latency and large-message bandwidth — the Figure 3 / Table 1 shape."""
    fw, group = cluster
    measurements = {}
    for profile in (OMNIORB_3, OMNIORB_4, MICO_2_3_7, ORBACUS_4_0_5):
        servant, proxy, *_ = make_orbs(fw, group, profile=profile)

        def scenario(p=proxy):
            yield from p.invoke("checksum", b"w")  # warm up the connection
            t0 = fw.sim.now
            yield from p.invoke("checksum", b"p" * 8)
            latency = (fw.sim.now - t0) / 2
            t0 = fw.sim.now
            yield from p.invoke("checksum", b"B" * 500_000)
            rtt_large = fw.sim.now - t0
            return latency, rtt_large

        measurements[profile.name] = run(fw, scenario())

    lat = {name: m[0] for name, m in measurements.items()}
    bulk = {name: m[1] for name, m in measurements.items()}
    assert lat["omniORB-4.0.0"] < lat["omniORB-3.0.2"] < lat["ORBacus-4.0.5"] < lat["Mico-2.3.7"]
    assert bulk["omniORB-4.0.0"] < bulk["ORBacus-4.0.5"] < bulk["Mico-2.3.7"]
    # copying ORBs are several times slower on bulk transfers
    assert bulk["Mico-2.3.7"] / bulk["omniORB-4.0.0"] > 3.0


def test_orb_profiles_describe():
    assert "zero-copy" in OMNIORB_4.describe()
    assert "copying" in MICO_2_3_7.describe()
