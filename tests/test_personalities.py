"""Tests for the personality layer (Vio, SysWrap, Aio, FastMessage, virtual Madeleine)."""

import pytest

from tests.helpers import run

from repro.personalities import (
    AIO_INPROGRESS,
    AioControlBlock,
    AioError,
    AioPersonality,
    FastMessages,
    FMError,
    SocketError,
    SysWrap,
    Vio,
    VioError,
    VirtualMadeleine,
)
from repro.madeleine.message import PackMode


# --------------------------------------------------------------------------
# Vio
# --------------------------------------------------------------------------


def test_vio_connect_send_recv(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    vio0, vio1 = Vio(n0.vlink), Vio(n1.vlink)
    server = vio1.socket().bind(5100).listen()

    def scenario():
        accept_op = server.accept()
        client = vio0.socket()
        yield client.connect(n1.host, 5100)
        accepted = yield accept_op
        yield client.send(b"vio-hello")
        data = yield accepted.recv_exact(9)
        return client.connected, data, client.driver_name

    connected, data, driver = run(fw, scenario())
    assert connected and data == b"vio-hello"
    assert driver == "madio"  # SAN available: the selector picked the fast path
    assert vio0.open_sockets() >= 1


def test_vio_usage_errors(cluster):
    fw, group = cluster
    vio = Vio(fw.node(group[0].name).vlink)
    sock = vio.socket()
    with pytest.raises(VioError):
        sock.listen()  # listen before bind
    with pytest.raises(VioError):
        sock.accept()
    with pytest.raises(VioError):
        sock.send(b"x")  # not connected
    bound = vio.socket().bind(5101).listen()
    with pytest.raises(VioError):
        bound.connect(group[1], 5101)  # already listening


# --------------------------------------------------------------------------
# SysWrap
# --------------------------------------------------------------------------


def test_syswrap_bsd_style_exchange(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    wrap0, wrap1 = SysWrap(n0.vlink), SysWrap(n1.vlink)
    server = wrap1.socket()
    server.bind((n1.host.name, 5200))
    server.listen()

    def scenario():
        accept_ev = server.accept()
        client = wrap0.socket()
        yield client.connect((n1.host.name, 5200))  # connect by *name*: resolution via topology
        child, peer_addr = yield accept_ev
        yield client.sendall(b"legacy-code-bytes")
        data = yield child.recv_exact(17)
        return data, peer_addr[0], client.fileno(), client.getpeername()[0]

    data, peer, fd, peername = run(fw, scenario())
    assert data == b"legacy-code-bytes"
    assert peer == n0.host.name
    assert isinstance(fd, int) and fd >= 3
    assert peername == n1.host.name


def test_syswrap_forced_method_pins_driver(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    wrap0 = SysWrap(n0.vlink, forced_method="sysio")
    wrap1 = SysWrap(n1.vlink)
    server = wrap1.socket()
    server.bind((n1.host.name, 5201))
    server.listen()

    def scenario():
        accept_ev = server.accept()
        client = wrap0.socket()
        yield client.connect((n1.host, 5201))
        yield accept_ev
        return client.driver_name

    assert run(fw, scenario()) == "sysio"


def test_syswrap_errors(cluster):
    fw, group = cluster
    wrap = SysWrap(fw.node(group[0].name).vlink)
    sock = wrap.socket()
    with pytest.raises(SocketError):
        sock.listen()
    with pytest.raises(SocketError):
        sock.recv(4)
    sock.close()
    assert sock.fd not in wrap.open_fds()


# --------------------------------------------------------------------------
# Aio
# --------------------------------------------------------------------------


def test_aio_read_write_cycle(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(5300)
    aio = AioPersonality(fw.sim)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 5300)
        server = yield accept_op
        wcb = AioControlBlock(client, buffer=b"aio-data")
        assert aio.aio_write(wcb) == 0
        rcb = AioControlBlock(server, nbytes=8)
        assert aio.aio_read(rcb) == 0
        assert aio.aio_error(rcb) == AIO_INPROGRESS
        yield aio.aio_suspend([rcb])
        assert aio.aio_error(rcb) == 0
        return aio.aio_return(rcb), rcb.data

    nbytes, data = run(fw, scenario())
    assert nbytes == 8 and data == b"aio-data"


def test_aio_usage_errors(cluster):
    fw, group = cluster
    aio = AioPersonality(fw.sim)
    with pytest.raises(AioError):
        aio.aio_suspend([])
    cb = AioControlBlock(link=None, nbytes=0)
    with pytest.raises(AioError):
        aio.aio_read(cb)
    with pytest.raises(AioError):
        aio.aio_error(cb)
    with pytest.raises(AioError):
        aio.aio_return(cb)


# --------------------------------------------------------------------------
# FastMessages
# --------------------------------------------------------------------------


def test_fastmessage_handlers_and_extract(cluster):
    fw, group = cluster
    fm0 = FastMessages(fw.node(group[0].name).circuit("fm", group))
    fm1 = FastMessages(fw.node(group[1].name).circuit("fm", group))
    got = []
    fm1.register_handler(3, lambda msg: got.append((msg.src, msg.receive(), msg.receive())))
    assert fm0.nodeid == 0 and fm1.numnodes == 2

    def scenario():
        stream = fm0.begin_message(1, handler_id=3)
        stream.send_piece(b"piece-1").send_piece(b"piece-2")
        yield stream.end()
        # give the message time to arrive, then extract
        yield fw.sim.timeout(1e-3)
        handled = fm1.extract()
        return handled

    handled = run(fw, scenario())
    assert handled == 1
    assert got == [(0, b"piece-1", b"piece-2")]
    assert fm1.pending() == 0


def test_fastmessage_missing_handler_raises(cluster):
    fw, group = cluster
    fm0 = FastMessages(fw.node(group[0].name).circuit("fm2", group))
    fm1 = FastMessages(fw.node(group[1].name).circuit("fm2", group))

    def scenario():
        yield fm0.send(1, 99, b"data")
        yield fw.sim.timeout(1e-3)
        try:
            fm1.extract()
        except FMError:
            return "no-handler"

    assert run(fw, scenario()) == "no-handler"


def test_fastmessage_stream_misuse(cluster):
    fw, group = cluster
    fm0 = FastMessages(fw.node(group[0].name).circuit("fm3", group))
    stream = fm0.begin_message(1, 1)
    stream.send_piece(b"x")
    stream.end()
    with pytest.raises(FMError):
        stream.send_piece(b"late")
    with pytest.raises(FMError):
        stream.end()
    with pytest.raises(FMError):
        fm0.register_handler(-1, lambda m: None)


# --------------------------------------------------------------------------
# Virtual Madeleine
# --------------------------------------------------------------------------


def test_virtual_madeleine_pack_unpack(cluster):
    fw, group = cluster
    vm0 = VirtualMadeleine(fw.node(group[0].name))
    vm1 = VirtualMadeleine(fw.node(group[1].name))
    ch0 = vm0.open_channel("vm", group)
    ch1 = vm1.open_channel("vm", group)
    assert ch0.rank == 0 and ch1.size == 2

    def scenario():
        msg = ch0.begin_packing(1)
        ch0.pack(msg, b"header", PackMode.EXPRESS)
        ch0.pack(msg, b"bulk" * 20, PackMode.CHEAPER)
        ch0.end_packing(msg)
        src, incoming = yield ch1.begin_unpacking()
        hdr = ch1.unpack(incoming, PackMode.EXPRESS)
        bulk = ch1.unpack(incoming, PackMode.CHEAPER)
        ch1.end_unpacking(incoming)
        return src, hdr, bulk

    src, hdr, bulk = run(fw, scenario())
    assert (src, hdr, bulk) == (0, b"header", b"bulk" * 20)
    assert vm0.channels() == ["vm"]
