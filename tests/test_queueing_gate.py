"""Queueing-theory correctness gates for the simulation core.

Two closed-form checks guard the physical model under both fidelities:

* **M/M/1** — Poisson job arrivals pushed through a single serialization
  point (one NIC's transmit queue) with exponentially distributed sizes.
  The NIC's FIFO wire occupancy *is* the queue, so the measured mean
  sojourn time and utilization must match ``W = 1/(mu - lambda)`` and
  ``rho = lambda/mu``.  A concurrent TCP bulk flow runs alongside at the
  fidelity under test, proving the fluid fast path neither perturbs the
  queueing point nor is perturbed by it.
* **TCP steady state** — a bulk transfer's goodput must converge to the
  analytic ``steady_state_rate`` the fluid epoch tier integrates, in both
  fidelities, and the two fidelities must complete at the same instant.
"""

import random

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.fluid import steady_state_rate
from repro.simnet.host import Host
from repro.simnet.network import PARADIGM_PARALLEL, Network
from repro.simnet.networks import Ethernet100
from repro.simnet.tcp import TcpStack

PORT = 4242
MIB = 1024 * 1024


class _QueueLink(Network):
    """A bare message network used as a pure M/M/1 service station.

    Parallel paradigm so the OS TCP stack never claims its NICs; zero
    header bytes and a huge MTU make the service time exactly
    ``nbytes / bandwidth``.
    """

    paradigm = PARADIGM_PARALLEL

    def __init__(self, sim):
        super().__init__(
            sim,
            "mm1",
            latency=200e-6,
            bandwidth=10_000_000.0,
            mtu=1 << 30,
            header_bytes=0,
        )


def _run_mm1(fidelity, *, n_jobs=4000, lam=600.0, mean_size=10_000, seed=7):
    """Drive the queueing station and a concurrent TCP flow; return stats.

    Job service rate: mu = bandwidth / mean_size = 1000/s, so at
    lam = 600/s the station runs at rho = 0.6 with W = 1/(mu-lam) = 2.5 ms.
    """
    sim = Simulator()
    qnet = _QueueLink(sim)
    eth = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    for net in (qnet, eth):
        net.connect(a)
        net.connect(b)
    sa = TcpStack(a, fidelity=fidelity)
    sb = TcpStack(b, fidelity=fidelity)
    qnet.nic_of(b).set_receive_handler(lambda delivery: None, owner="mm1-sink")

    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    for _ in range(n_jobs):
        t += rng.expovariate(lam)
        size = max(1, round(rng.expovariate(1.0 / mean_size)))
        arrivals.append((t, size))

    res = {"sojourn": [], "service": [], "busy": 0.0, "last_end": 0.0}

    def submit(size):
        frame = qnet.transmit(a, b, b"\x00" * size)
        tx_begin, tx_end = frame.meta["tx_begin"], frame.meta["tx_end"]
        # sojourn = wait in the FIFO + service; propagation is not queueing
        res["sojourn"].append(tx_end - sim.now)
        res["service"].append(size / qnet.bandwidth)
        res["busy"] += tx_end - tx_begin
        res["last_end"] = max(res["last_end"], tx_end)

    for at, size in arrivals:
        sim.call_at(at, submit, size)

    listener = sb.listen(PORT)
    nbytes = 8 * MIB

    def client():
        conn = yield sa.connect(b, PORT)
        res["conn"] = conn
        res["t0"] = sim.now
        yield conn.send(b"x" * nbytes)

    def server():
        conn = yield listener.accept()
        data = yield conn.recv_exact(nbytes)
        res["t1"] = sim.now
        res["tcp_ok"] = data == b"x" * nbytes

    sim.process(client())
    sim.process(server())
    sim.run(max_time=600.0)

    res["first_arrival"] = arrivals[0][0]
    res["last_arrival"] = arrivals[-1][0]
    return res


@pytest.mark.parametrize("fidelity", ["packet", "hybrid"])
def test_mm1_sojourn_and_utilization_match_theory(fidelity):
    res = _run_mm1(fidelity)
    assert res["tcp_ok"]
    n = len(res["sojourn"])
    assert n == 4000

    # empirical rates (removes the seed's sampling noise from the inputs,
    # leaving only the queueing dynamics under test)
    lam_hat = n / res["last_arrival"]
    mean_service = sum(res["service"]) / n
    mu_hat = 1.0 / mean_service
    assert lam_hat < mu_hat  # stable queue

    w_measured = sum(res["sojourn"]) / n
    w_theory = 1.0 / (mu_hat - lam_hat)
    assert w_measured == pytest.approx(w_theory, rel=0.10)

    span = res["last_end"] - res["first_arrival"]
    rho_measured = res["busy"] / span
    rho_theory = lam_hat * mean_service
    assert rho_measured == pytest.approx(rho_theory, rel=0.05)

    if fidelity == "hybrid":
        # the concurrent flow really exercised the fast path
        assert res["conn"]._fluid.fluid_rounds > 0


def test_mm1_station_is_fidelity_invariant():
    """The queueing point rides its own NIC: switching the TCP flow to the
    fluid fast path must not move a single sojourn time, and the TCP flow
    itself must complete at the identical virtual instant."""
    packet = _run_mm1("packet")
    hybrid = _run_mm1("hybrid")
    assert hybrid["sojourn"] == packet["sojourn"]
    assert hybrid["busy"] == packet["busy"]
    assert hybrid["t1"] == packet["t1"]
    assert hybrid["conn"].bytes_sent == packet["conn"].bytes_sent


def _run_bulk(fidelity, nbytes):
    sim = Simulator()
    net = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    sa = TcpStack(a, fidelity=fidelity)
    sb = TcpStack(b, fidelity=fidelity)
    listener = sb.listen(PORT)
    out = {"net": net}

    def client():
        conn = yield sa.connect(b, PORT)
        out["conn"] = conn
        out["t0"] = sim.now
        yield conn.send(b"x" * nbytes)

    def server():
        conn = yield listener.accept()
        data = yield conn.recv_exact(nbytes)
        out["t1"] = sim.now
        out["ok"] = data == b"x" * nbytes

    sim.process(client())
    sim.process(server())
    sim.run(max_time=600.0)
    return out


@pytest.mark.parametrize("fidelity", ["packet", "hybrid"])
def test_tcp_goodput_converges_to_steady_state_rate(fidelity):
    nbytes = 16 * MIB
    out = _run_bulk(fidelity, nbytes)
    assert out["ok"]
    conn = out["conn"]
    goodput = nbytes / (out["t1"] - out["t0"])
    expected = steady_state_rate(
        out["net"], conn.cwnd, conn.stack.model.receive_window
    )
    # slow-start ramp dilutes the first few rounds; 16 MiB leaves the
    # steady state dominant
    assert goodput == pytest.approx(expected, rel=0.05)


def test_tcp_completion_identical_across_fidelities():
    packet = _run_bulk("packet", 16 * MIB)
    hybrid = _run_bulk("hybrid", 16 * MIB)
    assert hybrid["t0"] == packet["t0"]
    assert hybrid["t1"] == packet["t1"]
    assert hybrid["conn"].bytes_sent == packet["conn"].bytes_sent
    assert hybrid["conn"].rounds == packet["conn"].rounds
