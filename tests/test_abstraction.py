"""Tests for the abstraction layer: VLink, Circuit, adapters, topology, selector."""

import pytest

from tests.helpers import run

from repro.abstraction import (
    AbstractionError,
    LinkClass,
    Preferences,
)
from repro.abstraction.circuit import circuit_port
from repro.core import paper_cluster, two_cluster_grid
from repro.core.framework import PadicoFramework
from repro.simnet.networks import Ethernet100, LossyInternet, Myrinet2000, WanVthd


# --------------------------------------------------------------------------
# Topology knowledge base + selector
# --------------------------------------------------------------------------


def test_topology_link_classification():
    fw = PadicoFramework()
    a = fw.add_host("a", site="s1")
    b = fw.add_host("b", site="s1")
    c = fw.add_host("c", site="s2")
    myri = fw.add_network(Myrinet2000(fw.sim))
    eth = fw.add_network(Ethernet100(fw.sim))
    wan = fw.add_network(WanVthd(fw.sim))
    lossy = fw.add_network(LossyInternet(fw.sim))
    for net in (myri, eth):
        net.connect(a)
        net.connect(b)
    wan.connect(a)
    wan.connect(c)
    lossy.connect(b)
    lossy.connect(c)
    kb = fw.topology
    assert kb.link_class(a, b) is LinkClass.SAN
    assert kb.link_class(a, c) is LinkClass.WAN
    assert kb.link_class(b, c) is LinkClass.LOSSY_WAN
    assert kb.link_class(a, a) is LinkClass.LOCAL
    d = fw.add_host("d")
    assert kb.link_class(a, d) is LinkClass.NONE
    assert kb.host_by_name("a") is a
    with pytest.raises(LookupError):
        kb.host_by_name("zz")
    profile = kb.link_profile(a, b)
    assert profile.best_network is myri
    assert profile.has_parallel_network and profile.has_distributed_network
    adjacency = kb.adjacency()
    assert adjacency[("a", "b")] == "san"


def test_topology_prefers_lan_over_wan_and_san_over_all():
    fw = PadicoFramework()
    a = fw.add_host("a")
    b = fw.add_host("b")
    eth = fw.add_network(Ethernet100(fw.sim))
    wan = fw.add_network(WanVthd(fw.sim))
    for net in (eth, wan):
        net.connect(a)
        net.connect(b)
    assert fw.topology.link_class(a, b) is LinkClass.LAN
    assert fw.topology.best_network([wan, eth]) is eth


def test_selector_default_policy():
    fw, group = paper_cluster(2)
    selector = fw.selector
    a, b = group[0], group[1]
    available = ["madio", "sysio", "loopback"]
    choice = selector.choose_vlink(a, b, available)
    assert choice.method == "madio" and choice.cross_paradigm
    circuit_choice = selector.choose_circuit(a, b, available)
    assert circuit_choice.method == "madio" and not circuit_choice.cross_paradigm


def test_selector_falls_back_when_preferred_method_missing():
    fw, group = paper_cluster(2, myrinet=False)
    choice = fw.selector.choose_vlink(group[0], group[1], ["sysio"])
    assert choice.method == "sysio"
    assert choice.link_class is LinkClass.LAN


def test_selector_wan_prefers_parallel_streams_when_available():
    from repro.core import paper_wan_pair

    fw, group = paper_wan_pair()
    got = fw.selector.choose_vlink(group[0], group[1], ["sysio", "parallel_streams"])
    assert got.method == "parallel_streams"
    without = fw.selector.choose_vlink(group[0], group[1], ["sysio"])
    assert without.method == "sysio"


def test_selector_user_preferences_override():
    fw, group = paper_cluster(2)
    fw.preferences.prefer_vlink(LinkClass.SAN, "sysio")
    choice = fw.selector.choose_vlink(group[0], group[1], ["madio", "sysio"])
    assert choice.method == "sysio"


def test_selector_errors():
    fw, group = paper_cluster(2)
    with pytest.raises(AbstractionError):
        fw.selector.choose_vlink(group[0], group[1], [])
    lonely = fw.add_host("lonely")
    with pytest.raises(AbstractionError):
        fw.selector.choose_vlink(group[0], lonely, ["sysio"])


def test_selector_security_requirement():
    prefs = Preferences(require_security_cross_site=True)
    fw, ca, cb, grid = two_cluster_grid(1, preferences=prefs)
    assert fw.selector.needs_security(ca[0], cb[0])
    assert not fw.selector.needs_security(ca[0], ca[0])
    fw2, group2 = paper_cluster(2)
    assert not fw2.selector.needs_security(group2[0], group2[1])


# --------------------------------------------------------------------------
# VLink
# --------------------------------------------------------------------------


def vlink_pair(fw, group, port=4500, method=None):
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(port)

    def connect():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, port, method=method)
        server = yield accept_op
        return client, server

    return run(fw, connect())


def test_vlink_post_poll_handler_semantics(cluster):
    fw, group = cluster
    client, server = vlink_pair(fw, group)
    handler_calls = []

    def scenario():
        op = client.write(b"hello")
        assert op.kind == "write"
        read_op = server.read(5)
        read_op.set_handler(lambda o: handler_calls.append(o.value))
        assert not read_op.poll()
        yield read_op
        assert read_op.poll()
        assert read_op.result == b"hello"
        return read_op.value

    assert run(fw, scenario()) == b"hello"
    assert handler_calls == [b"hello"]


def test_vlink_over_madio_latency_matches_table1(cluster):
    fw, group = cluster
    client, server = vlink_pair(fw, group)
    assert client.driver_name == "madio"

    def pingpong():
        # warm up
        client.write(b"w" * 8)
        yield server.read(8)
        server.write(b"w" * 8)
        yield client.read(8)
        t0 = fw.sim.now
        n = 10
        for _ in range(n):
            client.write(b"p" * 8)
            data = yield server.read(8)
            server.write(data)
            yield client.read(8)
        return (fw.sim.now - t0) / n / 2

    latency = run(fw, pingpong())
    assert 9.0e-6 < latency < 11.5e-6  # paper: 10.2 us


def test_vlink_read_not_exact(cluster):
    fw, group = cluster
    client, server = vlink_pair(fw, group)

    def scenario():
        client.write(b"abc")
        data = yield server.read(100, exact=False)
        return data

    assert run(fw, scenario()) == b"abc"


def test_vlink_close_and_use_after_close(cluster):
    fw, group = cluster
    client, server = vlink_pair(fw, group)

    def scenario():
        yield client.close()
        try:
            client.write(b"x")
        except AbstractionError:
            return "rejected"

    assert run(fw, scenario()) == "rejected"


def test_vlink_loopback_driver(cluster):
    fw, group = cluster
    node = fw.node(group[0].name)
    listener = node.vlink_listen(4700)

    def scenario():
        accept_op = listener.accept()
        client = yield node.vlink_connect(node, 4700, method="loopback")
        server = yield accept_op
        client.write(b"local")
        data = yield server.read(5)
        return client.driver_name, data

    driver, data = run(fw, scenario())
    assert driver == "loopback"
    assert data == b"local"


def test_vlink_connect_unknown_port_fails(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)

    def scenario():
        try:
            yield n0.vlink_connect(n1, 49999, method="madio")
        except ConnectionRefusedError:
            return "refused"

    assert run(fw, scenario()) == "refused"


def test_vlink_duplicate_listen_rejected(cluster):
    fw, group = cluster
    node = fw.node(group[0].name)
    node.vlink_listen(4800)
    with pytest.raises(AbstractionError):
        node.vlink_listen(4800)


def test_vlink_unknown_driver_rejected(cluster):
    fw, group = cluster
    node = fw.node(group[0].name)
    with pytest.raises(AbstractionError):
        node.vlink.driver("no-such-driver")


# --------------------------------------------------------------------------
# Circuit
# --------------------------------------------------------------------------


def test_circuit_port_is_deterministic():
    assert circuit_port("abc") == circuit_port("abc")
    assert 20000 <= circuit_port("anything") < 40000


def test_circuit_straight_path_latency_and_integrity(cluster):
    fw, group = cluster
    c0 = fw.node(group[0].name).circuit("t", group)
    c1 = fw.node(group[1].name).circuit("t", group)
    assert c0.route_for(1).method == "madio"

    def scenario():
        msg = c0.new_message(1)
        msg.pack_express(b"HDR").pack_cheaper(b"DATA" * 50)
        c0.post(msg)
        src, incoming = yield c1.recv()
        return src, incoming.unpack_express(), incoming.unpack_cheaper()

    src, hdr, data = run(fw, scenario())
    assert (src, hdr, data) == (0, b"HDR", b"DATA" * 50)
    assert c0.messages_sent == 1
    assert c1.messages_received == 1


def test_circuit_over_sysio_on_ethernet_only_cluster(ethernet_cluster):
    fw, group = ethernet_cluster
    c0 = fw.node(group[0].name).circuit("e", group)
    c1 = fw.node(group[1].name).circuit("e", group)
    assert c0.route_for(1).method == "sysio"
    assert c0.route_for(1).cross_paradigm

    def scenario():
        c0.send(1, b"over-tcp", b"payload" * 100)
        src, incoming = yield c1.recv()
        a = incoming.unpack()
        b = incoming.unpack()
        return src, a, b

    src, a, b = run(fw, scenario())
    assert (src, a, b) == (0, b"over-tcp", b"payload" * 100)


def test_circuit_bidirectional_and_multiple_messages(cluster):
    fw, group = cluster
    c0 = fw.node(group[0].name).circuit("bi", group)
    c1 = fw.node(group[1].name).circuit("bi", group)

    def scenario():
        for i in range(5):
            c0.send(1, bytes([i]) * 10)
        got = []
        for _ in range(5):
            _, incoming = yield c1.recv()
            got.append(incoming.unpack())
        c1.send(0, b"reply")
        _, back = yield c0.recv()
        return got, back.unpack()

    got, reply = run(fw, scenario())
    assert got == [bytes([i]) * 10 for i in range(5)]
    assert reply == b"reply"


def test_circuit_forced_methods_ablation(cluster):
    """The dual-abstraction ablation: forcing the cross-paradigm path on a SAN
    (everything through the distributed abstraction) must be slower than the
    straight parallel path — the paper's Figure 1 argument."""
    fw, group = cluster

    def one_way(circuit_name, methods):
        c0 = fw.node(group[0].name).circuit(circuit_name, group, methods=methods)
        c1 = fw.node(group[1].name).circuit(circuit_name, group, methods=methods)

        def scenario():
            t0 = fw.sim.now
            c0.send(1, b"x" * 64)
            yield c1.recv()
            return fw.sim.now - t0

        return run(fw, scenario())

    straight = one_way("straight", None)
    forced_cross = one_way("forced", {0: "sysio", 1: "sysio"})
    assert straight < forced_cross


def test_circuit_rank_errors(cluster):
    fw, group = cluster
    c0 = fw.node(group[0].name).circuit("err", group)
    with pytest.raises(AbstractionError):
        c0.new_message(7)
    with pytest.raises(AbstractionError):
        c0.adapter_for(5)


def test_circuit_group_membership_enforced(cluster4):
    fw, group = cluster4
    sub = fw.group([group[0].name, group[1].name], "sub")
    outsider = fw.node(group[2].name)
    with pytest.raises(AbstractionError):
        outsider.circuit("sub-circuit", sub)


def test_circuit_multi_node_group(cluster4):
    fw, group = cluster4
    circuits = [fw.node(h.name).circuit("ring", group) for h in group]

    def scenario():
        # each rank sends to the next rank
        for i, c in enumerate(circuits):
            c.send((i + 1) % len(circuits), f"from-{i}".encode())
        got = {}
        for i, c in enumerate(circuits):
            src, incoming = yield c.recv()
            got[i] = (src, incoming.unpack())
        return got

    got = run(fw, scenario())
    for i in range(4):
        expected_src = (i - 1) % 4
        assert got[i] == (expected_src, f"from-{expected_src}".encode())
