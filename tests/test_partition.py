"""Tests for the partitioned simulation kernel (`repro.simnet.partition`).

Covers the facade dispatch, per-partition scheduling and clocks, the
conservative-window run loop, boundary mailboxes (including the documented
deterministic ordering for same-timestamp cross-partition deliveries),
lookahead violations, executors, and the framework-level integration
(partitioned grid deployment with monitoring and churn delivering the same
bytes as the single-loop kernel).
"""

import pytest

from repro.core import PadicoFramework
from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.networks import Ethernet100, WanVthd, grid_deployment
from repro.simnet.partition import (
    DEFAULT_LOOKAHEAD,
    LookaheadViolation,
    PartitionedSimulator,
)


# ---------------------------------------------------------------------------
# construction & dispatch
# ---------------------------------------------------------------------------


def test_simulator_dispatches_on_partitions():
    assert type(Simulator()) is Simulator
    assert type(Simulator(partitions=1)) is Simulator
    sim = Simulator(partitions=2)
    assert isinstance(sim, PartitionedSimulator)
    assert sim.partition_count == 2
    assert Simulator().partition_count == 1


def test_partitioned_rejects_bad_config():
    with pytest.raises(SimulationError):
        PartitionedSimulator(partitions=1)
    with pytest.raises(SimulationError):
        Simulator(partitions=2, lookahead=0.0)
    with pytest.raises(SimulationError):
        Simulator(partitions=2, executor="bogus")
    # the process executor constructs (workers fork lazily at first run)
    sim = Simulator(partitions=2, executor="process")
    assert isinstance(sim, PartitionedSimulator)
    sim.shutdown()  # no workers yet: a no-op
    with pytest.raises((SimulationError, TypeError)):
        # subclasses cannot be sharded through the kwarg
        from repro.simnet.engine import ReferenceSimulator

        ReferenceSimulator(partitions=2)


def test_single_loop_partition_hooks_are_noops():
    sim = Simulator()
    fired = []
    with sim.in_partition(5):
        sim.call_later(1.0, lambda: fired.append(sim.now))
    handle = sim.call_at_partition(3, 2.0, lambda: fired.append(sim.now))
    assert handle is not None  # single loop returns a cancellable handle
    sim.run()
    assert fired == [1.0, 2.0]
    assert sim.current_partition == 0


# ---------------------------------------------------------------------------
# per-partition scheduling, clocks, run semantics
# ---------------------------------------------------------------------------


def test_in_partition_routes_and_clocks_advance():
    sim = Simulator(partitions=3)
    fired = []
    for part, delay in ((0, 3.0), (1, 1.0), (2, 2.0)):
        with sim.in_partition(part):
            sim.call_later(delay, lambda p=part: fired.append((p, sim.now)))
    with pytest.raises(SimulationError):
        sim.in_partition(3)
    sim.run()
    assert sorted(fired) == [(0, 3.0), (1, 1.0), (2, 2.0)]
    # natural exhaustion commits a common clock across partitions
    assert sim.now == 3.0
    sim.call_later(1.0, lambda: fired.append(("late", sim.now)))
    sim.run()
    assert fired[-1] == ("late", 4.0)


def test_partition_local_order_is_exact():
    """Within one partition the executed order is the single-kernel
    (when, seq) order, ties FIFO."""
    sim = Simulator(partitions=2)
    fired = []
    with sim.in_partition(1):
        for name in "abcd":
            sim.call_later(1.0, lambda n=name: fired.append(n))
        sim.call_later(0.5, lambda: fired.append("early"))
    sim.run()
    assert fired == ["early", "a", "b", "c", "d"]


def test_events_and_processes_ride_the_triggering_partition():
    sim = Simulator(partitions=2)
    log = []

    def proc():
        value = yield sim.timeout(0.25, value="tick")
        log.append((sim.current_partition, value))
        return "done"

    with sim.in_partition(1):
        p = sim.process(proc())
    assert sim.run(until=p) == "done"
    assert log == [(1, "tick")]


def test_run_until_time_sets_all_clocks():
    sim = Simulator(partitions=2)
    fired = []
    with sim.in_partition(1):
        sim.call_later(1.0, lambda: fired.append(1))
        sim.call_later(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    assert sim.pending_count() == 1
    sim.run()
    assert fired == [1, 2]


def test_run_until_event_and_deadlock_detection():
    sim = Simulator(partitions=2)
    ev = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=ev)
    with sim.in_partition(1):
        sim.call_later(0.5, ev.succeed, "val")
    assert sim.run(until=ev) == "val"


def test_max_time_guard():
    sim = Simulator(partitions=2)

    def forever():
        while True:
            yield sim.timeout(1.0)

    with sim.in_partition(1):
        sim.process(forever())
    with pytest.raises(SimulationError, match="max_time"):
        sim.run(max_time=10.0)


def test_stop_halts_at_the_barrier():
    sim = Simulator(partitions=2, lookahead=10.0)
    fired = []
    sim.call_later(1.0, sim.stop)
    sim.call_later(2.0, lambda: fired.append("same-shard-later"))
    with sim.in_partition(1):
        sim.call_later(50.0, lambda: fired.append("other-shard"))
    sim.run()
    # shard 0 stopped at t=1 before its t=2 entry; shard 1 was skipped
    assert fired == []
    assert sim.pending_count() == 2
    sim.run()
    assert fired == ["same-shard-later", "other-shard"]


def test_step_is_unavailable():
    sim = Simulator(partitions=2)
    with pytest.raises(SimulationError, match="window-at-a-time"):
        sim.step()


def test_stats_and_pending_aggregate_across_partitions():
    sim = Simulator(partitions=2)
    handles = []
    for part in (0, 1):
        with sim.in_partition(part):
            handles.append(sim.call_later(1.0, lambda: None))
            handles.append(sim.call_later(2.0, lambda: None))
    assert sim.pending_count() == 4
    handles[0].cancel()
    assert sim.pending_count() == 3
    sim.run()
    stats = sim.stats()
    assert stats.timers_scheduled == 4
    assert stats.cancellations == 1
    assert stats.events_processed == 3
    assert len(sim.partition_stats()) == 2


# ---------------------------------------------------------------------------
# boundary mailboxes & lookahead
# ---------------------------------------------------------------------------


def test_cross_partition_mailbox_delivery():
    sim = Simulator(partitions=2, lookahead=0.01)
    log = []

    def send():
        sim.call_at_partition(1, sim.now + 0.02, log.append, ("delivered", 1))

    sim.call_later(0.001, send)
    with sim.in_partition(1):
        sim.call_later(0.1, lambda: log.append(("tail", sim.now)))
    sim.run()
    assert log == [("delivered", 1), ("tail", 0.1)]
    assert sim.mailbox_deliveries == 1


def test_mailbox_same_timestamp_ordering_rule():
    """Same-timestamp cross-partition deliveries drain in
    (when, send-time, source partition, source seq) order, regardless of
    which partition's window ran first."""
    sim = Simulator(partitions=3, lookahead=0.01)
    arrival = 0.05
    order = []

    def send(tag):
        sim.call_at_partition(2, arrival, order.append, tag)

    # p1 sends earlier in virtual time than p0; p0 and p1 also send at an
    # identical timestamp (t=0.003), where the lower partition index wins;
    # a same-partition pair at one timestamp keeps scheduling order.
    sim.call_later(0.003, send, "p0@3")  # partition 0
    with sim.in_partition(1):
        sim.call_later(0.001, send, "p1@1")
        sim.call_later(0.003, send, "p1@3a")
        sim.call_later(0.003, send, "p1@3b")
    sim.run()
    assert order == ["p1@1", "p0@3", "p1@3a", "p1@3b"]


def test_in_partition_refused_across_shards_mid_run():
    """Model code must not enter another partition directly (the target
    clock is mid-window); same-partition entry and the mailbox path stay
    available."""
    sim = Simulator(partitions=2, lookahead=0.01)
    outcomes = []

    def from_model_code():
        with pytest.raises(SimulationError, match="cannot enter partition 1"):
            with sim.in_partition(1):
                pass
        with sim.in_partition(0):  # own partition: fine
            sim.call_later(0.001, lambda: outcomes.append("own"))
        sim.call_at_partition(1, sim.now + 0.02, outcomes.append, "mailbox")

    sim.call_later(0.005, from_model_code)
    sim.run()
    assert outcomes == ["own", "mailbox"]


def test_lookahead_violation_raises():
    sim = Simulator(partitions=2, lookahead=0.01)

    def too_fast():
        sim.call_at_partition(1, sim.now + 0.001, lambda: None)

    sim.call_later(0.005, too_fast)
    with pytest.raises(LookaheadViolation):
        sim.run()


def test_partition_local_call_at_partition_is_direct():
    sim = Simulator(partitions=2, lookahead=0.01)
    log = []

    def local():
        # same-partition target: no mailbox, sub-lookahead delay is fine
        handle = sim.call_at_partition(0, sim.now + 0.0001, log.append, "local")
        assert handle is not None

    sim.call_later(0.001, local)
    sim.run()
    assert log == ["local"]
    assert sim.mailbox_deliveries == 0


def test_boundary_network_autoregisters_and_bounds_lookahead():
    sim = Simulator(partitions=2)
    assert sim.effective_lookahead() == DEFAULT_LOOKAHEAD
    lan = Ethernet100(sim, "lan-part0")
    wan = WanVthd(sim, "wan-x")
    from repro.simnet.host import Host

    a, b, c = Host(sim, "a"), Host(sim, "b"), Host(sim, "c")
    b.partition = 1
    lan.connect(a), lan.connect(c)  # same partition: not a boundary
    wan.connect(a), wan.connect(b)  # spans partitions 0 and 1
    assert wan in sim.boundary_networks()
    assert lan not in sim.boundary_networks()
    assert sim.effective_lookahead() == wan.latency
    # degraded boundary latency shrinks the next window dynamically
    wan.latency = wan.latency / 2
    assert sim.effective_lookahead() == wan.latency


def test_network_transmit_crosses_partitions():
    """A frame over a partition-spanning WAN is delivered through the
    boundary mailbox at the exact arrival time the wire model computes."""
    sim = Simulator(partitions=2)
    wan = WanVthd(sim, "wan-b")
    from repro.simnet.host import Host

    a, b = Host(sim, "a"), Host(sim, "b")
    b.partition = 1
    wan.connect(a), wan.connect(b)
    got = []
    wan.nic_of(b).set_receive_handler(
        lambda delivery: got.append((delivery.payload, sim.now, sim.current_partition)),
        owner="test",
    )
    expected_arrival = wan.one_way_time(100)
    sim.call_later(0.0, wan.transmit, a, b, bytes(100))
    sim.run()
    assert got == [(bytes(100), expected_arrival, 1)]
    assert sim.mailbox_deliveries == 1


# ---------------------------------------------------------------------------
# determinism: round-robin vs thread executor vs single loop
# ---------------------------------------------------------------------------


def _mesh_scenario(sim, nparts):
    """A seeded multi-partition workload: per-partition timer storms plus
    cross-partition 'WAN' messages at >= lookahead delays.  Returns
    per-partition traces of (time, label)."""
    import random

    lookahead = 0.01
    traces = [[] for _ in range(nparts)]
    rng = random.Random(0xA11CE)

    def local(part, label, depth):
        traces[part].append((round(sim.now, 9), label))
        if depth > 0:
            for i in range(rng_draws[part].randrange(1, 3)):
                delay = rng_draws[part].random() * 0.004
                sim.call_later(delay, local, part, f"{label}.{i}", depth - 1)

    def send(part, label, depth):
        traces[part].append((round(sim.now, 9), f"recv:{label}"))
        if depth > 0:
            target = (part + 1) % nparts
            sim.call_at_partition(
                target, sim.now + lookahead + 0.002, send, target, f"{label}>", depth - 1
            )

    # per-partition rngs: draws must not depend on cross-partition order
    rng_draws = [random.Random(rng.randrange(1 << 30)) for _ in range(nparts)]
    for part in range(nparts):
        with sim.in_partition(part):
            for k in range(4):
                sim.call_later(rng.random() * 0.01, local, part, f"seed{part}.{k}", 3)
            sim.call_later(rng.random() * 0.005, send, part, f"msg{part}", 5)
    # `send` crosses partitions: name it for the process executor's wire
    # codec, and expose the traces through a collector (each worker owns its
    # partition's list).  No-ops / local eval on the other executors.
    sim.register_wire_handler("mesh.send", send)
    sim.register_collector("mesh.traces", lambda p: traces[p])
    sim.run()
    if getattr(getattr(sim, "_executor", None), "is_process", False):
        traces = sim.collect("mesh.traces")
        sim.shutdown()
    return traces


@pytest.mark.parametrize("nparts", [2, 4])
def test_partitioned_trace_matches_itself_and_single_loop(nparts):
    single = _mesh_scenario(Simulator(), nparts)
    multi = _mesh_scenario(Simulator(partitions=nparts, lookahead=0.01), nparts)
    assert multi == single
    assert sum(len(t) for t in multi) > 50


def test_thread_executor_matches_round_robin():
    round_robin = _mesh_scenario(Simulator(partitions=3, lookahead=0.01), 3)
    for _repeat in range(2):
        threaded = _mesh_scenario(
            Simulator(partitions=3, lookahead=0.01, executor="thread"), 3
        )
        assert threaded == round_robin


def test_process_executor_matches_round_robin():
    """The process executor — shard-owned replicas, wire-serialized
    mailboxes — must reproduce the round-robin merged trace exactly."""
    round_robin = _mesh_scenario(Simulator(partitions=3, lookahead=0.01), 3)
    forked = _mesh_scenario(
        Simulator(partitions=3, lookahead=0.01, executor="process"), 3
    )
    assert forked == round_robin
    assert sum(len(t) for t in forked) > 50


# ---------------------------------------------------------------------------
# framework integration
# ---------------------------------------------------------------------------


def _grid_transfer(partitions, executor=None):
    """A 2-cluster grid with monitoring + churn and one relayed
    cross-cluster stream; returns (bytes, virtual finish time, sim)."""
    fw = (
        PadicoFramework(partitions=partitions, executor=executor)
        if partitions
        else PadicoFramework()
    )
    grid = grid_deployment(fw, rows=1, cols=2, hosts_per_cluster=3)
    fw.boot()
    wan = grid.wans[0]
    fw.monitoring.watch(wan, interval=0.005, seed=0x1234)
    injector = fw.fault_injector(seed=0x77, announce=True)
    injector.degrade_link_at(0.05, wan, bandwidth=9.0e6, loss_rate=0.001)
    injector.recover_link_at(0.11, wan)

    src = grid.clusters[0][1]
    dst = grid.clusters[1][2]
    total = 192 * 1024
    listener = fw.node(dst.name).vlink_listen(4000)
    done = fw.sim.event(name="xfer")

    def on_accept(link):
        state = {"got": 0}

        def reader():
            while state["got"] < total:
                data = yield link.read(min(8192, total - state["got"]))
                state["got"] += len(data)
            done.succeed((state["got"], fw.sim.now))

        fw.sim.process(reader(), name="rx")

    listener.set_accept_callback(on_accept)

    def writer():
        link = yield fw.node(src.name).vlink_connect(fw.node(dst.name), 4000)
        sent = 0
        payload = bytes(16 * 1024)
        while sent < total:
            yield link.write(payload[: min(len(payload), total - sent)])
            sent += min(len(payload), total - sent)

    with fw.sim.in_partition(src.partition):
        fw.sim.process(writer(), name="tx")

    got, finished_at = fw.sim.run(until=done, max_time=30.0)
    fw.sim.run(until=max(0.2, fw.sim.now))
    fw.monitoring.stop()
    return got, round(finished_at, 9), fw


def test_partitioned_grid_deployment_assigns_partitions():
    fw = PadicoFramework(partitions=2)
    grid = grid_deployment(fw, rows=1, cols=2, hosts_per_cluster=3)
    assert {h.partition for h in grid.clusters[0]} == {0}
    assert {h.partition for h in grid.clusters[1]} == {1}
    # manual deployments assign through add_host
    assert fw.add_host("manual", partition=1).partition == 1
    assert fw.add_host("defaulted").partition == 0
    # misconfiguration fails at build/boot time, not mid-run
    with pytest.raises(ValueError, match="has 2"):
        grid_deployment(fw, rows=1, cols=1, hosts_per_cluster=1, partitions=4)
    fw.add_host("stray", partition=7)
    from repro.core.framework import FrameworkError

    with pytest.raises(FrameworkError, match="partition 7"):
        fw.boot(["stray"])
    assert grid.lans[0].partition == 0 and grid.lans[1].partition == 1
    assert grid.wans[0].owning_partition() == 0
    assert grid.wans[0] in fw.sim.boundary_networks()
    # window width is the WAN latency (the only boundary link)
    assert fw.sim.effective_lookahead() == grid.wans[0].latency


def test_partitioned_relayed_stream_delivers_same_bytes_as_single_loop():
    got_single, t_single, _ = _grid_transfer(None)
    got_multi, t_multi, sim_fw = _grid_transfer(2)
    assert got_single == got_multi == 192 * 1024
    assert t_multi == t_single
    assert sim_fw.sim.mailbox_deliveries > 0
    assert sim_fw.sim.windows_run > 0


def test_partitioned_on_demand_gateway_boot_mid_run():
    """A routed connect whose relay gateway was never booted must provision
    it from model code — across partitions — exactly like the single loop
    (the gateway boots in the caller's context; wiring only)."""
    fw = PadicoFramework(partitions=2)
    grid = grid_deployment(fw, rows=1, cols=2, hosts_per_cluster=3)
    src, dst = grid.clusters[0][1], grid.clusters[1][2]
    # boot only the endpoints: both gateways stay down until the connect
    fw.boot([src.name, dst.name])
    listener = fw.node(dst.name).vlink_listen(4100)
    total = 64 * 1024
    done = fw.sim.event(name="xfer")

    def on_accept(link):
        def reader():
            got = 0
            while got < total:
                data = yield link.read(min(8192, total - got))
                got += len(data)
            done.succeed(got)

        fw.sim.process(reader(), name="rx")

    listener.set_accept_callback(on_accept)

    def writer():
        # connect *inside the run*: ensure_gateways boots both gateways on
        # demand from partition 0's model code
        link = yield fw.node(src.name).vlink_connect(fw.node(dst.name), 4100)
        sent = 0
        while sent < total:
            yield link.write(bytes(min(16 * 1024, total - sent)))
            sent += min(16 * 1024, total - sent)

    with fw.sim.in_partition(src.partition):
        fw.sim.process(writer(), name="tx")
    got = fw.sim.run(until=done, max_time=30.0)
    assert got == total
    assert all(fw.node(g.name).booted for g in grid.gateways)


def test_partitioned_framework_with_thread_executor_delivers():
    got, _t, fw = _grid_transfer(2, executor="thread")
    assert got == 192 * 1024
    assert fw.sim.mailbox_deliveries > 0


def test_partitioned_framework_with_process_executor_matches_single_loop():
    """The full framework stack — relayed VLink stream, monitoring probes,
    seeded churn, on-demand gateway WAN-method provisioning — must land the
    same bytes at the same virtual instant under the process executor."""
    got_single, t_single, _ = _grid_transfer(None)
    got_proc, t_proc, fw = _grid_transfer(2, executor="process")
    try:
        assert got_proc == got_single == 192 * 1024
        assert t_proc == t_single
        assert fw.sim.mailbox_deliveries > 0
        assert fw.sim.windows_run > 0
    finally:
        fw.shutdown()


# ---------------------------------------------------------------------------
# barrier-synchronized churn on boundary links
# ---------------------------------------------------------------------------


def _boundary_churn_scenario(period=2e-4, horizon=0.24, executor=None):
    """Two partitions joined by a WAN with dense cross-boundary traffic.

    Returns (sim, wan, hosts, got, nsent): ``tick`` events in partition 0
    transmit small frames to partition 1 every ``period`` seconds.  Under
    the process executor read arrivals back with ``sim.collect("churn.got")``
    (the ``got`` list lives in worker 1's replica).
    """
    from repro.simnet.host import Host

    sim = Simulator(partitions=2, executor=executor)
    wan = WanVthd(sim, "wan-churn")
    a, b = Host(sim, "a"), Host(sim, "b")
    b.partition = 1
    wan.connect(a)
    wan.connect(b)
    got = []
    wan.nic_of(b).set_receive_handler(lambda d: got.append(sim.now), owner="test")

    def tick():
        wan.transmit(a, b, b"\x00" * 256)

    nsent = int(horizon / period)
    for i in range(nsent):
        sim.call_at_partition(0, i * period, tick)
    sim.register_collector("churn.got", lambda p: list(got) if p == 1 else None)
    return sim, wan, (a, b), got, nsent


def test_mid_window_boundary_latency_drop_is_a_violation():
    """The hazard the barrier hook exists for: mutating a boundary link's
    latency below the in-flight window width, mid-window, makes later
    same-window sends land inside the horizon."""
    sim, wan, _hosts, _got, _n = _boundary_churn_scenario()

    def mutate(lat):
        wan.latency = lat

    # pre-fix routing: the owning partition's loop, exact fault time
    sim.call_at_partition(wan.owning_partition(), 0.05, mutate, 2e-3)
    with pytest.raises(LookaheadViolation):
        sim.run(until=0.25)


def test_seeded_boundary_degrade_churn_applies_at_window_edge():
    """Regression (fluid-fast-path PR): FaultInjector churn on a boundary
    link rides a barrier-synchronized hook — each degrade applies at the
    next window edge, the following window is sized from the already-
    degraded latency, and no cross-partition send ever violates the
    lookahead contract, even when latency drops far below the old window."""
    from repro.abstraction.topology import TopologyKB
    from repro.monitoring.churn import FaultInjector

    sim, wan, _hosts, got, nsent = _boundary_churn_scenario()
    inj = FaultInjector(sim, TopologyKB(), seed=31, announce=False)
    # seeded degrade times; each drop cuts latency below the prior window
    times = sorted(0.02 + inj.rng.random() * 0.15 for _ in range(3))
    lat = wan.latency
    for t in times:
        lat /= 20.0
        inj.degrade_link_at(t, wan, latency=lat)

    sim.run(until=0.25)  # must not raise
    assert wan.latency == lat
    assert sim.effective_lookahead() == lat
    assert [e.kind for e in inj.log] == ["degrade-link"] * 3
    # hooks fire at window edges, never before their scheduled time
    assert [e.at for e in inj.log] == sorted(e.at for e in inj.log)
    for sched, e in zip(times, inj.log):
        assert e.at >= sched
    # nothing was lost to the churn: every frame sent before the horizon
    # arrived (transmit is reliable; only the latency changed)
    assert len(got) == nsent
    assert got == sorted(got)


def test_seeded_boundary_degrade_churn_process_matches_round_robin():
    """Satellite acceptance: seeded degrade churn on a boundary link whose
    owner (partition 0 sends) and observer (partition 1's receive handler)
    live in *different worker processes*.  Each degrade must apply at the
    window edge in every replica, the next window must be sized from the
    already-degraded latency (per-window lookahead recomputation), and the
    merged arrival trace must equal the round-robin executor's exactly."""
    from repro.abstraction.topology import TopologyKB
    from repro.monitoring.churn import FaultInjector

    def run(executor):
        sim, wan, _hosts, _got, nsent = _boundary_churn_scenario(executor=executor)
        inj = FaultInjector(sim, TopologyKB(), seed=31, announce=False)
        times = sorted(0.02 + inj.rng.random() * 0.15 for _ in range(3))
        lat = wan.latency
        for t in times:
            lat /= 20.0
            inj.degrade_link_at(t, wan, latency=lat)
        sim.run(until=0.25)
        result = {
            "arrived": sim.collect("churn.got")[1],
            "nsent": nsent,
            "latency": wan.latency,
            "lookahead": sim.effective_lookahead(),
            "log": [(e.kind, e.at) for e in inj.log],
            "pending": sim.pending_count(),
        }
        sim.shutdown()
        return result

    round_robin = run(None)
    forked = run("process")
    assert forked == round_robin
    assert len(round_robin["arrived"]) == round_robin["nsent"]
    assert [k for k, _t in round_robin["log"]] == ["degrade-link"] * 3


def test_call_at_barrier_runs_between_windows():
    sim = Simulator(partitions=2)
    ran = []
    sim.call_at_partition(0, 0.005, lambda: ran.append(("p0", sim.now)))
    sim.call_at_barrier(0.0012, lambda: ran.append(("hook", sim.now)))
    assert sim.pending_count() == 2  # hooks count as pending work
    sim.run()
    kinds = [k for k, _t in ran]
    assert kinds == ["hook", "p0"]
    hook_at = dict(ran)["hook"]
    assert hook_at >= 0.0012  # never early: applied at the next window edge


def test_call_at_barrier_process_executor():
    """Barrier hooks across address spaces: the parent runs the
    authoritative copy at the window edge; each worker replays it at the
    next window start, before any model event past the edge."""
    sim = Simulator(partitions=2, executor="process")
    ran = []
    sim.call_at_partition(0, 0.005, lambda: ran.append(("p0", sim.now)))
    sim.call_at_barrier(0.0012, lambda: ran.append(("hook", sim.now)))
    sim.register_collector("barrier.ran", lambda p: list(ran) if p == 0 else None)
    assert sim.pending_count() == 2  # workers fork lazily: parent view
    sim.run()
    worker_view = sim.collect("barrier.ran")[0]
    sim.shutdown()
    assert [k for k, _t in worker_view] == ["hook", "p0"]
    hook_at = dict(worker_view)["hook"]
    assert hook_at >= 0.0012  # never early: applied at the window edge
    # the parent replica ran the same hook at the same edge (model events
    # execute only in the workers, so the parent saw just the hook)
    assert ran == [("hook", hook_at)]


def test_call_at_barrier_single_loop_is_plain_call_at():
    sim = Simulator()
    ran = []
    assert sim.is_boundary(object()) is False
    sim.call_at_barrier(0.5, lambda: ran.append(sim.now))
    sim.run()
    assert ran == [0.5]
