"""Tests for the process-pool partition executor (`repro.simnet.procexec`).

The determinism acceptance (process trace == round-robin trace, framework
grid equality, barrier-hook churn) lives in ``test_partition.py`` next to
the other executors; this module covers the process-specific machinery:
the wire codec, the build-spec bootstrap, cross-address-space event
watching, error propagation from workers, the drift guard, counter
aggregation across executors, and per-shard profiling.
"""

import pytest

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.host import Host
from repro.simnet.networks import WanVthd
from repro.simnet.partition import LookaheadViolation
from repro.simnet.procexec import _WireCodec


# ---------------------------------------------------------------------------
# wire codec
# ---------------------------------------------------------------------------


def _boundary_pair():
    sim = Simulator(partitions=2)
    wan = WanVthd(sim, "wan-codec")
    a, b = Host(sim, "a"), Host(sim, "b")
    b.partition = 1
    wan.connect(a)
    wan.connect(b)
    return sim, wan, a, b


def test_wire_codec_frame_roundtrip():
    """Frame deliveries are encoded structurally (names + payload bytes)
    and re-resolved against the decoding replica's boundary registry."""
    from repro.simnet.network import Frame

    sim, wan, a, b = _boundary_pair()
    codec = _WireCodec(sim)
    codec.rebuild()
    frame = Frame(
        frame_id=7,
        src=a,
        dst=b,
        network=wan,
        channel=("syn", 4000),
        payload=b"\x01\x02\x03",
        meta={"arrival": 0.25, "client_conn": 3},
    )
    wire = codec.encode(wan.nic_of(b).handle_arrival, (frame, 0.25))
    assert wire[0] == "f"
    fn, (decoded, arrival) = codec.decode(wire)
    assert fn == wan.nic_of(b).handle_arrival
    assert arrival == 0.25
    assert decoded.frame_id == 7
    assert decoded.src is a and decoded.dst is b and decoded.network is wan
    assert decoded.channel == ("syn", 4000)
    assert decoded.payload == b"\x01\x02\x03"
    assert decoded.meta == frame.meta and decoded.meta is not frame.meta


def test_wire_codec_rejects_unregistered_closures():
    sim, _wan, _a, _b = _boundary_pair()
    codec = _WireCodec(sim)
    codec.rebuild()
    with pytest.raises(SimulationError, match="register_wire_handler"):
        codec.encode(lambda: None, ())


def test_wire_codec_named_handler_roundtrip():
    sim, _wan, _a, _b = _boundary_pair()
    handler = sim.register_wire_handler("test.handler", lambda x, y: (x, y))
    codec = _WireCodec(sim)
    codec.rebuild()
    wire = codec.encode(handler, (1, "two"))
    assert wire == ("h", "test.handler", (1, "two"))
    fn, args = codec.decode(wire)
    assert fn is handler and args == (1, "two")


def test_wire_decode_unknown_handler_raises():
    sim, _wan, _a, _b = _boundary_pair()
    codec = _WireCodec(sim)
    codec.rebuild()
    with pytest.raises(SimulationError, match="no handler registered"):
        codec.decode(("h", "never-registered", ()))


# ---------------------------------------------------------------------------
# counter aggregation across executors (stats / pending_count contract)
# ---------------------------------------------------------------------------


def _counting_scenario(executor):
    """Timers, cancellations and cross-partition sends on two shards;
    returns the sim (run in two phases by the caller)."""
    sim = Simulator(partitions=2, lookahead=0.01, executor=executor)
    for part in (0, 1):
        with sim.in_partition(part):
            for i in range(20):
                sim.call_later(0.001 * (i + 1), lambda: None)
            # cancelled timers count as cancellations, never as events
            for i in range(5):
                sim.call_later(0.002 * (i + 1), lambda: None).cancel()

    noop = sim.register_wire_handler("count.noop", lambda: None)

    def send(part):
        sim.call_at_partition(part, sim.now + 0.011, noop)
    sim.call_later(0.004, send, 1)
    with sim.in_partition(1):
        sim.call_later(0.006, send, 0)
    return sim


def test_stats_and_pending_agree_across_executors():
    """Satellite acceptance: ``stats()``, ``partition_stats()`` and
    ``pending_count()`` report identical numbers under round-robin, thread
    and process — mid-run (between run() calls) and at exhaustion."""
    snapshots = {}
    for executor in (None, "thread", "process"):
        sim = _counting_scenario(executor)
        pre = sim.pending_count()
        sim.run(until=0.010)
        mid = (
            sim.pending_count(),
            sim.stats().as_dict(),
            [s.as_dict() for s in sim.partition_stats()],
        )
        sim.run()
        end = (
            sim.pending_count(),
            sim.stats().as_dict(),
            [s.as_dict() for s in sim.partition_stats()],
        )
        sim.shutdown()
        snapshots[executor] = (pre, mid, end)
    assert snapshots[None] == snapshots["thread"] == snapshots["process"]
    pre, _mid, end = snapshots[None]
    assert pre == 42  # 40 live timers + 2 senders (cancelled ones are gone)
    assert end[0] == 0
    assert end[1]["cancellations"] == 10
    assert end[1]["events_processed"] == 44  # 40 + 2 sends + 2 deliveries


# ---------------------------------------------------------------------------
# cross-address-space event watching
# ---------------------------------------------------------------------------


def test_run_until_composite_event_returns_values():
    sim = Simulator(partitions=2, executor="process")
    ev0, ev1 = sim.event(name="p0"), sim.event(name="p1")
    sim.call_later(0.002, ev0.succeed, "zero")
    with sim.in_partition(1):
        sim.call_later(0.003, ev1.succeed, {"one": 1})
    try:
        assert sim.run(until=sim.all_of([ev0, ev1])) == ["zero", {"one": 1}]
    finally:
        sim.shutdown()


def test_event_created_after_fork_is_rejected():
    sim = Simulator(partitions=2, executor="process")
    sim.call_later(0.001, lambda: None)
    sim.run()
    late = sim.event(name="late")
    try:
        with pytest.raises(SimulationError, match="after the workers forked"):
            sim.run(until=late)
    finally:
        sim.shutdown()


def test_unpicklable_event_value_is_a_clean_error():
    sim = Simulator(partitions=2, executor="process")
    ev = sim.event(name="socketful")
    with sim.in_partition(1):
        # the value is created inside worker 1 and cannot cross the pipe
        sim.call_later(0.001, lambda: ev.succeed({"fn": lambda: None}))
    try:
        with pytest.raises(SimulationError, match="not picklable"):
            sim.run(until=ev)
    finally:
        sim.shutdown()


# ---------------------------------------------------------------------------
# worker error propagation
# ---------------------------------------------------------------------------


def test_worker_exception_propagates_with_original_type():
    sim = Simulator(partitions=2, executor="process")

    def boom():
        raise ValueError("kaboom in the shard")

    with sim.in_partition(1):
        sim.call_later(0.002, boom)
    try:
        with pytest.raises(ValueError, match="kaboom in the shard"):
            sim.run()
    finally:
        sim.shutdown()


def test_lookahead_violation_crosses_the_pipe():
    sim = Simulator(partitions=2, lookahead=0.01, executor="process")
    sim.register_wire_handler("violate.noop", lambda: None)

    def too_fast():
        sim.call_at_partition(1, sim.now + 0.001, sim._wire_handlers["violate.noop"])

    sim.call_later(0.005, too_fast)
    try:
        with pytest.raises(LookaheadViolation):
            sim.run()
    finally:
        sim.shutdown()


def test_scheduling_between_runs_is_rejected():
    sim = Simulator(partitions=2, executor="process")
    sim.call_later(0.001, lambda: None)
    sim.run()
    # the workers would never see this: the parent's shards are shadows
    sim.call_later(0.001, lambda: None)
    try:
        with pytest.raises(SimulationError, match="between"):
            sim.run()
    finally:
        sim.shutdown()


def test_collect_falls_back_to_parent_after_shutdown():
    sim = Simulator(partitions=2, executor="process")
    sim.register_collector("whoami", lambda p: p)
    sim.call_later(0.001, lambda: None)
    sim.run()
    assert sim.collect("whoami") == [0, 1]  # evaluated inside the workers
    sim.shutdown()
    assert sim.collect("whoami") == [0, 1]  # parent-replica fallback


# ---------------------------------------------------------------------------
# build-spec bootstrap
# ---------------------------------------------------------------------------


def _bump(counts, p):
    counts[p] += 1


def _counter_build(nparts):
    """Deterministic deployment constructor, invoked once in the parent and
    once per worker (instead of fork-inheriting the parent graph)."""
    sim = Simulator(partitions=nparts, executor="process")
    counts = [0] * nparts
    for p in range(nparts):
        with sim.in_partition(p):
            for i in range(5):
                sim.call_later(0.001 * (i + 1), _bump, counts, p)
    sim.register_collector("counts", lambda p: counts[p])
    return sim


def test_build_spec_rebuilds_deployment_in_workers():
    sim = _counter_build(2)
    sim.set_build_spec(_counter_build, 2)
    try:
        sim.run()
        assert sim.collect("counts") == [5, 5]
    finally:
        sim.shutdown()


def test_build_spec_after_fork_is_rejected():
    sim = _counter_build(2)
    sim.run()
    try:
        with pytest.raises(SimulationError, match="before the first run"):
            sim.set_build_spec(_counter_build, 2)
    finally:
        sim.shutdown()


# ---------------------------------------------------------------------------
# per-shard profiling
# ---------------------------------------------------------------------------


def test_per_shard_profiling_returns_stats_per_partition():
    sim = Simulator(partitions=2, executor="process")
    for part in (0, 1):
        with sim.in_partition(part):
            for i in range(50):
                sim.call_later(0.0001 * (i + 1), lambda: None)
    sim.begin_profile()
    try:
        sim.run()
        profiles = sim.end_profile()
    finally:
        sim.shutdown()
    assert isinstance(profiles, list) and len(profiles) == 2
    for stats in profiles:
        # raw cProfile stats: {(file, line, func): (cc, nc, tt, ct, callers)}
        assert isinstance(stats, dict) and stats
        assert any(isinstance(k, tuple) and len(k) == 3 for k in stats)


def test_single_loop_profile_facade_is_inert():
    sim = Simulator(partitions=2)  # round-robin: no per-shard profiler
    sim.begin_profile()
    sim.call_later(0.001, lambda: None)
    sim.run()
    assert sim.end_profile() is None
