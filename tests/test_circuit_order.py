"""Per-source delivery-order regression tests for Circuit receive paths.

The size-dependent-delay reordering family (fixed for MadVLink in PR 1, the
AdOC/GSI codecs and ``StreamMeshCircuitAdapter._send_on`` in PR 2, and the
TCP segment path in PR 3) had one remaining member: ``Circuit._deliver``
schedules each message's consumer callback at the message's own
``ready_time()``, which includes size-dependent receive-side costs — so a
later small message from the same source could overtake an earlier large
one.  Deliveries are now serialized per source rank.
"""

from repro.core import PadicoFramework
from repro.simnet.networks import grid_deployment


BIG = 512 * 1024
SMALL = 64


def _patterned(n: int, salt: int) -> bytes:
    return bytes((i + salt) % 251 for i in range(n))


def test_madio_circuit_deliveries_never_reorder_across_sizes():
    """A small message sent right after a large one on a MadIO circuit must
    not arrive first: its cheaper receive-side processing used to let its
    callback fire before the large message's."""
    fw = PadicoFramework()
    fw.add_cluster(["m0", "m1"], site="san")
    fw.boot()
    group = fw.group(["m0", "m1"], "order-group")
    tx = fw.node("m0").circuit("order", group)
    rx = fw.node("m1").circuit("order", group)

    arrived = []
    rx.set_receive_callback(
        lambda src, incoming, _rx: arrived.append(incoming.payload_bytes)
    )
    assert tx.route_for(1).method == "madio"

    def scenario():
        done_big = tx.send(1, _patterned(BIG, 1))
        done_small = tx.send(1, _patterned(SMALL, 2))
        yield done_big
        yield done_small

    fw.sim.process(scenario())
    fw.sim.run(max_time=5.0)
    assert arrived == [BIG, SMALL]


def test_routed_circuit_double_gateway_transfer_is_ordered_and_intact():
    """Mixed-size messages over a double-gateway routed circuit leg arrive
    complete, in per-source order, with intact content (circuit-level mirror
    of tests/test_tcp.py::test_segment_appends_never_reorder_across_sizes)."""
    fw = PadicoFramework()
    grid = grid_deployment(fw, rows=2, cols=2, hosts_per_cluster=4)
    fw.boot()
    src = grid.clusters[0][-1]
    dst = grid.clusters[1][1]  # no common network: two gateway relays
    group = fw.group([src.name, dst.name], "routed-group")
    tx = fw.node(src.name).circuit("routed-order", group)
    rx = fw.node(dst.name).circuit("routed-order", group)
    assert tx.route_for(1).link_class.value == "routed"

    sizes = [256 * 1024, 128, 64 * 1024, 32, 96 * 1024]
    received = []
    rx.set_receive_callback(
        lambda src_rank, incoming, _rx: received.append(incoming.unpack_express())
    )

    def scenario():
        last = None
        for i, size in enumerate(sizes):
            last = tx.send(1, _patterned(size, i))
        yield last

    fw.sim.process(scenario())
    fw.sim.run(max_time=60.0)
    assert [len(p) for p in received] == sizes
    for i, payload in enumerate(received):
        assert payload == _patterned(sizes[i], i)


def test_vrp_records_release_in_order_across_retransmission():
    """A VRP record delayed by retransmission must not be overtaken by a
    later record that completed cleanly: records are acknowledged on
    completion but released to the stream strictly in record order."""
    from repro.methods.vrp import _DATA_HEADER, VrpVLinkDriver
    from repro.simnet.networks import GigabitEthernet

    fw = PadicoFramework()
    a = fw.add_host("va")
    b = fw.add_host("vb")
    net = fw.add_network(GigabitEthernet(fw.sim, "vlan"))
    net.connect(a), net.connect(b)
    fw.boot()
    fw.node("va").vlink.register_driver(VrpVLinkDriver(fw.node("va").sysio, tolerance=0.0))
    fw.node("vb").vlink.register_driver(VrpVLinkDriver(fw.node("vb").sysio, tolerance=0.0))

    # deterministic fault: drop every first-transmission datagram of record 0
    # so record 1 completes before record 0's retransmission lands.
    real_transmit = net.transmit_datagram
    dropped = {"count": 0}

    def lossy_transmit(src, dst, payload, **kwargs):
        if kwargs.get("channel", ("",))[0] == "vrp-data":
            record_id, _off, _len = _DATA_HEADER.unpack_from(payload, 0)
            if record_id == 0 and dropped["count"] < 4:
                dropped["count"] += 1
                return None
        return real_transmit(src, dst, payload, **kwargs)

    net.transmit_datagram = lossy_transmit

    listener = fw.node("vb").vlink_listen(9500)
    first, second = _patterned(4096, 5), _patterned(4096, 9)

    def scenario():
        acc = listener.accept()
        client = yield fw.node("va").vlink_connect(fw.node("vb"), 9500, method="vrp")
        server = yield acc
        client.write(first)
        client.write(second)
        data = yield server.read(len(first) + len(second))
        return data

    data = fw.sim.run(until=fw.sim.process(scenario()), max_time=30.0)
    assert dropped["count"] > 0, "the fault injection never engaged"
    assert data == first + second
