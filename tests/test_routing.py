"""Tests for the multi-hop routing subsystem (routing engine, gateway relay,
cached link profiles, multi-rail drivers, routed circuits)."""

import pytest

from tests.helpers import run

from repro.abstraction import (
    AbstractionError,
    GATEWAY_RELAY_PORT,
    LinkClass,
    Route,
    RoutingEngine,
    TopologyKB,
)
from repro.core import PadicoFramework, paper_cluster, paper_wan_pair
from repro.simnet.networks import Ethernet100, Myrinet2000, WanVthd


def gateway_topology():
    """A cluster host, a dual-homed gateway, and a WAN-only remote host."""
    fw = PadicoFramework()
    a = fw.add_host("edge", site="s1")
    g = fw.add_host("gw", site="s1")
    b = fw.add_host("remote", site="s2")
    lan = fw.add_network(Ethernet100(fw.sim, "lan"))
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    lan.connect(a)
    lan.connect(g)
    wan.connect(g)
    wan.connect(b)
    return fw, a, g, b


# --------------------------------------------------------------------------
# Routing engine: paths, weights, caches
# --------------------------------------------------------------------------


def test_direct_route_matches_seed_selector_choice():
    """Directly connected pairs must keep the seed policy table exactly."""
    fw, group = paper_cluster(2)
    a, b = group[0], group[1]
    available = ["madio", "sysio", "loopback"]
    single = fw.selector.choose_vlink(a, b, available)
    route = fw.selector.choose_vlink_route(a, b, available)
    assert route.is_direct
    assert route.first.method == single.method == "madio"
    assert route.first.network is single.network
    assert route.first.link_class is single.link_class is LinkClass.SAN
    assert route.gateways() == []


def test_direct_route_parity_on_wan_pair():
    fw, group = paper_wan_pair()
    single = fw.selector.choose_vlink(group[0], group[1], ["sysio"])
    route = fw.selector.choose_vlink_route(group[0], group[1], ["sysio"])
    assert route.is_direct and route.first.method == single.method == "sysio"
    assert route.first.network is single.network


def test_two_hop_gateway_route():
    fw, a, g, b = gateway_topology()
    hops = fw.routing.host_path(a, b)
    assert [h.src.name for h in hops] == ["edge", "gw"]
    assert [h.dst.name for h in hops] == ["gw", "remote"]
    assert [h.network.name for h in hops] == ["lan", "wan"]
    assert fw.routing.gateways_between(a, b) == [g]
    route = fw.selector.choose_vlink_route(a, b, ["sysio", "madio", "loopback"])
    assert not route.is_direct
    assert len(route) == 2
    assert [h.method for h in route.hops] == ["sysio", "sysio"]
    assert [h.name for h in route.gateways()] == ["gw"]
    assert "gw" in route.describe()


def test_direct_link_wins_over_gateway_detour():
    """A pair that IS directly connected never gets relayed."""
    fw, a, g, b = gateway_topology()
    wan2 = fw.add_network(WanVthd(fw.sim, "wan2"))
    wan2.connect(a)
    wan2.connect(b)
    hops = fw.routing.host_path(a, b)
    assert len(hops) == 1 and hops[0].network is wan2


def test_route_cache_is_generation_stamped():
    fw, a, g, b = gateway_topology()
    first = fw.routing.host_path(a, b)
    assert fw.routing.host_path(a, b) is first  # cached while topology unchanged
    # late network registration invalidates the cache ...
    myri = fw.add_network(Myrinet2000(fw.sim, "late-myri"))
    myri.connect(a)
    myri.connect(b)
    second = fw.routing.host_path(a, b)
    assert second is not first
    assert len(second) == 1 and second[0].network is myri


def test_late_attachment_invalidates_caches_too():
    """Attaching a host to an already-registered network must also be seen."""
    fw = PadicoFramework()
    a = fw.add_host("a")
    b = fw.add_host("b")
    eth = fw.add_network(Ethernet100(fw.sim, "eth"))
    eth.connect(a)
    with pytest.raises(AbstractionError):
        fw.routing.host_path(a, b)
    assert fw.topology.link_class(a, b) is LinkClass.NONE
    eth.connect(b)  # late attachment, not a registration
    assert fw.topology.link_class(a, b) is LinkClass.LAN
    assert len(fw.routing.host_path(a, b)) == 1


def test_link_profile_cache_returns_same_object():
    fw, group = paper_cluster(2)
    p1 = fw.topology.link_profile(group[0], group[1])
    p2 = fw.topology.link_profile(group[0], group[1])
    assert p1 is p2
    fw.topology.invalidate()
    assert fw.topology.link_profile(group[0], group[1]) is not p1


def test_no_route_error_is_clear():
    fw = PadicoFramework()
    a = fw.add_host("a")
    b = fw.add_host("b")
    eth = fw.add_network(Ethernet100(fw.sim))
    eth.connect(a)
    with pytest.raises(AbstractionError, match="no route between a and b"):
        fw.routing.host_path(a, b)
    with pytest.raises(AbstractionError):
        fw.selector.choose_vlink_route(a, b, ["sysio"])


def test_routing_engine_standalone_and_describe():
    kb = TopologyKB()
    engine = RoutingEngine(kb)
    fw, a, g, b = gateway_topology()
    for network in fw.topology.networks():
        kb.register_network(network)
    for host in fw.topology.hosts():
        kb.register_host(host)
    assert engine.reachable(a, b)
    assert not engine.reachable(a, fw.add_host("island"))
    report = engine.describe()
    assert report["hosts"] >= 3 and report["edges"] >= 4


# --------------------------------------------------------------------------
# Gateway relay: end-to-end payload through a host with no common network
# --------------------------------------------------------------------------


def test_vlink_connect_through_gateway_delivers_payload():
    """The acceptance scenario: no common network, shared gateway, payload
    bytes flow end to end in both directions through the relay."""
    fw, a, g, b = gateway_topology()
    assert fw.topology.link_class(a, b) is LinkClass.NONE
    fw.boot()
    na, nb = fw.node("edge"), fw.node("remote")
    listener = nb.vlink_listen(5000)

    def scenario():
        accept_op = listener.accept()
        client = yield na.vlink_connect(nb, 5000)
        server = yield accept_op
        client.write(b"x" * 4096)
        data = yield server.read(4096)
        server.write(b"pong")
        back = yield client.read(4)
        return client, data, back

    client, data, back = run(fw, scenario())
    assert data == b"x" * 4096
    assert back == b"pong"
    assert isinstance(client.route, Route) and len(client.route) == 2
    relay = fw.node("gw").gateway_relay
    assert relay.relayed == 1
    assert relay.bytes_forwarded >= 4096 + 4


def test_relay_connect_refused_when_no_listener():
    fw, a, g, b = gateway_topology()
    fw.boot()
    na, nb = fw.node("edge"), fw.node("remote")

    def scenario():
        try:
            yield na.vlink_connect(nb, 48999)
        except ConnectionRefusedError:
            return "refused"

    assert run(fw, scenario()) == "refused"


def test_relay_requires_booted_gateway():
    fw, a, g, b = gateway_topology()
    fw.boot(["edge", "remote"])  # gateway deliberately not booted
    na = fw.node("edge")

    def scenario():
        try:
            # bypass the node-level helper (which would boot the gateway)
            yield na.vlink.connect(b, 5000)
        except AbstractionError as exc:
            return str(exc)

    message = run(fw, scenario())
    assert "gw" in message and "relay" in message


def test_node_helper_boots_gateways_on_demand():
    fw, a, g, b = gateway_topology()
    fw.boot(["edge", "remote"])
    nb = fw.node("remote")
    listener = nb.vlink_listen(5100)

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(nb, 5100)
        yield accept_op
        return client.driver_name

    assert run(fw, scenario()) == "sysio"
    assert fw.node("gw").booted  # the framework picked and booted the gateway


def test_relay_ttl_exhaustion_refuses():
    fw, a, g, b = gateway_topology()
    fw.boot()
    nb = fw.node("remote")
    nb.vlink_listen(5200)

    def scenario():
        try:
            yield fw.node("edge").vlink.connect(b, 5200, relay_ttl=0)
        except ConnectionRefusedError:
            return "refused"

    assert run(fw, scenario()) == "refused"
    assert fw.node("gw").gateway_relay.refused == 1


def test_two_gateway_chain_relays_recursively():
    """edge -> gw1 -> gw2 -> far: each relay opens the next leg itself."""
    fw = PadicoFramework()
    a = fw.add_host("edge")
    g1 = fw.add_host("gw1")
    g2 = fw.add_host("gw2")
    b = fw.add_host("far")
    lan1 = fw.add_network(Ethernet100(fw.sim, "lan1"))
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    lan2 = fw.add_network(Ethernet100(fw.sim, "lan2"))
    lan1.connect(a), lan1.connect(g1)
    wan.connect(g1), wan.connect(g2)
    lan2.connect(g2), lan2.connect(b)
    fw.boot()
    assert [h.name for h in fw.routing.gateways_between(a, b)] == ["gw1", "gw2"]
    listener = fw.node("far").vlink_listen(5300)

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("far"), 5300)
        server = yield accept_op
        client.write(b"over-two-gateways")
        data = yield server.read(17)
        return data

    assert run(fw, scenario(), max_time=120) == b"over-two-gateways"
    assert fw.node("gw1").gateway_relay.relayed == 1
    assert fw.node("gw2").gateway_relay.relayed == 1


def test_relay_preserves_byte_order_across_chunk_sizes():
    """A small chunk's shorter store-and-forward delay must not let it
    overtake an earlier large chunk (regression: per-chunk call_later)."""
    fw = PadicoFramework()
    a = fw.add_host("edge")
    g = fw.add_host("gw")
    b = fw.add_host("remote")
    myri = fw.add_network(Myrinet2000(fw.sim, "san"))  # message-based first hop
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    myri.connect(a), myri.connect(g)
    wan.connect(g), wan.connect(b)
    fw.boot()
    listener = fw.node("remote").vlink_listen(5500)
    big, small = b"A" * 1_000_000, b"B" * 10

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 5500)
        server = yield accept_op
        client.write(big)
        client.write(small)
        data = yield server.read(len(big) + len(small))
        return data

    data = run(fw, scenario(), max_time=600)
    assert data == big + small  # order preserved through the relay


def test_madio_vlink_stream_order_with_mixed_sizes(cluster):
    """Seed bug exposed by the relay work: on a direct madio VLink each
    received message scheduled its append at its own cost-dependent ready
    time, letting small messages leapfrog large ones."""
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(5600)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 5600, method="madio")
        server = yield accept_op
        client.write(b"A" * 1_000_000)
        client.write(b"B" * 10)
        data = yield server.read(1_000_010)
        return data[:3], data[-3:]

    assert run(fw, scenario(), max_time=600) == (b"AAA", b"BBB")


def test_relay_rejects_bad_handshake_magic():
    fw, a, g, b = gateway_topology()
    fw.boot()
    from repro.abstraction import GATEWAY_RELAY_PORT

    def scenario():
        conn_op = fw.node("edge").vlink.connect(g, GATEWAY_RELAY_PORT, method="sysio")
        link = yield conn_op
        link.write(b"GARBAGE-NOT-A-HELLO")
        status = yield link.read(1)
        return status

    assert run(fw, scenario()) == b"\x00"
    relay = fw.node("gw").gateway_relay
    assert relay.refused == 1 and "magic" in relay.last_error


def test_circuit_boots_gateways_on_demand():
    """PadicoNode.circuit must boot relay nodes just like vlink_connect."""
    fw, a, g, b = gateway_topology()
    fw.boot(["edge", "remote"])  # gateway deliberately not booted
    grp = fw.group(["edge", "remote"], "pair")
    ca = fw.node("edge").circuit("lazy", grp)
    cb = fw.node("remote").circuit("lazy", grp)
    assert fw.node("gw").booted

    def scenario():
        ca.send(1, b"late-boot")
        src, incoming = yield cb.recv()
        return src, incoming.unpack()

    assert run(fw, scenario(), max_time=120) == (0, b"late-boot")


# --------------------------------------------------------------------------
# Multi-rail SAN drivers (the framework.boot `break` fix)
# --------------------------------------------------------------------------


def test_one_madio_driver_per_san():
    fw = PadicoFramework()
    x = fw.add_host("x")
    y = fw.add_host("y")
    z = fw.add_host("z")
    m1 = fw.add_network(Myrinet2000(fw.sim, "myri1"))
    m2 = fw.add_network(Myrinet2000(fw.sim, "myri2"))
    m1.connect(x), m1.connect(y)
    m2.connect(x), m2.connect(z)
    fw.boot()
    names = fw.node("x").vlink.driver_names()
    assert "madio" in names and "madio:myri2" in names

    listener = fw.node("z").vlink_listen(5400)

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("x").vlink_connect(fw.node("z"), 5400)
        server = yield accept_op
        client.write(b"rail2")
        data = yield server.read(5)
        return client.driver_name, data

    driver, data = run(fw, scenario())
    assert driver == "madio:myri2"  # secondary rail used, not a WAN fallback
    assert data == b"rail2"


# --------------------------------------------------------------------------
# Routed circuits
# --------------------------------------------------------------------------


def test_circuit_over_gateway_route():
    fw, a, g, b = gateway_topology()
    fw.boot()
    grp = fw.group(["edge", "remote"], "pair")
    ca = fw.node("edge").circuit("routed", grp)
    cb = fw.node("remote").circuit("routed", grp)
    choice = ca.route_for(1)
    assert choice.method == "vlink"
    assert choice.link_class is LinkClass.ROUTED
    assert choice.cross_paradigm

    def scenario():
        ca.send(1, b"HDR", b"payload" * 64)
        src, incoming = yield cb.recv()
        return src, incoming.unpack(), incoming.unpack()

    src, hdr, data = run(fw, scenario(), max_time=120)
    assert (src, hdr, data) == (0, b"HDR", b"payload" * 64)
    assert fw.node("gw").gateway_relay.relayed >= 1


# --------------------------------------------------------------------------
# Topology KB satellites: name index, generation counter
# --------------------------------------------------------------------------


def test_host_by_name_uses_index():
    fw, group = paper_cluster(4)
    kb = fw.topology
    assert kb.host_by_name("node3") is group[3]
    with pytest.raises(LookupError):
        kb.host_by_name("nope")
    # the index is maintained at registration time, not scanned per lookup
    assert kb._hosts_by_name["node0"] is group[0]


def test_generation_bumps_on_registration():
    fw = PadicoFramework()
    g0 = fw.topology.generation
    fw.add_host("h")
    assert fw.topology.generation > g0
    g1 = fw.topology.generation
    fw.add_network(Ethernet100(fw.sim))
    assert fw.topology.generation > g1
