"""Unit tests for the discrete-event simulation kernel."""

import random

import pytest

from repro.simnet.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    ReferenceSimulator,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(1.5)
    sim.run()
    assert t.triggered
    assert sim.now == pytest.approx(1.5)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_later(2.0, lambda: order.append("b"))
    sim.call_later(1.0, lambda: order.append("a"))
    sim.call_later(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for name in "abcd":
        sim.call_later(1.0, lambda n=name: order.append(n))
    sim.run()
    assert order == list("abcd")


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed(42)
    sim.run()
    assert seen == [42]
    assert ev.ok and ev.processed


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_delayed_succeed():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("later", delay=2.0)
    sim.run(until=ev)
    assert sim.now == pytest.approx(2.0)
    assert ev.value == "later"


def test_callback_after_processing_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_chain_propagates_value():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    a.chain(b)
    a.succeed("x")
    sim.run()
    assert b.value == "x"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.call_later(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_process_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(proc())
    result = sim.run(until=p)
    assert result == "done"
    assert sim.now == pytest.approx(1.0)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_process_receives_event_values():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(0.5, value="tick")
        return value

    assert sim.run(until=sim.process(proc())) == "tick"


def test_process_exception_propagates_to_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(0.1)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        sim.run(until=sim.process(proc()))


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = sim.event()

    def proc():
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    p = sim.process(proc())
    ev.fail(RuntimeError("bad"))
    assert sim.run(until=p) == "caught bad"


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def proc():
        yield 42

    with pytest.raises(SimulationError):
        sim.run(until=sim.process(proc()))


def test_processes_can_wait_on_each_other():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 99

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run(until=sim.process(parent())) == 100


def test_process_interrupt():
    sim = Simulator()

    def proc():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause)

    p = sim.process(proc())
    sim.call_later(1.0, p.interrupt, "reason")
    assert sim.run(until=p) == ("interrupted", "reason")


def test_all_of_collects_values():
    sim = Simulator()
    events = [sim.timeout(i, value=i) for i in (3, 1, 2)]
    combo = sim.all_of(events)
    assert sim.run(until=combo) == [3, 1, 2]
    assert sim.now == pytest.approx(3)


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combo = AllOf(sim, [])
    sim.run()
    assert combo.triggered and combo.value == []


def test_any_of_returns_first():
    sim = Simulator()
    events = [sim.timeout(5, value="slow"), sim.timeout(1, value="fast")]
    idx, value = sim.run(until=sim.any_of(events))
    assert (idx, value) == (1, "fast")
    assert sim.now == pytest.approx(1)


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_run_until_time():
    sim = Simulator()
    fired = []
    sim.call_later(1.0, lambda: fired.append(1))
    sim.call_later(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == pytest.approx(5.0)


def test_run_detects_deadlock():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=ev)


def test_max_time_guard():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1.0)

    sim.process(forever())
    with pytest.raises(SimulationError, match="max_time"):
        sim.run(max_time=10.0)


def test_stop_interrupts_run():
    sim = Simulator()
    sim.call_later(1.0, sim.stop)
    sim.call_later(100.0, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert sim.pending_count() == 1


# ---------------------------------------------------------------------------
# TimerHandle / cancellation
# ---------------------------------------------------------------------------


def test_call_later_returns_cancellable_handle():
    sim = Simulator()
    fired = []
    keep = sim.call_later(1.0, lambda: fired.append("keep"))
    drop = sim.call_later(1.0, lambda: fired.append("drop"))
    assert drop.cancel() is True
    assert drop.cancelled and not drop.fired
    sim.run()
    assert fired == ["keep"]
    assert keep.fired


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    handle = sim.call_later(0.5, lambda: None)
    sim.run()
    assert handle.fired
    assert handle.cancel() is False


def test_double_cancel_counts_once():
    sim = Simulator()
    handle = sim.call_later(0.5, lambda: None)
    assert handle.cancel() is True
    assert handle.cancel() is False
    assert sim.stats().cancellations == 1
    assert sim.pending_count() == 0


def test_cancel_zero_delay_entry():
    sim = Simulator()
    fired = []
    handle = sim.call_later(0.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []


def test_pending_count_reports_live_entries_only():
    sim = Simulator()
    handles = [sim.call_later(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending_count() == 5
    handles[1].cancel()
    handles[3].cancel()
    # dead entries await lazy deletion but are not reported
    assert sim.pending_count() == 3
    sim.run()
    assert sim.pending_count() == 0


def test_periodic_task_cancel_removes_scheduled_tick():
    sim = Simulator()
    task = sim.every(0.1, lambda: None)
    assert sim.pending_count() == 1
    task.cancel()
    assert sim.pending_count() == 0
    sim.run()  # terminates: no dead tick left behind
    assert task.runs == 0
    assert sim.now == 0.0


def test_stats_counters():
    sim = Simulator()
    sim.call_later(0.5, lambda: None)
    cancelled = sim.call_later(1.0, lambda: None)
    cancelled.cancel()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    stats = sim.stats()
    assert stats.events_processed == 2  # the timer and the triggered event
    assert stats.timers_scheduled == 2
    assert stats.cancellations == 1
    assert stats.peak_pending >= 2
    assert stats.as_dict()["events_processed"] == 2


# ---------------------------------------------------------------------------
# Process.interrupt: stale-resume regression
# ---------------------------------------------------------------------------


def test_interrupt_detaches_abandoned_event():
    """A later firing of the event an interrupted process was waiting on
    must not re-enter the generator at the stale yield point."""
    sim = Simulator()
    abandoned = sim.event(name="abandoned")
    log = []

    def proc():
        try:
            value = yield abandoned
            log.append(("abandoned-value", value))
        except Interrupt:
            log.append("interrupted")
        value = yield sim.timeout(5.0, value="after")
        log.append(value)
        return "done"

    p = sim.process(proc())
    sim.call_later(1.0, p.interrupt)
    # the abandoned event fires *after* the interrupt and before the second
    # yield completes: with the stale callback still attached this resumed
    # the generator early with value "stale".
    sim.call_later(2.0, abandoned.succeed, "stale")
    assert sim.run(until=p) == "done"
    assert log == ["interrupted", "after"]
    assert sim.now == pytest.approx(6.0)


def test_interrupt_still_delivers_cause():
    sim = Simulator()

    def proc():
        try:
            yield sim.timeout(10.0)
        except Interrupt as intr:
            return intr.cause

    p = sim.process(proc())
    sim.call_later(0.5, p.interrupt, "why")
    assert sim.run(until=p) == "why"


# ---------------------------------------------------------------------------
# timer wheel: boundaries, overflow, ordering
# ---------------------------------------------------------------------------


def test_wheel_bucket_boundary_times():
    """Timers exactly on bucket edges and window edges fire in time order."""
    sim = Simulator(wheel_width=1e-3, wheel_buckets=4)  # window = 4 ms
    fired = []
    for delay in (0.004, 0.001, 0.0, 0.002, 0.0039999, 0.008, 0.0040001, 0.012, 0.003):
        sim.call_later(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == pytest.approx(0.012)


def test_wheel_overflow_rebuild():
    """Timers far past the horizon drain window by window."""
    sim = Simulator(wheel_width=1e-3, wheel_buckets=8)  # window = 8 ms
    fired = []
    delays = [i * 0.0075 for i in range(40)]  # spans many windows
    rng = random.Random(7)
    rng.shuffle(delays)
    for delay in delays:
        sim.call_later(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(delays)
    assert sim.stats().wheel_rebuilds >= 2


def test_schedule_into_current_bucket_preserves_order():
    """Sub-bucket-width delays land before later same-bucket timers."""
    sim = Simulator(wheel_width=1.0, wheel_buckets=4)
    fired = []
    sim.call_later(0.9, lambda: fired.append("late"))

    def early():
        fired.append("first")
        # now=0.5; 0.2 lands inside the currently-draining bucket, before
        # the 0.9 entry that is already sorted into the batch
        sim.call_later(0.2, lambda: fired.append("second"))

    sim.call_later(0.5, early)
    sim.run()
    assert fired == ["first", "second", "late"]


def test_same_time_fifo_across_structures():
    """Entries at one timestamp fire in scheduling order regardless of the
    structure (wheel bucket vs. triggered-event FIFO) they came from."""
    sim = Simulator()
    fired = []
    sim.call_later(1.0, lambda: fired.append("timer-a"))

    def trigger():
        fired.append("timer-b")
        ev = sim.event()
        ev.add_callback(lambda e: fired.append("event"))
        ev.succeed(None)
        sim.call_later(0.0, lambda: fired.append("zero-delay"))

    sim.call_later(1.0, trigger)
    sim.call_later(1.0, lambda: fired.append("timer-c"))
    sim.run()
    assert fired == ["timer-a", "timer-b", "timer-c", "event", "zero-delay"]


def test_run_until_time_with_wheel_boundaries():
    sim = Simulator(wheel_width=1e-3, wheel_buckets=4)
    fired = []
    for delay in (0.001, 0.005, 0.02):
        sim.call_later(delay, lambda d=delay: fired.append(d))
    sim.run(until=0.005)
    assert fired == [0.001, 0.005]
    assert sim.now == pytest.approx(0.005)
    assert sim.pending_count() == 1


# ---------------------------------------------------------------------------
# determinism: trace equality with the reference heap scheduler
# ---------------------------------------------------------------------------


def _recorded_scenario(sim, seed=0xFEED):
    """A seeded storm of timers, cancellations, events and processes; returns
    the recorded (time, label) trace."""
    rng = random.Random(seed)
    trace = []
    cancellable = []

    def fire(label):
        trace.append((sim.now, label))
        # randomly schedule follow-ups, including ties on the same timestamp
        for _ in range(rng.randrange(0, 3)):
            delay = rng.choice([0.0, 0.0, rng.random() * 0.002, rng.random() * 0.5])
            handle = sim.call_later(delay, fire, f"{label}/{delay:.6f}")
            if rng.random() < 0.3:
                cancellable.append(handle)
        if cancellable and rng.random() < 0.4:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    for i in range(40):
        sim.call_later(rng.random() * 0.01, fire, f"seed{i}")

    def proc(idx):
        for _ in range(rng.randrange(1, 4)):
            value = yield sim.timeout(rng.random() * 0.05, value=idx)
            trace.append((sim.now, f"proc{idx}={value}"))
        return idx

    procs = [sim.process(proc(i)) for i in range(5)]
    done = sim.all_of(procs)
    done.add_callback(lambda ev: trace.append((sim.now, f"all={ev.value}")))
    sim.run(max_time=30.0)
    return trace


def test_trace_equality_with_reference_heap():
    """The wheel kernel executes the exact (when, seq) order of the
    monolithic-heap kernel: identical trace, order and timestamps."""
    wheel_trace = _recorded_scenario(Simulator())
    heap_trace = _recorded_scenario(ReferenceSimulator())
    assert len(wheel_trace) > 100
    assert wheel_trace == heap_trace


def test_trace_equality_with_tiny_wheel():
    """Window rebuilds and bucket-boundary handling do not disturb order."""
    wheel_trace = _recorded_scenario(Simulator(wheel_width=3e-4, wheel_buckets=4))
    heap_trace = _recorded_scenario(ReferenceSimulator())
    assert wheel_trace == heap_trace


def test_periodic_task_self_cancel_from_callback():
    """A periodic callback cancelling its own task must stop the task cold:
    no dead tick rescheduled, no further runs, run() terminates."""
    sim = Simulator()
    holder = {}

    def tick():
        holder["task"].cancel()

    holder["task"] = sim.every(0.1, tick)
    sim.run()
    assert holder["task"].runs == 1
    assert sim.now == pytest.approx(0.1)
    assert sim.pending_count() == 0
