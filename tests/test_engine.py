"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simnet.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    SimEvent,
    SimulationError,
    Simulator,
    Timeout,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(1.5)
    sim.run()
    assert t.triggered
    assert sim.now == pytest.approx(1.5)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.call_later(2.0, lambda: order.append("b"))
    sim.call_later(1.0, lambda: order.append("a"))
    sim.call_later(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for name in "abcd":
        sim.call_later(1.0, lambda n=name: order.append(n))
    sim.run()
    assert order == list("abcd")


def test_event_succeed_carries_value():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.succeed(42)
    sim.run()
    assert seen == [42]
    assert ev.ok and ev.processed


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_delayed_succeed():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("later", delay=2.0)
    sim.run(until=ev)
    assert sim.now == pytest.approx(2.0)
    assert ev.value == "later"


def test_callback_after_processing_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == [7]


def test_chain_propagates_value():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    a.chain(b)
    a.succeed("x")
    sim.run()
    assert b.value == "x"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.call_later(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_process_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(proc())
    result = sim.run(until=p)
    assert result == "done"
    assert sim.now == pytest.approx(1.0)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_process_receives_event_values():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(0.5, value="tick")
        return value

    assert sim.run(until=sim.process(proc())) == "tick"


def test_process_exception_propagates_to_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(0.1)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        sim.run(until=sim.process(proc()))


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = sim.event()

    def proc():
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    p = sim.process(proc())
    ev.fail(RuntimeError("bad"))
    assert sim.run(until=p) == "caught bad"


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def proc():
        yield 42

    with pytest.raises(SimulationError):
        sim.run(until=sim.process(proc()))


def test_processes_can_wait_on_each_other():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 99

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run(until=sim.process(parent())) == 100


def test_process_interrupt():
    sim = Simulator()

    def proc():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause)

    p = sim.process(proc())
    sim.call_later(1.0, p.interrupt, "reason")
    assert sim.run(until=p) == ("interrupted", "reason")


def test_all_of_collects_values():
    sim = Simulator()
    events = [sim.timeout(i, value=i) for i in (3, 1, 2)]
    combo = sim.all_of(events)
    assert sim.run(until=combo) == [3, 1, 2]
    assert sim.now == pytest.approx(3)


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combo = AllOf(sim, [])
    sim.run()
    assert combo.triggered and combo.value == []


def test_any_of_returns_first():
    sim = Simulator()
    events = [sim.timeout(5, value="slow"), sim.timeout(1, value="fast")]
    idx, value = sim.run(until=sim.any_of(events))
    assert (idx, value) == (1, "fast")
    assert sim.now == pytest.approx(1)


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim, [])


def test_run_until_time():
    sim = Simulator()
    fired = []
    sim.call_later(1.0, lambda: fired.append(1))
    sim.call_later(10.0, lambda: fired.append(2))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == pytest.approx(5.0)


def test_run_detects_deadlock():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=ev)


def test_max_time_guard():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1.0)

    sim.process(forever())
    with pytest.raises(SimulationError, match="max_time"):
        sim.run(max_time=10.0)


def test_stop_interrupts_run():
    sim = Simulator()
    sim.call_later(1.0, sim.stop)
    sim.call_later(100.0, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert sim.pending_count() == 1
