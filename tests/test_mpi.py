"""Tests for the MPI middleware (point-to-point, matching, collectives, datatypes)."""

import numpy as np
import pytest

from tests.helpers import run

from repro.middleware.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MAX,
    MIN,
    MPI_BYTE,
    MPI_DOUBLE,
    MPI_INT,
    MPICH_1_1_2,
    MPICH_1_2_5,
    MpiError,
    MpiRuntime,
    SUM,
    standalone_mpi_pair,
)


def mpi_world(fw, group, **kwargs):
    return [MpiRuntime(fw.node(h.name), group, **kwargs).comm_world for h in group]


# --------------------------------------------------------------------------
# datatypes and reduction ops
# --------------------------------------------------------------------------


def test_datatype_roundtrip():
    arr = np.arange(10, dtype="<i4")
    raw = MPI_INT.to_bytes(arr)
    back = MPI_INT.from_bytes(raw)
    assert np.array_equal(arr, back)
    assert MPI_INT.count_of(raw) == 10
    with pytest.raises(ValueError):
        MPI_INT.count_of(raw[:-1])
    assert MPI_BYTE.to_bytes(b"abc") == b"abc"
    with pytest.raises(TypeError):
        MPI_BYTE.to_bytes([1, 2, 3])
    derived = MPI_DOUBLE.contiguous(4)
    assert derived.itemsize == 32
    with pytest.raises(ValueError):
        MPI_DOUBLE.contiguous(0)


def test_reduce_ops_on_scalars_and_arrays():
    assert SUM(2, 3) == 5
    assert MIN(2, 3) == 2
    assert MAX(np.array([1, 5]), np.array([4, 2])).tolist() == [4, 5]
    assert SUM(np.array([1.0, 2.0]), np.array([3.0, 4.0])).tolist() == [4.0, 6.0]


# --------------------------------------------------------------------------
# point to point
# --------------------------------------------------------------------------


def test_send_recv_python_objects(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group)

    def scenario():
        payload = {"a": 7, "b": [1, 2, 3]}
        comms[0].isend(payload, 1, tag=11)
        data = yield from comms[1].recv(source=0, tag=11)
        return data

    assert run(fw, scenario()) == {"a": 7, "b": [1, 2, 3]}


def test_send_recv_numpy_buffers_uppercase(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group)

    def scenario():
        data = np.arange(100, dtype="<f8")
        comms[0].Isend(data, 1, tag=5, datatype=MPI_DOUBLE)
        buf = np.zeros(100, dtype="<f8")
        status = yield from comms[1].Recv(buf, source=0, tag=5, datatype=MPI_DOUBLE)
        return buf, status

    buf, status = run(fw, scenario())
    assert np.array_equal(buf, np.arange(100, dtype="<f8"))
    assert status.get_source() == 0 and status.get_tag() == 5
    assert status.get_count(MPI_DOUBLE) == 100


def test_tag_matching_and_out_of_order_receive(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group)

    def scenario():
        comms[0].isend(b"first", 1, tag=1)
        comms[0].isend(b"second", 1, tag=2)
        # receive the later tag first: the earlier message must wait in the
        # unexpected queue without being consumed
        second = yield from comms[1].recv(source=0, tag=2)
        first = yield from comms[1].recv(source=0, tag=1)
        return first, second

    assert run(fw, scenario()) == (b"first", b"second")


def test_any_source_any_tag_and_probe(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group)

    def scenario():
        comms[0].isend(b"wildcard", 1, tag=42)
        yield fw.sim.timeout(1e-3)
        status = comms[1].probe(ANY_SOURCE, ANY_TAG)
        data = yield from comms[1].recv(ANY_SOURCE, ANY_TAG)
        return status, data

    status, data = run(fw, scenario())
    assert data == b"wildcard"
    assert status is not None and status.get_tag() == 42
    assert status.get_count() == len(b"wildcard")


def test_isend_irecv_requests(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group)

    def scenario():
        req_r = comms[1].irecv(source=0, tag=3)
        assert not req_r.test()
        req_s = comms[0].isend(b"nonblocking", 1, tag=3)
        data = yield req_r.wait()
        yield req_s.wait()
        assert req_r.test() and req_s.test()
        return data, req_r.status.source

    data, src = run(fw, scenario())
    assert data == b"nonblocking" and src == 0


def test_sendrecv(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group)

    def rank0():
        other = yield from comms[0].sendrecv(b"from0", dest=1, source=1, sendtag=9, recvtag=9)
        return other

    def rank1():
        other = yield from comms[1].sendrecv(b"from1", dest=0, source=0, sendtag=9, recvtag=9)
        return other

    p0 = fw.sim.process(rank0())
    p1 = fw.sim.process(rank1())
    fw.sim.run(max_time=10)
    assert p0.value == b"from1" and p1.value == b"from0"


def test_invalid_destination_rank(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group)
    with pytest.raises(MpiError):
        comms[0].isend(b"x", 9)


def test_latency_and_bandwidth_against_table1(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group, profile=MPICH_1_2_5)

    def pingpong():
        # warm-up
        comms[0].isend(b"w" * 8, 1, tag=0)
        yield comms[1].irecv(0, 0).wait()
        comms[1].isend(b"w" * 8, 0, tag=0)
        yield comms[0].irecv(1, 0).wait()
        t0 = fw.sim.now
        n = 10
        for _ in range(n):
            comms[0].isend(b"p" * 8, 1, tag=1)
            data = yield comms[1].irecv(0, 1).wait()
            comms[1].isend(data, 0, tag=2)
            yield comms[0].irecv(1, 2).wait()
        latency = (fw.sim.now - t0) / n / 2
        t0 = fw.sim.now
        comms[0].isend(b"b" * 1_000_000, 1, tag=3)
        yield comms[1].irecv(0, 3).wait()
        bandwidth = 1_000_000 / (fw.sim.now - t0)
        return latency, bandwidth

    latency, bandwidth = run(fw, pingpong())
    assert 11e-6 < latency < 13.5e-6       # paper: 12.06 us
    assert 220e6 < bandwidth < 245e6       # paper: 238.7 MB/s


def test_framework_overhead_vs_standalone_is_small(cluster):
    """§5: MPICH in PadicoTM ≈ standalone MPICH over Myrinet."""
    fw, group = cluster
    inside = mpi_world(fw, group, channel_name="inside")
    san = [n for n in group[0].networks() if n.is_parallel][0]
    standalone = [r.comm_world for r in standalone_mpi_pair(san, group)]

    def pingpong(comms, tag):
        def _gen():
            t0 = fw.sim.now
            n = 10
            for _ in range(n):
                comms[0].isend(b"p" * 8, 1, tag=tag)
                data = yield comms[1].irecv(0, tag).wait()
                comms[1].isend(data, 0, tag=tag + 1)
                yield comms[0].irecv(1, tag + 1).wait()
            return (fw.sim.now - t0) / n / 2
        return _gen()

    lat_inside = run(fw, pingpong(inside, 10))
    lat_standalone = run(fw, pingpong(standalone, 20))
    assert lat_inside >= lat_standalone
    assert lat_inside - lat_standalone < 0.8e-6  # "negligible" overhead


def test_mpich_112_slower_than_125(cluster):
    fw, group = cluster
    old = mpi_world(fw, group, profile=MPICH_1_1_2, channel_name="old")
    new = mpi_world(fw, group, profile=MPICH_1_2_5, channel_name="new")

    def one_way(comms, tag):
        def _gen():
            t0 = fw.sim.now
            comms[0].isend(b"x" * 8, 1, tag=tag)
            yield comms[1].irecv(0, tag).wait()
            return fw.sim.now - t0
        return _gen()

    assert run(fw, one_way(old, 1)) > run(fw, one_way(new, 2))


# --------------------------------------------------------------------------
# collectives
# --------------------------------------------------------------------------


def run_collective(fw, comms, make_gen):
    """Run one collective on every rank; returns the per-rank results."""
    procs = [fw.sim.process(make_gen(comm, rank)) for rank, comm in enumerate(comms)]
    fw.sim.run(until=fw.sim.all_of(procs), max_time=60)
    return [p.value for p in procs]


@pytest.mark.parametrize("nranks", [2, 4])
def test_bcast(cluster4, nranks):
    fw, group4 = cluster4
    group = fw.group([h.name for h in list(group4)[:nranks]], f"bcast{nranks}")
    comms = mpi_world(fw, group, channel_name=f"bcast{nranks}")

    def gen(comm, rank):
        obj = {"payload": 123} if rank == 0 else None
        result = yield from comm.bcast(obj, root=0)
        return result

    results = run_collective(fw, comms, gen)
    assert all(r == {"payload": 123} for r in results)


def test_reduce_and_allreduce(cluster4):
    fw, group = cluster4
    comms = mpi_world(fw, group, channel_name="reduce")

    def gen(comm, rank):
        total = yield from comm.reduce(rank + 1, op=SUM, root=0)
        every = yield from comm.allreduce(rank + 1, op=SUM)
        return total, every

    results = run_collective(fw, comms, gen)
    assert results[0][0] == 10  # 1+2+3+4 at the root
    assert all(r[1] == 10 for r in results)
    assert all(results[i][0] is None for i in range(1, 4))


def test_gather_scatter_allgather_alltoall(cluster4):
    fw, group = cluster4
    comms = mpi_world(fw, group, channel_name="gsa")

    def gen(comm, rank):
        gathered = yield from comm.gather(rank * 10, root=0)
        items = [f"item{i}" for i in range(comm.size)] if rank == 0 else None
        scattered = yield from comm.scatter(items, root=0)
        allgathered = yield from comm.allgather(rank)
        alltoall = yield from comm.alltoall([f"{rank}->{dst}" for dst in range(comm.size)])
        return gathered, scattered, allgathered, alltoall

    results = run_collective(fw, comms, gen)
    assert results[0][0] == [0, 10, 20, 30]
    assert all(results[i][0] is None for i in range(1, 4))
    assert [r[1] for r in results] == ["item0", "item1", "item2", "item3"]
    assert all(r[2] == [0, 1, 2, 3] for r in results)
    assert results[2][3] == ["0->2", "1->2", "2->2", "3->2"]


def test_barrier_and_scan(cluster4):
    fw, group = cluster4
    comms = mpi_world(fw, group, channel_name="bs")

    def gen(comm, rank):
        yield from comm.barrier()
        prefix = yield from comm.scan(rank + 1, op=SUM)
        return prefix

    results = run_collective(fw, comms, gen)
    assert results == [1, 3, 6, 10]


def test_reduce_with_numpy_arrays(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group, channel_name="nred")

    def gen(comm, rank):
        arr = np.full(8, float(rank + 1))
        result = yield from comm.allreduce(arr, op=SUM)
        return result

    results = run_collective(fw, comms, gen)
    for r in results:
        assert np.allclose(r, np.full(8, 3.0))


def test_scatter_requires_right_length(cluster):
    fw, group = cluster
    comms = mpi_world(fw, group, channel_name="scerr")

    def gen(comm, rank):
        if rank == 0:
            try:
                yield from comm.scatter([1], root=0)
            except ValueError:
                return "bad-length"
        else:
            yield fw.sim.timeout(0)
            return None

    results = run_collective(fw, comms, gen)
    assert results[0] == "bad-length"


def test_communicator_contexts_are_isolated(cluster):
    fw, group = cluster
    r0 = MpiRuntime(fw.node(group[0].name), group, channel_name="ctx")
    r1 = MpiRuntime(fw.node(group[1].name), group, channel_name="ctx")
    dup0, dup1 = r0.create_communicator(), r1.create_communicator()

    def scenario():
        # same tag on two different communicators: no cross-talk
        r0.comm_world.isend(b"world", 1, tag=7)
        dup0.isend(b"dup", 1, tag=7)
        world_msg = yield from r1.comm_world.recv(0, 7)
        dup_msg = yield from dup1.recv(0, 7)
        return world_msg, dup_msg

    assert run(fw, scenario()) == (b"world", b"dup")


# --------------------------------------------------------------------------
# circuit-backed channels: collectives over routed / adaptive legs
# --------------------------------------------------------------------------


def routed_mpi_deployment():
    """Two Ethernet clusters joined only through a dual-homed gateway: the
    MPI group's hosts share no network, so every cross-cluster circuit leg
    must relay (LinkClass.ROUTED)."""
    from repro.core import PadicoFramework
    from repro.simnet.networks import Ethernet100, WanVthd

    fw = PadicoFramework()
    for name, site in [("a0", "sa"), ("a1", "sa"), ("gw", "sa"), ("b0", "sb")]:
        fw.add_host(name, site=site)
    lan_a = fw.add_network(Ethernet100(fw.sim, "lan-a"))
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    for h in ("a0", "a1", "gw"):
        lan_a.connect(fw.host(h))
    wan.connect(fw.host("gw")), wan.connect(fw.host("b0"))
    fw.boot()
    return fw


def test_mpi_unknown_channels_mode_rejected(cluster):
    fw, group = cluster
    with pytest.raises(MpiError, match="channels mode"):
        MpiRuntime(fw.node(group[0].name), group, channels="bogus")


def test_mpi_explicit_channel_conflicts_with_channels_mode(cluster):
    """An explicit channel is used as-is, so combining it with a channels
    mode (or adaptive=) must fail loudly instead of silently ignoring the
    requested transport."""
    fw, group = cluster
    node = fw.node(group[0].name)
    base = MpiRuntime(node, group, channel_name="conflict-base")
    with pytest.raises(MpiError, match="conflicts"):
        MpiRuntime(node, group, channel=base.channel, channels="circuit")
    with pytest.raises(MpiError, match="conflicts"):
        MpiRuntime(node, group, channel=base.channel, adaptive=True)
    with pytest.raises(MpiError, match="channels mode"):
        MpiRuntime(node, group, channel=base.channel, channels="bogus")
    with pytest.raises(MpiError, match='requires channels="circuit"'):
        MpiRuntime(node, group, adaptive=True, channel_name="conflict-vmad")


def test_mpi_channel_name_reuse_across_modes_rejected(cluster):
    """The circuit behind a channel name is cached per node: reopening the
    same name in a different adaptive mode must fail loudly instead of
    silently handing back the other transport."""
    from repro.madeleine.message import MadeleineError

    fw, group = cluster
    node = fw.node(group[0].name)
    MpiRuntime(node, group, channel_name="reuse")  # static vmad circuit
    with pytest.raises(MadeleineError, match="already open with adaptive=False"):
        MpiRuntime(node, group, channels="circuit", channel_name="reuse")


def test_mpi_broadcast_over_routed_adaptive_circuit():
    """channels="circuit": an MPI broadcast rides a route-aware adaptive
    Circuit whose cross-cluster legs relay through the gateway."""
    from repro.abstraction import LinkClass

    fw = routed_mpi_deployment()
    group = fw.group(["a0", "a1", "b0"], "mpi-routed")
    runtimes = [
        MpiRuntime(fw.node(h.name), group, channels="circuit", channel_name="routed")
        for h in group
    ]
    comms = [r.comm_world for r in runtimes]

    # the channel really is a circuit with adaptive sessions and a routed
    # cross-cluster leg (a0 -> b0 shares no network with the root)
    circuit = runtimes[0].channel.circuit
    assert circuit.adaptive is not None
    assert circuit.route_for(2).link_class is LinkClass.ROUTED

    def gen(comm, rank):
        obj = {"blob": b"x" * 4096, "n": 42} if rank == 0 else None
        result = yield from comm.bcast(obj, root=0)
        return result

    results = run_collective(fw, comms, gen)
    assert all(r == {"blob": b"x" * 4096, "n": 42} for r in results)


def test_mpi_collectives_over_routed_circuit_static_legs():
    """channels="circuit" with adaptive=False: route-aware static legs
    still relay collectives through the gateway."""
    fw = routed_mpi_deployment()
    group = fw.group(["a0", "b0"], "mpi-routed-static")
    runtimes = [
        MpiRuntime(
            fw.node(h.name), group, channels="circuit", adaptive=False,
            channel_name="routed-static",
        )
        for h in group
    ]
    assert runtimes[0].channel.circuit.adaptive is None
    comms = [r.comm_world for r in runtimes]

    def gen(comm, rank):
        total = yield from comm.allreduce(rank + 1, op=SUM)
        data = yield from comm.bcast(b"payload" if rank == 0 else None, root=0)
        return total, data

    results = run_collective(fw, comms, gen)
    assert all(r == (3, b"payload") for r in results)
