"""Flight-recorder tests: zero-overhead gating, replay determinism, and
KPI invariance across fidelities, partitionings and executors.

The scenario under test is a 2x2 grid deployment with an in-cluster bulk
transfer (fluidizable under ``fidelity="hybrid"``), a cross-cluster
relayed stream, WAN monitoring with coalesced estimators, and seeded
churn — every instrumented subsystem emits at least once.
"""

from __future__ import annotations

import json

import pytest

from repro.core import PadicoFramework
from repro.monitoring.estimators import LinkEstimator, LinkSample
from repro.simnet.networks import grid_deployment
from repro.telemetry import (
    MetricSeries,
    canonical_kpi_json,
    compute_kpis,
    invariant_view,
    read_trace,
    replay_kpis,
    verify_replay,
)
from repro.telemetry.hub import event_line
from repro.telemetry.series import percentile

HORIZON = 4.0


def build_and_run(
    fidelity="packet",
    partitions=None,
    executor=None,
    telemetry=True,
    jsonl_path=None,
    disable_before_run=False,
):
    """The shared scenario; returns (framework, hub-or-None)."""
    fw = PadicoFramework(fidelity=fidelity, partitions=partitions, executor=executor)
    grid = grid_deployment(fw, rows=2, cols=2, hosts_per_cluster=3)
    hub = None
    if telemetry:
        hub = fw.enable_telemetry(jsonl_path=jsonl_path)
    fw.boot()
    for wan in grid.wans:
        fw.monitoring.watch(wan, coalesce=4)

    def serve(session):
        session.set_data_handler(lambda link: link.read_available())

    # in-cluster bulk send: collapses into the fluid tier under "hybrid"
    a, b = fw.node("g0x0n01"), fw.node("g0x0n02")
    b.vlink_listen(7000).set_accept_callback(serve)
    a.vlink_connect(b, 7000).add_callback(lambda ev: ev.value.write(b"x" * 2_000_000))
    # cross-cluster stream, relayed over the WAN gateways
    c, d = fw.node("g0x0n00"), fw.node("g1x1n00")
    d.vlink_listen(7100).set_accept_callback(serve)
    c.vlink_connect(d, 7100).add_callback(lambda ev: ev.value.write(b"y" * 300_000))

    injector = fw.fault_injector(seed=77)
    injector.degrade_link_at(1.0, grid.wans[0], loss_rate=0.02)

    if disable_before_run:
        fw.disable_telemetry()
    fw.run(until=HORIZON)
    if fw.telemetry is not None:
        fw.telemetry.flush()
    return fw, hub


def kpi_fingerprint(hub):
    return json.dumps(
        invariant_view(compute_kpis(hub.events, horizon=HORIZON)), sort_keys=True
    )


# ---------------------------------------------------------------------------
# disabled == pre-telemetry behaviour
# ---------------------------------------------------------------------------


def test_disabled_run_matches_plain_run():
    """With telemetry never enabled — or enabled then disabled before the
    run — the simulation trajectory is identical to a plain run."""
    plain, _ = build_and_run(telemetry=False)
    disabled, hub = build_and_run(disable_before_run=True)
    assert hub.closed
    # only deployment-setup events (connect SYNs at t=0) were captured;
    # nothing emitted during the run after the disable
    assert all(ev["t"] < 1e-3 for ev in hub.events)
    for fw in (plain, disabled):
        assert fw.telemetry is None
        assert fw.sim.telemetry is None
    s0, s1 = plain.sim.stats(), disabled.sim.stats()
    assert s0.events_processed == s1.events_processed
    assert s0.timers_scheduled == s1.timers_scheduled
    assert plain.sim.now == disabled.sim.now


def test_enabled_run_does_not_perturb_virtual_time():
    """Recording is passive: the enabled run executes the same virtual
    trajectory (event counts, end time) as the plain run."""
    plain, _ = build_and_run(telemetry=False)
    recorded, hub = build_and_run()
    assert len(hub.events) > 0
    s0, s1 = plain.sim.stats(), recorded.sim.stats()
    assert s0.events_processed == s1.events_processed
    assert s0.timers_scheduled == s1.timers_scheduled
    assert plain.sim.now == recorded.sim.now


def test_disable_telemetry_detaches_everything():
    fw, hub = build_and_run()
    n_observed = len(hub.events)
    fw.disable_telemetry()
    assert hub.closed
    assert fw.sim.telemetry is None
    assert fw.monitoring.telemetry is None
    for node in fw.nodes():
        assert node.tcp.telemetry is None
        assert node.vlink.telemetry is None
    # a further run adds no events to the closed hub
    fw.run(until=HORIZON + 0.5)
    assert len(hub.events) == n_observed


# ---------------------------------------------------------------------------
# the event stream covers every instrumented subsystem
# ---------------------------------------------------------------------------


def test_event_stream_covers_subsystems():
    _fw, hub = build_and_run(fidelity="hybrid")
    kinds = {ev["k"] for ev in hub.events}
    for expected in (
        "link.tx",
        "flow.open",
        "flow.send",
        "flow.round",
        "flow.complete",
        "churn.fault",
        "monitor.push",
        "fluid.activate",
        "engine.window",
    ):
        assert expected in kinds, f"missing {expected}; saw {sorted(kinds)}"
    # every event carries the envelope: time, partition, sequence, kind
    for ev in hub.events:
        assert set(("t", "p", "s", "k")) <= set(ev)


# ---------------------------------------------------------------------------
# replay determinism
# ---------------------------------------------------------------------------


def test_jsonl_replay_is_byte_identical(tmp_path):
    trace = str(tmp_path / "trace.jsonl")
    _fw, hub = build_and_run(jsonl_path=trace)
    # the trace holds exactly the live events, in emission order
    assert read_trace(trace) == hub.events
    # and the KPI documents computed live vs from the file are byte-equal
    verify_replay(hub.events, trace, horizon=HORIZON)


def test_rerecorded_trace_is_byte_identical(tmp_path):
    """Two recordings of the same seeded scenario produce identical traces
    (determinism of the simulation and of the recorder)."""
    t1, t2 = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    build_and_run(jsonl_path=t1)
    build_and_run(jsonl_path=t2)
    assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()


def test_replay_kpis_reads_trace(tmp_path):
    trace = str(tmp_path / "trace.jsonl")
    _fw, hub = build_and_run(jsonl_path=trace)
    kpis = replay_kpis(trace, horizon=HORIZON)
    assert canonical_kpi_json(kpis) == canonical_kpi_json(
        compute_kpis(hub.events, horizon=HORIZON)
    )


def test_event_line_round_trips_floats():
    ev = {"t": 0.1 + 0.2, "p": 0, "s": 1, "k": "x", "v": 1.3333333333333333e-9}
    assert json.loads(event_line(ev)) == ev


# ---------------------------------------------------------------------------
# KPI invariance: fidelity, partitions, executor
# ---------------------------------------------------------------------------


def test_kpis_invariant_across_fidelity():
    """Per-flow completion instants/bytes and per-link frame/byte/busy
    totals are identical between the packet and hybrid runs — the fluid
    fast path is invisible in the invariant KPI view."""
    _fw, packet = build_and_run(fidelity="packet")
    fw_h, hybrid = build_and_run(fidelity="hybrid")
    # the hybrid leg genuinely used the fast path
    assert any(ev["k"] == "fluid.activate" for ev in hybrid.events)
    assert kpi_fingerprint(packet) == kpi_fingerprint(hybrid)


@pytest.mark.parametrize("fidelity", ["packet", "hybrid"])
def test_kpis_invariant_across_partitions(fidelity):
    _fw, single = build_and_run(fidelity=fidelity)
    fw_m, multi = build_and_run(fidelity=fidelity, partitions=4)
    assert fw_m.sim.partition_count == 4
    assert {ev["p"] for ev in multi.events} != {0}  # shards really emitted
    assert kpi_fingerprint(single) == kpi_fingerprint(multi)


def test_event_stream_identical_across_executors():
    """The thread executor must reproduce the round-robin event stream
    exactly — same events, same (t, p, s) stamps, same merged order."""
    _fw, rr = build_and_run(partitions=4)
    _fw2, th = build_and_run(partitions=4, executor="thread")
    assert rr.events == th.events


def test_partitioned_stats_merge_matches_single_loop_shape():
    """Satellite: `PartitionedSimulator.stats()` sums exact per-shard
    counters into the same SimStats shape the single loop reports, and the
    merge is executor-independent."""
    single, _ = build_and_run(telemetry=False)
    rr, _ = build_and_run(telemetry=False, partitions=4)
    th, _ = build_and_run(telemetry=False, partitions=4, executor="thread")
    s_rr, s_th = rr.sim.stats(), th.sim.stats()
    assert s_rr.as_dict() == s_th.as_dict()  # merge independent of the executor
    shards = rr.sim.partition_stats()
    assert len(shards) == 4
    for field in ("events_processed", "timers_scheduled", "cancellations"):
        assert getattr(s_rr, field) == sum(getattr(s, field) for s in shards)
    # peak_pending merges as a sum of per-shard peaks: an upper bound
    assert s_rr.peak_pending == sum(s.peak_pending for s in shards)
    assert s_rr.events_processed > 0
    assert single.sim.stats().events_processed > 0


# ---------------------------------------------------------------------------
# KPI content
# ---------------------------------------------------------------------------


def test_kpi_report_contents():
    _fw, hub = build_and_run(fidelity="hybrid")
    kpis = compute_kpis(hub.events, horizon=HORIZON)
    assert kpis["horizon"] == HORIZON
    # the bulk flow delivered its 2 MB; completions are sorted instants
    bulk = next(
        rec for rec in kpis["flows"].values() if rec["bytes"] >= 2_000_000
    )
    assert bulk["completions"] == sorted(bulk["completions"])
    assert bulk["latency"] > 0.0
    assert bulk["goodput"] > 0.0
    # links saw traffic and report busy-time utilization within [0, 1]
    assert kpis["links"]
    for rec in kpis["links"].values():
        assert 0.0 <= rec["utilization"] <= 1.0
        assert rec["busy"] <= HORIZON
        assert rec["curve"]  # utilization curve buckets exist
    # churn was recorded (degrade-link is not a down/up transition, so no
    # availability loss — but the fault timeline is there)
    assert kpis["availability"]["wan-g0x0e"]["faults"] == 1
    assert kpis["monitor"]["pushes"] > 0
    assert kpis["fluid"]["activations"] > 0
    assert kpis["engine"]["0"]["events"] > 0


def test_availability_from_fail_recover(tmp_path):
    fw = PadicoFramework()
    grid = grid_deployment(fw, rows=1, cols=2, hosts_per_cluster=2)
    hub = fw.enable_telemetry()
    fw.boot()
    injector = fw.fault_injector(seed=5)
    wan = grid.wans[0]
    injector.fail_link_at(0.5, wan)
    injector.recover_link_at(0.9, wan)
    injector.fail_link_at(1.5, wan)  # still down at the horizon
    fw.run(until=2.0)
    hub.flush()
    kpis = compute_kpis(hub.events, horizon=2.0)
    rec = kpis["availability"][wan.name]
    assert rec["faults"] == 3
    assert rec["down_s"] == pytest.approx(0.4 + 0.5)
    assert rec["availability"] == pytest.approx(1.0 - 0.9 / 2.0)


# ---------------------------------------------------------------------------
# MetricSeries / percentile units
# ---------------------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.5) == 2.0
    assert percentile(values, 0.99) == 4.0
    assert percentile(values, 1.0) == 4.0


def test_metric_series_windows_and_dumps(tmp_path):
    series = MetricSeries("qd", window=1.0)
    for t, v in [(0.1, 2.0), (0.9, 4.0), (1.5, 10.0)]:
        series.add(t, v)
    buckets = series.summarize()
    assert [b["t0"] for b in buckets] == [0.0, 1.0]
    assert buckets[0] == {
        "t0": 0.0, "count": 2, "sum": 6.0, "mean": 3.0, "p50": 2.0, "p99": 4.0,
    }
    # canonical JSON and CSV round-trip the same numbers
    assert json.loads(series.to_json())["buckets"][1]["sum"] == 10.0
    csv_path = tmp_path / "series.csv"
    series.to_csv(str(csv_path))
    lines = csv_path.read_text().strip().splitlines()
    assert lines[0] == "t0,count,sum,mean,p50,p99"
    assert len(lines) == 3


def test_metric_series_single_bucket():
    series = MetricSeries("all")
    series.add(0.0, 1.0)
    series.add(100.0, 3.0)
    (bucket,) = series.summarize()
    assert bucket["count"] == 2 and bucket["mean"] == 2.0


# ---------------------------------------------------------------------------
# estimator coalescing (satellite: batched estimator updates)
# ---------------------------------------------------------------------------


def _ping(at, latency=0.010, bandwidth=1e6):
    return LinkSample(at=at, kind="ping", latency=latency, bandwidth=bandwidth, nbytes=64)


def test_coalesced_estimator_matches_sequential_counts():
    plain = LinkEstimator(alpha=0.25, window=8, min_samples=1)
    batched = LinkEstimator(alpha=0.25, window=8, min_samples=1, batch=4)
    for i in range(10):
        plain.update(_ping(0.05 * i))
        batched.update(_ping(0.05 * i))
    e0, e1 = plain.estimate(), batched.estimate()
    assert e1.samples == e0.samples
    assert e1.loss_rate == e0.loss_rate  # window contents are bit-identical
    assert e1.latency == pytest.approx(e0.latency, rel=1e-12)
    assert e1.bandwidth == pytest.approx(e0.bandwidth, rel=1e-12)
    assert e1.updated_at == e0.updated_at


def test_coalesced_estimator_flushes_on_read():
    est = LinkEstimator(min_samples=1, batch=8)
    assert est.update(_ping(0.0)) is True  # run head applies immediately
    assert est.update(_ping(0.1)) is False  # buffered
    assert est.update(_ping(0.2)) is False
    # reading flushes: all three samples are visible
    assert est.samples == 3
    assert est.estimate().updated_at == 0.2


def test_coalesced_estimator_applies_changed_sample_immediately():
    est = LinkEstimator(min_samples=1, batch=8)
    est.update(_ping(0.0))
    assert est.update(_ping(0.1)) is False
    # a differing sample is a run boundary: flush + immediate apply
    assert est.update(_ping(0.2, latency=0.050)) is True
    assert est.samples == 3


def test_coalesced_estimator_never_defers_loss():
    est = LinkEstimator(min_samples=1, batch=8)
    est.update(_ping(0.0))
    est.update(_ping(0.1))
    lost = LinkSample(at=0.2, kind="ping", lost=True)
    assert est.update(lost) is True  # loss applies (and flushes) immediately
    assert est.consecutive_lost == 1
    assert est.samples == 3


def test_watch_coalesce_skips_evaluations_but_converges(wan_pair):
    fw, _group = wan_pair
    wan = next(n for n in fw.networks() if n.latency >= 0.001)
    watch = fw.monitoring.watch(wan, interval=0.01, coalesce=8)
    fw.run(until=1.0)
    est = watch.estimator.estimate()
    assert est is not None
    assert est.samples == watch.estimator.samples
    assert est.latency == pytest.approx(
        wan.latency + wan.serialization_time(64), rel=0.05
    )
