"""Tests for the alternate communication methods (parallel streams, AdOC, VRP, GSI)."""

import pytest

from tests.helpers import run

from repro.methods import (
    AdocCodec,
    ParallelStreamsVLinkDriver,
    SecureVLinkDriver,
    SiteCredential,
    VrpVLinkDriver,
    register_method_drivers,
)


def wan_with_methods(streams=4, vrp_tolerance=0.10):
    from repro.core import paper_wan_pair

    fw, group = paper_wan_pair()
    for host in group:
        register_method_drivers(fw.node(host.name), streams=streams, vrp_tolerance=vrp_tolerance)
    return fw, group


def lossy_with_methods(vrp_tolerance=0.10, loss_rate=0.07):
    from repro.core import paper_lossy_pair

    fw, group = paper_lossy_pair(loss_rate=loss_rate)
    for host in group:
        register_method_drivers(fw.node(host.name), vrp_tolerance=vrp_tolerance)
    return fw, group


def connect_via(fw, group, method, port):
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(port)

    def _connect():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, port, method=method)
        server = yield accept_op
        return client, server

    return run(fw, _connect(), max_time=300)


def bulk_bandwidth(fw, client, server, total, chunk=256 * 1024, max_time=600.0):
    def _bench():
        t0 = fw.sim.now
        sent = 0
        while sent < total:
            n = min(chunk, total - sent)
            client.write(b"x" * n)
            sent += n
        data = yield server.read(total)
        assert len(data) == total
        return total / (fw.sim.now - t0)

    return run(fw, _bench(), max_time=max_time)


def test_register_method_drivers(cluster):
    fw, group = cluster
    register_method_drivers(fw.node(group[0].name))
    names = fw.node(group[0].name).vlink.driver_names()
    assert {"parallel_streams", "adoc", "vrp", "gsi"}.issubset(set(names))


# --------------------------------------------------------------------------
# Parallel streams
# --------------------------------------------------------------------------


def test_parallel_streams_preserve_stream_content():
    fw, group = wan_with_methods(streams=3)
    client, server = connect_via(fw, group, "parallel_streams", 8100)
    payload = bytes(range(256)) * 64

    def scenario():
        client.write(payload)
        client.write(b"tail")
        data = yield server.read(len(payload) + 4)
        return data

    assert run(fw, scenario(), max_time=300) == payload + b"tail"


def test_parallel_streams_beat_single_stream_on_wan():
    """§5: VTHD goes from ~9 MB/s (one stream) to ~12 MB/s with parallel streams."""
    fw, group = wan_with_methods(streams=4)
    single_client, single_server = connect_via(fw, group, "sysio", 8200)
    bw_single = bulk_bandwidth(fw, single_client, single_server, 8_000_000)

    fw2, group2 = wan_with_methods(streams=4)
    multi_client, multi_server = connect_via(fw2, group2, "parallel_streams", 8201)
    bw_multi = bulk_bandwidth(fw2, multi_client, multi_server, 8_000_000)

    assert bw_multi > bw_single * 1.1
    assert bw_multi / 1e6 < 12.6  # still capped by the Ethernet-100 access link


def test_parallel_streams_driver_validation(cluster):
    fw, group = cluster
    with pytest.raises(ValueError):
        ParallelStreamsVLinkDriver(fw.node(group[0].name).sysio, streams=0)


# --------------------------------------------------------------------------
# AdOC adaptive compression
# --------------------------------------------------------------------------


def test_adoc_codec_adaptivity():
    codec = AdocCodec()
    compressible = b"the same text repeated " * 200
    import os

    incompressible = os.urandom(4096)
    assert codec.should_compress(compressible)
    assert not codec.should_compress(incompressible)
    flags, wire, cpu = codec.encode(compressible)
    assert flags == 1 and len(wire) < len(compressible) and cpu > 0
    block, _ = codec.decode(flags, wire, len(compressible))
    assert block == compressible
    flags2, wire2, _ = codec.encode(incompressible)
    assert flags2 == 0 and wire2 == incompressible


def test_adoc_transfers_data_and_tracks_ratio():
    fw, group = wan_with_methods()
    client, server = connect_via(fw, group, "adoc", 8300)
    payload = b"ABCD" * 50_000  # highly compressible

    def scenario():
        client.write(payload)
        data = yield server.read(len(payload))
        return data

    assert run(fw, scenario(), max_time=300) == payload
    assert client.conn.compression_ratio < 0.2
    assert client.conn.blocks_compressed == client.conn.blocks_sent == 1


def test_adoc_speeds_up_compressible_transfers_on_slow_links():
    total = 2_000_000
    fw, group = lossy_with_methods(loss_rate=0.0)
    plain_client, plain_server = connect_via(fw, group, "sysio", 8400)
    bw_plain = bulk_bandwidth(fw, plain_client, plain_server, total, max_time=1200)

    fw2, group2 = lossy_with_methods(loss_rate=0.0)
    adoc_client, adoc_server = connect_via(fw2, group2, "adoc", 8401)

    def _bench():
        t0 = fw2.sim.now
        adoc_client.write(b"Z" * total)  # maximally compressible
        data = yield adoc_server.read(total)
        assert data == b"Z" * total
        return total / (fw2.sim.now - t0)

    bw_adoc = run(fw2, _bench(), max_time=1200)
    assert bw_adoc > bw_plain * 2


# --------------------------------------------------------------------------
# VRP
# --------------------------------------------------------------------------


def test_vrp_driver_validation(cluster):
    fw, group = cluster
    with pytest.raises(ValueError):
        VrpVLinkDriver(fw.node(group[0].name).sysio, tolerance=1.5)


def test_vrp_delivers_full_length_with_bounded_losses():
    fw, group = lossy_with_methods(vrp_tolerance=0.10)
    client, server = connect_via(fw, group, "vrp", 8500)
    total = 400_000

    def scenario():
        client.write(b"v" * total)
        data = yield server.read(total)
        return data

    data = run(fw, scenario(), max_time=1200)
    assert len(data) == total
    stats = server.conn.stats
    intact = data.count(b"v")
    assert intact >= total * 0.90           # at most the tolerated 10 % missing
    assert stats.bytes_zero_filled <= total * 0.10 + 1500


def test_vrp_much_faster_than_tcp_on_lossy_link():
    """§5: TCP ≈ 150 KB/s, VRP(10 %) ≈ 500 KB/s — about 3x."""
    total = 1_000_000
    fw, group = lossy_with_methods()
    tcp_client, tcp_server = connect_via(fw, group, "sysio", 8600)
    bw_tcp = bulk_bandwidth(fw, tcp_client, tcp_server, total, max_time=3600)

    fw2, group2 = lossy_with_methods()
    vrp_client, vrp_server = connect_via(fw2, group2, "vrp", 8601)

    def _bench():
        t0 = fw2.sim.now
        vrp_client.write(b"x" * total)
        data = yield vrp_server.read(total)
        assert len(data) == total
        return total / (fw2.sim.now - t0)

    bw_vrp = run(fw2, _bench(), max_time=3600)
    assert bw_vrp > 2.0 * bw_tcp
    assert 300e3 < bw_vrp < 700e3  # around the paper's 500 KB/s
    assert 80e3 < bw_tcp < 260e3   # around the paper's 150 KB/s


def test_vrp_zero_tolerance_retransmits_to_full_reliability():
    fw, group = lossy_with_methods(vrp_tolerance=0.0)
    client, server = connect_via(fw, group, "vrp", 8700)
    total = 100_000

    def scenario():
        client.write(b"R" * total)
        data = yield server.read(total)
        return data

    data = run(fw, scenario(), max_time=3600)
    assert data == b"R" * total
    assert server.conn.stats.bytes_zero_filled == 0


# --------------------------------------------------------------------------
# GSI-style security
# --------------------------------------------------------------------------


def test_secure_driver_roundtrip_and_confidentiality():
    fw, group = wan_with_methods()
    client, server = connect_via(fw, group, "gsi", 8800)
    secret = b"confidential-simulation-state" * 10

    def scenario():
        client.write(secret)
        data = yield server.read(len(secret))
        return data

    assert run(fw, scenario(), max_time=600) == secret
    # the bytes on the wire are not the plaintext (spot-check the TCP stacks)
    wire_bytes = sum(c.bytes_sent for c in [client.conn.sock.conn])
    assert wire_bytes >= len(secret)


def test_secure_driver_rejects_unknown_ca():
    fw, group = wan_with_methods()
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    # replace node0's credential with one signed by a different CA
    rogue = SecureVLinkDriver(n0.sysio, credential=SiteCredential(n0.host.site, secret=b"rogue-ca"))
    n0.vlink._drivers["gsi"] = rogue
    listener = n1.vlink_listen(8900)

    def scenario():
        listener.accept()
        try:
            yield n0.vlink_connect(n1, 8900, method="gsi")
        except Exception as exc:
            return type(exc).__name__
        # the server silently drops the unauthenticated connection; the
        # connect may also simply never complete — treat both as rejection
        return "no-error"

    # either the connect fails or it never completes (deadlock -> SimulationError)
    from repro.simnet.engine import SimulationError

    try:
        result = run(fw, scenario(), max_time=10)
    except SimulationError:
        result = "never-established"
    assert result != "no-error"


def test_site_credentials():
    cred = SiteCredential("rennes")
    assert cred.verify("rennes", cred.token())
    assert not cred.verify("grenoble", cred.token())
    other_ca = SiteCredential("rennes", secret=b"other")
    assert not cred.verify("rennes", other_ca.token())
