"""Unit tests for cost accounting and tracing helpers."""

import pytest

from repro.simnet.cost import (
    Cost,
    combine_bandwidths,
    effective_bandwidth,
    format_bandwidth,
    format_latency,
    latency_bandwidth_time,
    required_copy_bandwidth,
    split_even,
    MB,
)
from repro.simnet.trace import (
    Counter,
    Probe,
    Trace,
    TransferSample,
    bandwidth_MBps,
    one_way_latency_from_roundtrip,
    summarize_samples,
)


def test_cost_accumulates():
    c = Cost()
    c.charge(1e-6, "a").charge(2e-6, "b").charge(3e-6, "a")
    assert c.seconds == pytest.approx(6e-6)
    assert c.component("a") == pytest.approx(4e-6)
    assert c.component("b") == pytest.approx(2e-6)
    assert c.component("missing") == 0.0


def test_cost_charge_us():
    c = Cost().charge_us(2.5, "x")
    assert c.microseconds == pytest.approx(2.5)


def test_cost_copy_charging():
    c = Cost().charge_copy(1_000_000, 100 * MB)
    assert c.seconds == pytest.approx(0.01)


def test_cost_rejects_invalid():
    with pytest.raises(ValueError):
        Cost().charge(-1.0)
    with pytest.raises(ValueError):
        Cost().charge_copy(10, 0)
    with pytest.raises(ValueError):
        Cost().charge_copy(-1, 100)


def test_cost_merge_and_copy():
    a = Cost().charge(1e-6, "x")
    b = Cost().charge(2e-6, "x").charge(1e-6, "y")
    clone = a.copy()
    a.merge(b)
    assert a.seconds == pytest.approx(4e-6)
    assert clone.seconds == pytest.approx(1e-6)
    assert set(a.labels()) == {"x", "y"}


def test_latency_bandwidth_time():
    assert latency_bandwidth_time(1000, 1e-3, 1e6) == pytest.approx(2e-3)
    with pytest.raises(ValueError):
        latency_bandwidth_time(10, 0.1, 0)


def test_effective_bandwidth():
    assert effective_bandwidth(1000, 0.001) == pytest.approx(1e6)
    with pytest.raises(ValueError):
        effective_bandwidth(1, 0)


def test_combine_bandwidths_harmonic():
    assert combine_bandwidths(100.0, 100.0) == pytest.approx(50.0)
    assert combine_bandwidths(240.0) == pytest.approx(240.0)
    with pytest.raises(ValueError):
        combine_bandwidths(0.0)


def test_required_copy_bandwidth_inverts_combination():
    wire = 240.0
    copy = required_copy_bandwidth(55.0, wire)
    assert combine_bandwidths(wire, copy) == pytest.approx(55.0)
    with pytest.raises(ValueError):
        required_copy_bandwidth(300.0, 240.0)


def test_split_even():
    assert split_even(10, 3) == (4, 3, 3)
    assert sum(split_even(1_000_001, 7)) == 1_000_001
    assert split_even(0, 2) == (0, 0)
    with pytest.raises(ValueError):
        split_even(5, 0)


def test_format_helpers():
    assert format_bandwidth(240 * MB) == "240.0 MB/s"
    assert format_bandwidth(150_000, unit="KB/s") == "150 KB/s"
    assert "us" in format_latency(8.4e-6)
    assert "ms" in format_latency(8e-3)
    with pytest.raises(ValueError):
        format_bandwidth(1.0, unit="furlongs")


def test_trace_records_and_filters():
    trace = Trace()
    trace.record(0.0, "send", "a", nbytes=10)
    trace.record(1.0, "recv", "b")
    assert len(trace) == 2
    assert [r.label for r in trace.by_category("send")] == ["a"]
    assert trace.labels("recv") == ["b"]
    trace.clear()
    assert len(trace) == 0


def test_trace_limit():
    trace = Trace(limit=2)
    for i in range(5):
        trace.record(float(i), "x", str(i))
    assert len(trace) == 2
    assert trace.dropped == 3


def test_trace_disabled():
    trace = Trace(enabled=False)
    trace.record(0.0, "x", "y")
    assert len(trace) == 0


def test_counter():
    c = Counter()
    c.add("bytes", 100)
    c.add("bytes", 200)
    c.add("events")
    assert c.get("bytes") == 300
    assert c.count("bytes") == 2
    assert c.mean("bytes") == 150
    assert c.get("missing") == 0.0
    with pytest.raises(KeyError):
        c.mean("missing")
    assert set(c.names()) == {"bytes", "events"}


def test_transfer_sample_and_summary():
    s = TransferSample(nbytes=1_000_000, elapsed=0.01)
    assert s.bandwidth_MBps == pytest.approx(100.0)
    assert s.elapsed_us == pytest.approx(10_000)
    summary = summarize_samples([s, TransferSample(2_000_000, 0.01)])
    assert summary["count"] == 2
    assert summary["max_MBps"] == pytest.approx(200.0)
    with pytest.raises(ValueError):
        summarize_samples([])
    with pytest.raises(ValueError):
        TransferSample(1, 0).bandwidth


def test_latency_and_bandwidth_helpers():
    assert one_way_latency_from_roundtrip(20e-6) == pytest.approx(10e-6)
    assert bandwidth_MBps(1_000_000, 1.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        one_way_latency_from_roundtrip(-1)
    with pytest.raises(ValueError):
        bandwidth_MBps(1, 0)


def test_probe_subscription():
    probe = Probe()
    seen = []
    fn = lambda label, data: seen.append((label, data))
    probe.subscribe(fn)
    probe("hit", x=1)
    probe.unsubscribe(fn)
    probe("miss", x=2)
    assert seen == [("hit", {"x": 1})]
