"""Fidelity-boundary tests for the fluid fast path (`repro.simnet.fluid`).

Every scenario here runs twice — once at packet fidelity, once hybrid —
and asserts the hybrid run is observationally equivalent: delivered byte
counts exactly equal, completion times float-identical, and passive-probe
loss estimates unchanged (the sliding-window batch update is bit-exact;
EWMA latency/bandwidth agree to float noise).  On top of the equivalence
checks, each test pins down *which* fluid transition it exercised via the
controller's introspection counters.
"""

import pytest

from repro.abstraction.topology import TopologyKB
from repro.core import FrameworkError, PadicoFramework
from repro.monitoring.churn import FaultInjector
from repro.monitoring.estimators import (
    EwmaEstimator,
    LinkEstimator,
    SlidingWindowEstimator,
)
from repro.monitoring.probes import PassiveLinkProbe
from repro.simnet.engine import Simulator
from repro.simnet.fluid import (
    FluidPolicy,
    LinkRateLedger,
    ledger_for,
    steady_state_rate,
)
from repro.simnet.host import Host
from repro.simnet.networks import Ethernet100, WanVthd
from repro.simnet.tcp import TcpStack

PORT = 4242
MIB = 1024 * 1024


def run_scenario(
    fidelity,
    *,
    net_cls=Ethernet100,
    nbytes=4 * MIB,
    chunk=None,
    policy=None,
    probe=False,
    degrades=(),
    second=None,
    second_connect="early",
    reader="drain",
):
    """One client/server transfer over a two-host link, instrumented.

    Returns a dict with completion times, byte counts, the sender-side
    connections (their fluid controllers carry the introspection counters)
    and, when requested, the passive probe + estimator and fault injector.
    """
    sim = Simulator()
    net = net_cls(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    if policy is not None:
        sa = TcpStack(a, fluid_policy=policy)
    else:
        sa = TcpStack(a, fidelity=fidelity)
    sb = TcpStack(b, fidelity=fidelity)
    out = {"sim": sim, "net": net}
    if probe:
        out["est"] = est = LinkEstimator()
        out["probe"] = PassiveLinkProbe(net, est.update)
    if degrades:
        inj = out["injector"] = FaultInjector(sim, TopologyKB(), seed=11, announce=False)
        for at, kwargs in degrades:
            inj.degrade_link_at(at, net, **kwargs)
    listener = sb.listen(PORT)
    conns = {}

    def client():
        conn = yield sa.connect(b, PORT)
        conns["c1"] = conn
        out["t0"] = sim.now
        if chunk:
            sent = 0
            while sent < nbytes:
                n = min(chunk, nbytes - sent)
                yield conn.send(b"x" * n)
                sent += n
        else:
            yield conn.send(b"x" * nbytes)

    def server():
        conn = yield listener.accept()
        conns["p1"] = conn
        if reader == "none":
            return
        data = yield conn.recv_exact(nbytes)
        out["t1"] = sim.now
        out["ok1"] = data == b"x" * nbytes

    sim.process(client())
    sim.process(server())

    if second is not None:
        at2, nbytes2 = second
        listener2 = sb.listen(PORT + 1)

        def client2():
            if second_connect == "early":
                # establish up front, start sending at at2: the *data* of
                # the second flow arrives through the ledger's flow-join
                conn = yield sa.connect(b, PORT + 1)
                conns["c2"] = conn
                yield sim.timeout(at2)
            else:
                # connect at at2: the SYN itself contends for the NIC
                yield sim.timeout(at2)
                conn = yield sa.connect(b, PORT + 1)
                conns["c2"] = conn
            yield conn.send(b"y" * nbytes2)

        def server2():
            conn = yield listener2.accept()
            data = yield conn.recv_exact(nbytes2)
            out["t2"] = sim.now
            out["ok2"] = data == b"y" * nbytes2

        sim.process(client2())
        sim.process(server2())

    sim.run(max_time=600.0)
    out["conn"] = conns.get("c1")
    out["peer"] = conns.get("p1")
    out["conn2"] = conns.get("c2")
    out["fluid"] = out["conn"]._fluid if out.get("conn") is not None else None
    return out


def _reasons(controller):
    return [reason for _at, reason in controller.invalidations]


def _assert_equivalent(packet, hybrid):
    """The observable contract: bytes exact, completion times float-equal."""
    assert hybrid["ok1"] and packet["ok1"]
    assert hybrid["t0"] == packet["t0"]
    assert hybrid["t1"] == packet["t1"]
    assert hybrid["conn"].bytes_sent == packet["conn"].bytes_sent
    assert hybrid["conn"].rounds == packet["conn"].rounds
    assert hybrid["peer"].bytes_received == packet["peer"].bytes_received


def _assert_probe_equivalent(packet, hybrid):
    """Passive estimates: loss bit-exact, latency/bandwidth to float noise."""
    pe, he = packet["est"], hybrid["est"]
    assert he.loss.samples == pe.loss.samples
    assert he.loss.mean() == pe.loss.mean()
    assert hybrid["probe"].frames == packet["probe"].frames
    assert hybrid["probe"].losses == packet["probe"].losses
    assert he.latency.value == pytest.approx(pe.latency.value, rel=1e-6)
    assert he.bandwidth.value == pytest.approx(pe.bandwidth.value, rel=1e-6)


# ---------------------------------------------------------------------------
# baseline equivalence: stable flows fluidize and stay exact
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("chunk", [None, 64 * 1024], ids=["bulk", "chunked"])
def test_hybrid_lan_transfer_is_float_identical(chunk):
    packet = run_scenario("packet", chunk=chunk, probe=True)
    hybrid = run_scenario("hybrid", chunk=chunk, probe=True)
    _assert_equivalent(packet, hybrid)
    _assert_probe_equivalent(packet, hybrid)
    fl = hybrid["fluid"]
    assert fl.activations >= 1
    assert fl.fluid_rounds > 0
    if chunk is None:
        # a lossless sole-sender bulk flow must reach the closed-form tier
        assert fl.epochs >= 1
    else:
        # awaited 64 KiB sends never queue more than one window: the flow
        # stays in the step tier
        assert fl.epochs == 0


def test_fluid_collapses_event_count():
    packet = run_scenario("packet", nbytes=8 * MIB)
    hybrid = run_scenario("hybrid", nbytes=8 * MIB)
    _assert_equivalent(packet, hybrid)
    # the point of the fast path: far fewer scheduled timers for the same
    # transfer (one batched delivery per epoch instead of one per burst)
    assert (
        hybrid["sim"].stats().timers_scheduled
        < packet["sim"].stats().timers_scheduled * 0.7
    )


# ---------------------------------------------------------------------------
# fallback: loss draw (satellite 3a)
# ---------------------------------------------------------------------------


def test_loss_draw_falls_back_to_packet_and_matches():
    """On a lossy WAN the flow fluidizes in step tier, and the first
    positive loss draw hands the round back to the packet path with the
    draw already consumed — the RNG stream, and everything downstream,
    stays identical to the pure packet run."""
    packet = run_scenario("packet", net_cls=WanVthd, nbytes=16 * MIB, probe=True)
    hybrid = run_scenario("hybrid", net_cls=WanVthd, nbytes=16 * MIB, probe=True)
    _assert_equivalent(packet, hybrid)
    _assert_probe_equivalent(packet, hybrid)
    fl = hybrid["fluid"]
    assert fl.fluid_rounds > 0
    assert "loss-draw" in _reasons(fl)
    # after the fallback the stability streak rebuilds and the flow
    # re-fluidizes (16 MiB leaves plenty of rounds)
    assert fl.activations >= 2
    # a lossy link never reaches the closed-form tier
    assert fl.epochs == 0
    # the packet run saw actual losses, and the hybrid run saw the same ones
    assert packet["est"].loss.mean() > 0.0


# ---------------------------------------------------------------------------
# fallback: link churn mid-epoch (satellite 3b)
# ---------------------------------------------------------------------------


def test_mid_epoch_degrade_rolls_back_exactly():
    """A bandwidth degrade lands mid-epoch: the uncommitted suffix of the
    plan is unwound and the flow resumes in packet mode at the precise
    virtual time the packet model would have pumped — completion times
    stay float-identical, probe estimates unchanged."""
    degrades = [(0.25, dict(bandwidth=6_000_000.0))]
    packet = run_scenario(
        "packet", nbytes=8 * MIB, probe=True, degrades=degrades
    )
    hybrid = run_scenario(
        "hybrid", nbytes=8 * MIB, probe=True, degrades=degrades
    )
    _assert_equivalent(packet, hybrid)
    _assert_probe_equivalent(packet, hybrid)
    fl = hybrid["fluid"]
    assert fl.epochs >= 1
    assert "degrade" in _reasons(fl)
    # the injector really fired, in both runs
    assert [e.kind for e in hybrid["injector"].log] == ["degrade-link"]
    assert [e.kind for e in packet["injector"].log] == ["degrade-link"]
    # after the fallback the flow re-fluidizes under the new parameters
    assert fl.activations >= 2


def test_latency_degrade_mid_epoch_matches():
    degrades = [(0.2, dict(latency=5e-3)), (0.45, dict(bandwidth=8_000_000.0))]
    packet = run_scenario("packet", nbytes=8 * MIB, degrades=degrades)
    hybrid = run_scenario("hybrid", nbytes=8 * MIB, degrades=degrades)
    _assert_equivalent(packet, hybrid)
    assert "degrade" in _reasons(hybrid["fluid"])


# ---------------------------------------------------------------------------
# fallback: contention change on a shared link (satellite 3c)
# ---------------------------------------------------------------------------


def test_second_flow_join_defluidizes_and_matches():
    """A second sender appearing on the same NIC changes the rate share:
    the fluidized flow must fall back (rolling back its epoch), contend in
    packet mode, and re-fluidize once the competitor drains — with byte
    counts and completion times exactly equal to the pure packet run for
    *both* flows."""
    packet = run_scenario("packet", nbytes=8 * MIB, second=(0.2, 1 * MIB))
    hybrid = run_scenario("hybrid", nbytes=8 * MIB, second=(0.2, 1 * MIB))
    _assert_equivalent(packet, hybrid)
    assert hybrid["ok2"] and packet["ok2"]
    assert hybrid["t2"] == packet["t2"]
    assert hybrid["conn2"].bytes_sent == packet["conn2"].bytes_sent
    reasons = _reasons(hybrid["fluid"])
    assert "flow-join" in reasons
    assert "flow-leave" in reasons
    # while the second flow is active the first is not the sole sender, so
    # the ledger must have seen two senders on host a at some point
    ledger = hybrid["net"].fluid_ledger
    assert isinstance(ledger, LinkRateLedger)
    # flows drained: contention registry is empty again
    assert ledger.senders_on(hybrid["conn"].host) == 0


def test_mid_epoch_handshake_contention_matches():
    """A connection *handshaking* mid-epoch is foreign traffic on the
    NIC: its SYN's reservation must unwind the epoch's planned-future
    slots, or the handshake would queue behind the whole remaining
    transfer instead of behind the in-flight burst."""
    packet = run_scenario(
        "packet", nbytes=8 * MIB, second=(0.2, 1 * MIB), second_connect="late"
    )
    hybrid = run_scenario(
        "hybrid", nbytes=8 * MIB, second=(0.2, 1 * MIB), second_connect="late"
    )
    _assert_equivalent(packet, hybrid)
    assert hybrid["ok2"] and packet["ok2"]
    assert hybrid["t2"] == packet["t2"]
    assert "nic-contention" in _reasons(hybrid["fluid"])


# ---------------------------------------------------------------------------
# stream-order integrity: distinct payloads, queued sends, mid-epoch churn
# ---------------------------------------------------------------------------

SEND_SIZES = (1 * MIB, 4096, 4096, 1 * MIB)
SEND_PAYLOAD = b"".join(bytes([ch]) * n for ch, n in zip(b"abcd", SEND_SIZES))


def run_multisend(fidelity, t_inv=None, stable_rounds=2, probe=False):
    """Queue four sends with *distinct* contents back-to-back (no awaiting
    between them), so multiple queue entries can complete inside a single
    planned round, and optionally force a fluid invalidation at ``t_inv``.

    Unlike :func:`run_scenario`'s uniform payloads, distinct bytes make any
    reordering of the delivered stream visible.
    """
    sim = Simulator()
    net = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    if fidelity == "hybrid":
        sa = TcpStack(a, fluid_policy=FluidPolicy(stable_rounds=stable_rounds))
    else:
        sa = TcpStack(a, fidelity=fidelity)
    sb = TcpStack(b, fidelity=fidelity)
    out = {"done": []}
    if probe:
        out["est"] = est = LinkEstimator()
        out["probe"] = PassiveLinkProbe(net, est.update)
    listener = sb.listen(PORT)

    def client():
        conn = yield sa.connect(b, PORT)
        out["conn"] = conn
        for i, (ch, n) in enumerate(zip(b"abcd", SEND_SIZES)):
            ev = conn.send(bytes([ch]) * n)
            ev.add_callback(lambda _ev, i=i: out["done"].append((i, sim.now)))

    def server():
        conn = yield listener.accept()
        data = yield conn.recv_exact(len(SEND_PAYLOAD))
        out["t1"] = sim.now
        out["data"] = bytes(data)

    sim.process(client())
    sim.process(server())
    if t_inv is not None:
        sim.call_at(t_inv, net.invalidate_fluid, "test-churn")
    sim.run(max_time=600.0)
    return out


def test_hybrid_preserves_byte_order_across_handoff():
    """Distinct-content sends must arrive in exact stream order.  The fluid
    tiers defer the receive-readiness clamp to arrival time, so a packet-
    mode frame still in flight at the packet->fluid handoff keeps its place
    ahead of the fluid bytes that follow it (an early watermark bump used
    to push the in-flight frame's bytes behind the whole fluid batch)."""
    packet = run_multisend("packet", stable_rounds=8)
    hybrid = run_multisend("hybrid", stable_rounds=8)
    assert hybrid["data"] == SEND_PAYLOAD
    assert packet["data"] == SEND_PAYLOAD
    assert hybrid["t1"] == packet["t1"]
    assert hybrid["done"] == packet["done"]
    assert hybrid["conn"]._fluid.epochs >= 1


def test_rollback_splits_sends_completing_in_same_round():
    """Churn cutting an epoch before a round in which *two* queued sends
    complete together: the rollback must attribute each send its own byte
    end offset (a shared per-round offset used to raise IndexError on the
    second completion and reorder the restored bytes)."""
    # 0.044s lands inside the first epoch, before the planned round that
    # finishes both 4 KiB sends (the 1 MiB entry ahead of them keeps that
    # round in the plan's uncommitted suffix).
    packet = run_multisend("packet", t_inv=0.044, probe=True)
    hybrid = run_multisend("hybrid", t_inv=0.044, probe=True)
    assert hybrid["data"] == SEND_PAYLOAD
    assert packet["data"] == SEND_PAYLOAD
    assert hybrid["t1"] == packet["t1"]
    assert hybrid["done"] == packet["done"]
    _assert_probe_equivalent(packet, hybrid)
    fl = hybrid["conn"]._fluid
    assert "test-churn" in _reasons(fl)
    # the epoch hit by the invalidation rolled back, and the flow
    # re-fluidized into a fresh epoch afterwards
    assert fl.epochs >= 2


def test_unobserved_epoch_rollback_keeps_obs_counters_clean():
    """With no passive observers attached, an epoch accumulates no
    synthesized observations — its rollback must not rewind the counters
    anyway (they went negative, and a probe attaching before the next
    flush would have received a negative-weight tcp-burst sample)."""
    hybrid = run_multisend("hybrid", t_inv=0.044)
    fl = hybrid["conn"]._fluid
    assert "test-churn" in _reasons(fl)
    assert fl.epochs >= 2
    assert fl._obs_bursts == 0
    assert fl._obs_npkts == 0
    assert fl._obs_nbytes == 0


# ---------------------------------------------------------------------------
# fallback: receiver-window pressure
# ---------------------------------------------------------------------------


def test_rx_pressure_falls_back_to_packet():
    """A receiver that stops reading piles bytes into its rx buffer; once
    it exceeds the policy's pressure limit the flow must drop back to
    packet mode (the packet model has no flow control, so delivered bytes
    and send-completion times stay exactly equal regardless)."""
    sends = (2 * MIB, 3 * MIB, 1 * MIB)

    def run(fidelity):
        sim = Simulator()
        net = Ethernet100(sim)
        a, b = Host(sim, "a"), Host(sim, "b")
        net.connect(a)
        net.connect(b)
        if fidelity == "hybrid":
            # limit = 16 receive windows = 4 MiB of unread backlog
            sa = TcpStack(a, fluid_policy=FluidPolicy(rx_pressure_windows=16))
        else:
            sa = TcpStack(a, fidelity=fidelity)
        sb = TcpStack(b, fidelity=fidelity)
        listener = sb.listen(PORT)
        out = {"times": []}

        def client():
            conn = yield sa.connect(b, PORT)
            out["conn"] = conn
            for n in sends:
                yield conn.send(b"x" * n)
                out["times"].append(sim.now)
                yield sim.timeout(1.0)

        def server():
            conn = yield listener.accept()
            out["peer"] = conn
            # accept and never read a byte

        sim.process(client())
        sim.process(server())
        sim.run(max_time=600.0)
        return out

    packet, hybrid = run("packet"), run("hybrid")
    fl = hybrid["conn"]._fluid
    # the flow fluidized while the backlog was under the limit, then the
    # eligibility check caught the stuck reader
    assert fl.activations >= 1
    assert "conditions-changed" in _reasons(fl)
    assert not fl.active
    assert hybrid["times"] == packet["times"]
    assert hybrid["peer"].available() == packet["peer"].available() == sum(sends)
    assert hybrid["conn"].bytes_sent == packet["conn"].bytes_sent


# ---------------------------------------------------------------------------
# partition boundary: cross-shard flows never fluidize
# ---------------------------------------------------------------------------


def test_cross_partition_flow_stays_packet():
    sim = Simulator(partitions=2)
    wan = WanVthd(sim, "wan-fluid")
    a, b = Host(sim, "a"), Host(sim, "b")
    b.partition = 1
    wan.connect(a)
    wan.connect(b)
    sa = TcpStack(a, fidelity="hybrid")
    sb = TcpStack(b, fidelity="hybrid")
    listener = sb.listen(PORT)
    out = {}
    nbytes = 2 * MIB

    def client():
        conn = yield sa.connect(b, PORT)
        out["conn"] = conn
        yield conn.send(b"x" * nbytes)

    def server():
        conn = yield listener.accept()
        data = yield conn.recv_exact(nbytes)
        out["ok"] = data == b"x" * nbytes

    with sim.in_partition(0):
        sim.process(client())
    with sim.in_partition(1):
        sim.process(server())
    sim.run(max_time=600.0)
    assert out["ok"]
    fl = out["conn"]._fluid
    assert fl.activations == 0
    assert fl.fluid_rounds == 0


# ---------------------------------------------------------------------------
# ledger unit coverage
# ---------------------------------------------------------------------------


class _StubController:
    def __init__(self, conn):
        self.conn = conn
        self.invalidated = []

    def invalidate(self, reason):
        self.invalidated.append(reason)


class _StubConn:
    def __init__(self, host):
        self.host = host


def _stub_conn(host):
    return _StubConn(host)


def test_ledger_membership_and_fair_share():
    sim = Simulator()
    net = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    ledger = ledger_for(net)
    assert ledger is net.fluid_ledger
    assert ledger_for(net) is ledger  # lazily created once

    c1, c2, c3 = _stub_conn(a), _stub_conn(a), _stub_conn(b)
    ledger.join(c1)
    assert ledger.sole_sender(c1)
    assert ledger.fair_share(c1) == net.bandwidth
    ledger.join(c2)
    assert not ledger.sole_sender(c1)
    assert ledger.senders_on(a) == 2
    assert ledger.fair_share(c1) == net.bandwidth / 2
    # a sender on the *other* host does not contend with c1's NIC
    ledger.join(c3)
    assert ledger.senders_on(a) == 2
    assert ledger.sole_sender(c3)
    ledger.leave(c2)
    assert ledger.sole_sender(c1)
    ledger.leave(c1)
    ledger.leave(c3)
    assert ledger.senders_on(a) == 0
    assert ledger.senders_on(b) == 0
    # idempotent: leaving twice or before joining is a no-op
    ledger.leave(c1)


def test_ledger_notifies_same_nic_flows_only():
    sim = Simulator()
    net = Ethernet100(sim)
    a, b = Host(sim, "a"), Host(sim, "b")
    net.connect(a)
    net.connect(b)
    ledger = ledger_for(net)
    ca, cb = _stub_conn(a), _stub_conn(b)
    fa, fb = _StubController(ca), _StubController(cb)
    ledger.join(ca)
    ledger.join(cb)
    ledger.register_fluid(fa)
    ledger.register_fluid(fb)
    # a new sender on host a invalidates only the fluid flow sharing a's NIC
    ledger.join(_stub_conn(a))
    assert fa.invalidated == ["flow-join"]
    assert fb.invalidated == []
    # a full-link invalidation (churn) hits everyone
    net.invalidate_fluid("degrade")
    assert fa.invalidated[-1] == "degrade"
    assert fb.invalidated == ["degrade"]
    assert ledger.fluid_count() == 2


# ---------------------------------------------------------------------------
# batched estimator updates (the probe-side half of the fidelity contract)
# ---------------------------------------------------------------------------


def test_sliding_window_batch_update_is_bit_exact():
    seq = SlidingWindowEstimator(window=32)
    bat = SlidingWindowEstimator(window=32)
    for v, n in [(0.0, 5), (0.25, 1), (0.0, 40), (0.1, 3)]:
        for _ in range(n):
            seq.update(v)
        bat.update_many(v, n)
    assert bat.samples == seq.samples
    assert bat.mean() == seq.mean()
    assert list(bat._values) == list(seq._values)


def test_ewma_batch_update_matches_sequential():
    seq = EwmaEstimator(alpha=0.25)
    bat = EwmaEstimator(alpha=0.25)
    for v, n in [(10.0, 1), (12.0, 7), (9.0, 32), (12.5, 2)]:
        for _ in range(n):
            seq.update(v)
        bat.update_many(v, n)
    assert bat.samples == seq.samples
    assert bat.value == pytest.approx(seq.value, rel=1e-12)


# ---------------------------------------------------------------------------
# analytics + knobs
# ---------------------------------------------------------------------------


def test_steady_state_rate_closed_form():
    sim = Simulator()
    net = Ethernet100(sim)
    rwnd = 256 * 1024
    rate = steady_state_rate(net, 10**9, rwnd)
    # serialization-bound on a 100 Mb LAN: rate = window / ser(window)
    assert rate == pytest.approx(rwnd / net.serialization_time(rwnd))
    # two flows sharing the NIC halve the serialization-bound rate
    assert steady_state_rate(net, 10**9, rwnd, nflows=2) == pytest.approx(rate / 2)
    # tiny windows are latency-bound instead
    small = steady_state_rate(net, 1024, rwnd)
    assert small == pytest.approx(1024 / (2 * net.latency))
    assert steady_state_rate(net, 0, rwnd) == 0.0


def test_fidelity_knob_validation():
    sim = Simulator()
    net = Ethernet100(sim)
    a = Host(sim, "a")
    net.connect(a)
    with pytest.raises(ValueError):
        TcpStack(a, fidelity="bogus")
    stack = TcpStack(a, fluid_policy=FluidPolicy(stable_rounds=4))
    assert stack.fidelity == "hybrid"
    assert stack.fluid_policy.stable_rounds == 4
    assert TcpStack(Host(sim, "b")).fluid_policy is None


def test_framework_fidelity_knob_reaches_stacks():
    with pytest.raises(FrameworkError):
        PadicoFramework(fidelity="fluid-only")
    fw = PadicoFramework(fidelity="hybrid")
    fw.add_host("a")
    fw.add_network(Ethernet100(fw.sim)).connect(fw.host("a"))
    node = fw.boot(["a"])[0]
    assert node.tcp.fidelity == "hybrid"
    fw2 = PadicoFramework()
    assert fw2.fidelity == "packet"
