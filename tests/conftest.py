"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.core import paper_cluster, paper_wan_pair, paper_lossy_pair
from tests.helpers import run  # noqa: F401 - re-exported convenience


@pytest.fixture
def cluster():
    """The paper's 2-node Myrinet + Ethernet cluster, booted."""
    fw, group = paper_cluster(2)
    return fw, group


@pytest.fixture
def cluster4():
    """A 4-node Myrinet + Ethernet cluster, booted."""
    fw, group = paper_cluster(4)
    return fw, group


@pytest.fixture
def ethernet_cluster():
    """A 2-node cluster with only Fast Ethernet (no SAN)."""
    fw, group = paper_cluster(2, myrinet=False, ethernet=True)
    return fw, group


@pytest.fixture
def wan_pair():
    """Two sites joined by the VTHD WAN."""
    fw, group = paper_wan_pair()
    return fw, group


@pytest.fixture
def lossy_pair():
    """Two nodes across the lossy trans-continental link."""
    fw, group = paper_lossy_pair()
    return fw, group
