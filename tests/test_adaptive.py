"""Tests for adaptive VLinks (live migration without byte loss/reorder),
relay teardown propagation, and the stream-mesh message-order fix."""

import pytest

from tests.helpers import run

from repro.abstraction import LinkClass, Route, VLinkState
from repro.core import PadicoFramework
from repro.methods import register_wan_method_drivers
from repro.simnet.cost import Cost
from repro.simnet.networks import Ethernet100, WanVthd


def wan_pair_with_backup(register_methods=False):
    """edge--wan--remote plus a gateway path (edge--lan--gw--wan2--remote)."""
    fw = PadicoFramework()
    edge = fw.add_host("edge", site="s1")
    gw = fw.add_host("gw", site="s1")
    remote = fw.add_host("remote", site="s2")
    wan = fw.add_network(WanVthd(fw.sim, "wan-direct"))
    lan = fw.add_network(Ethernet100(fw.sim, "lan"))
    wan2 = fw.add_network(WanVthd(fw.sim, "wan-backup", seed=777))
    wan.connect(edge), wan.connect(remote)
    lan.connect(edge), lan.connect(gw)
    wan2.connect(gw), wan2.connect(remote)
    fw.boot()
    if register_methods:
        register_wan_method_drivers(fw.node("edge"))
        register_wan_method_drivers(fw.node("remote"))
    return fw, edge, gw, remote, wan, lan, wan2


def pattern(n, offset=0):
    return bytes((i + offset) % 251 for i in range(n))


# --------------------------------------------------------------------------
# Adaptive sessions: plain operation
# --------------------------------------------------------------------------


def test_adaptive_session_carries_bytes_both_ways(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(8000, adaptive=True)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 8000, adaptive=True)
        server = yield accept_op
        w = client.write(pattern(50_000))
        data = yield server.read(50_000)
        yield w  # write op completes on peer delivery (cumulative ack)
        server.write(b"pong")
        back = yield client.read(4)
        return client, server, data, back

    client, server, data, back = run(fw, scenario())
    assert data == pattern(50_000)
    assert back == b"pong"
    assert client.state is VLinkState.ESTABLISHED
    assert client.migrations == 0
    assert client.unacked == 0
    assert client.driver_name == "madio"  # SAN pair keeps the seed choice


def test_adaptive_connect_refused_without_listener(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    n1.vlink_listen(8050)  # plain listener: hello never answered properly

    def scenario():
        try:
            yield n0.vlink_connect(n1, 8051, adaptive=True)
        except ConnectionError:
            return "refused"

    assert run(fw, scenario()) == "refused"


def test_adaptive_close_propagates(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(8100, adaptive=True)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 8100, adaptive=True)
        server = yield accept_op
        client.write(b"bye")
        data = yield server.read(3)
        client.close()
        read_op = server.read(1)
        try:
            yield read_op
        except ConnectionError:
            return data, server.state

    data, state = run(fw, scenario())
    assert data == b"bye"
    assert state is VLinkState.CLOSED
    assert fw.node(group[0].name).vlink.adaptive_links() == []


def test_pending_write_fails_when_peer_closes(cluster):
    """A write outstanding when the peer's CLOSE lands must fail, not hang."""
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(8150, adaptive=True)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 8150, adaptive=True)
        server = yield accept_op
        w = client.write(b"x" * 2_000_000)  # acks take a while
        server.close()
        try:
            yield w
            return "completed"
        except ConnectionError:
            return "failed cleanly"

    assert run(fw, scenario(), max_time=120) == "failed cleanly"


def test_close_during_migration_flushes_buffered_bytes(cluster):
    """Bytes written while a migration is in flight must still reach the
    peer when the session closes (no silent truncation)."""
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(8160, adaptive=True)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 8160, adaptive=True)
        server = yield accept_op
        client._migrating = True  # as if a migration were in flight
        client.write(pattern(5000))
        client.close()
        data = yield server.read(5000)
        return data, server.truncated

    data, truncated = run(fw, scenario(), max_time=120)
    assert data == pattern(5000)
    assert not truncated


def test_closed_adaptive_listener_refuses_new_sessions(cluster):
    fw, group = cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(8170, adaptive=True)
    listener.close()

    def scenario():
        try:
            yield n0.vlink_connect(n1, 8170, adaptive=True)
            return "accepted"
        except ConnectionError:
            return "refused"

    assert run(fw, scenario(), max_time=120) == "refused"
    assert listener.sessions == {}


# --------------------------------------------------------------------------
# Migration under churn
# --------------------------------------------------------------------------


def test_adaptive_link_migrates_to_gateway_route_on_link_death():
    """The acceptance scenario in miniature (oracle announce): the WAN dies
    mid-transfer, the open VLink migrates to the gateway route, every byte
    arrives intact and in order."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    listener = fw.node("remote").vlink_listen(8200, adaptive=True)
    injector = fw.fault_injector(seed=21)
    total = 600_000
    chunk = 60_000

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 8200, adaptive=True)
        server = yield accept_op
        assert client.rail_signature[0][0] == "sysio"
        assert client.rail_signature[0][1] == "wan-direct"
        for i in range(total // chunk):
            client.write(pattern(chunk, offset=i))
            if i == 2:
                injector.fail_link_at(fw.sim.now + 0.005, wan)
        data = yield server.read(total)
        return client, server, data

    client, server, data = run(fw, scenario(), max_time=300)
    expected = b"".join(pattern(chunk, offset=i) for i in range(total // chunk))
    assert data == expected  # intact and in order across the migration
    assert client.migrations == 1
    assert isinstance(client.route, Route) and len(client.route) == 2
    assert [h.name for h in client.route.gateways()] == ["gw"]
    assert fw.node("gw").gateway_relay.relayed >= 1


def test_adaptive_server_push_survives_migration():
    """Bytes the server wrote while the old rail was dying are retransmitted
    on the resumed rail (reverse-direction recovery)."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    listener = fw.node("remote").vlink_listen(8300, adaptive=True)
    injector = fw.fault_injector(seed=22)
    total = 200_000

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 8300, adaptive=True)
        server = yield accept_op
        server.write(pattern(total))
        # kill the direct WAN while the server->client stream is in flight
        injector.fail_link_at(fw.sim.now + 0.02, wan)
        data = yield client.read(total)
        return client, data

    client, data = run(fw, scenario(), max_time=300)
    assert data == pattern(total)
    assert client.migrations == 1


def test_adaptive_migrates_to_better_method_on_reclassification():
    """Measured loss pushes the link to LOSSY_WAN: the open VLink migrates
    from parallel streams to the (zero-tolerance) VRP rail on the same wire."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup(register_methods=True)
    listener = fw.node("remote").vlink_listen(8400, adaptive=True)
    total = 120_000

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 8400, adaptive=True)
        server = yield accept_op
        assert client.driver_name == "parallel_streams"  # WAN default
        client.write(pattern(total // 2))
        # the monitoring verdict lands in the KB (here: pushed directly)
        fw.topology.apply_measurement(wan, loss_rate=0.05, detail="test push")
        yield fw.sim.timeout(0.2)
        client.write(pattern(total // 2, offset=7))
        data = yield server.read(total)
        return client, data

    client, data = run(fw, scenario(), max_time=300)
    assert data == pattern(total // 2) + pattern(total // 2, offset=7)
    assert client.migrations == 1
    assert client.driver_name == "vrp"
    assert client.route.link_class is LinkClass.LOSSY_WAN  # direct rail: RouteChoice


def _measured_flap_scenario(route_dwell=None, port=8450):
    """Open an adaptive session, then flip the direct WAN's *measured* loss
    across the lossy threshold every 50 ms (probe-noise flapping); returns
    the client after delivering a payload."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup(register_methods=True)
    manager = fw.node("edge").vlink
    if route_dwell is not None:
        manager.route_dwell = route_dwell
    listener = fw.node("remote").vlink_listen(port, adaptive=True)
    total = 50_000

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), port, adaptive=True)
        server = yield accept_op
        for k in range(10):
            loss = 0.05 if k % 2 == 0 else 0.0
            fw.topology.apply_measurement(wan, loss_rate=loss, detail=f"flip{k}")
            yield fw.sim.timeout(0.05)
        client.write(pattern(total))
        data = yield server.read(total)
        return client, data

    client, data = run(fw, scenario(), max_time=300)
    assert data == pattern(total)
    return client


def test_route_dwell_damps_measured_metric_flapping():
    """Minimum-dwell hysteresis: a measured-loss flip-flop that would
    migrate the session on every push is held to the dwell rate, while the
    undamped manager chases every flip (the route-flapping ROADMAP item)."""
    damped = _measured_flap_scenario()  # ships with ROUTE_MIN_DWELL
    undamped = _measured_flap_scenario(route_dwell=0.0)
    assert undamped.migrations >= 5, "control: without dwell the route chases every flip"
    assert damped.migrations <= 2
    assert damped.migrations < undamped.migrations


def test_route_dwell_does_not_pin_a_dead_route():
    """The dwell only vetoes *preference* migrations: a route through a link
    that goes down must migrate immediately, dwell or not."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup(register_methods=True)
    listener = fw.node("remote").vlink_listen(8460, adaptive=True)
    total = 60_000

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 8460, adaptive=True)
        server = yield accept_op
        # first migration: measured loss reclassifies the wire (vrp rail)
        fw.topology.apply_measurement(wan, loss_rate=0.05, detail="lossy push")
        yield fw.sim.timeout(0.05)
        assert client.migrations == 1
        # well inside the dwell window the whole wire dies: the session must
        # abandon it for the gateway path right away
        wan.up = False
        fw.topology.mark_link_down(wan, detail="died inside dwell")
        client.write(pattern(total))
        data = yield server.read(total)
        return client, data

    client, data = run(fw, scenario(), max_time=300)
    assert data == pattern(total)
    assert client.migrations == 2
    assert client.route is not None and not client.route.is_direct  # gateway path


def test_adaptive_link_survives_flapping_wan():
    """A link flapping down/up (seeded Poisson schedule) never loses bytes."""
    fw, edge, gw, remote, wan, lan, wan2 = wan_pair_with_backup()
    listener = fw.node("remote").vlink_listen(8500, adaptive=True)
    injector = fw.fault_injector(seed=33)
    windows = injector.flap_link(wan, horizon=6.0, down_time=0.4, rate=0.8, start=0.05)
    assert windows, "the seeded schedule must produce at least one outage"
    total = 400_000
    chunk = 40_000

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 8500, adaptive=True)
        server = yield accept_op
        for i in range(total // chunk):
            client.write(pattern(chunk, offset=i))
            yield fw.sim.timeout(0.3)
        data = yield server.read(total)
        return client, data

    client, data = run(fw, scenario(), max_time=600)
    assert data == b"".join(pattern(chunk, offset=i) for i in range(total // chunk))
    assert client.migrations >= 1


# --------------------------------------------------------------------------
# Relay teardown (ROADMAP leak satellite)
# --------------------------------------------------------------------------


def relay_topology():
    fw = PadicoFramework()
    a = fw.add_host("edge")
    g = fw.add_host("gw")
    b = fw.add_host("remote")
    lan = fw.add_network(Ethernet100(fw.sim, "lan"))
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    lan.connect(a), lan.connect(g)
    wan.connect(g), wan.connect(b)
    fw.boot()
    return fw


def test_relay_session_reclaimed_when_client_closes():
    fw = relay_topology()
    listener = fw.node("remote").vlink_listen(8600)
    relay = fw.node("gw").gateway_relay

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 8600)
        server = yield accept_op
        client.write(b"hello")
        data = yield server.read(5)
        assert len(relay.sessions()) == 1
        client.close()
        # the far side must observe the close through the splice
        read_op = server.read(1)
        try:
            yield read_op
        except ConnectionError:
            pass
        yield fw.sim.timeout(0.5)
        return data

    assert run(fw, scenario(), max_time=300) == b"hello"
    assert relay.sessions() == []
    assert relay.reclaimed == 1


def test_relay_session_reclaimed_when_server_closes():
    fw = relay_topology()
    listener = fw.node("remote").vlink_listen(8700)
    relay = fw.node("gw").gateway_relay

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 8700)
        server = yield accept_op
        client.write(b"x")
        yield server.read(1)
        server.close()
        read_op = client.read(1)
        try:
            yield read_op
        except ConnectionError:
            pass
        yield fw.sim.timeout(0.5)
        return True

    assert run(fw, scenario(), max_time=300)
    assert relay.sessions() == []
    assert relay.reclaimed == 1


def test_refused_relay_sessions_do_not_leak():
    fw = relay_topology()

    def scenario():
        try:
            yield fw.node("edge").vlink_connect(fw.node("remote"), 48123)
        except ConnectionRefusedError:
            return "refused"

    assert run(fw, scenario()) == "refused"
    assert fw.node("gw").gateway_relay.sessions() == []


# --------------------------------------------------------------------------
# Stream-mesh circuit message order (satellite)
# --------------------------------------------------------------------------


def test_stream_mesh_send_pacing_preserves_message_order(ethernet_cluster):
    """Send-side frame pacing: a small message with a cheap send cost posted
    right after an expensive large one must not overtake it."""
    fw, group = ethernet_cluster
    grp = fw.group([h.name for h in group], "pair")
    ca = fw.node(group[0].name).circuit("order", grp)
    cb = fw.node(group[1].name).circuit("order", grp)
    big, small = b"A" * 500_000, b"B" * 8

    def scenario():
        big_msg = ca.new_message(1)
        big_msg.pack_cheaper(big)
        # a hefty send-side cost (e.g. packing copies) delays the big write
        ca.post(big_msg, extra_cost=Cost().charge(0.002, "test.pack"))
        small_msg = ca.new_message(1)
        small_msg.pack_express(small)
        ca.post(small_msg)  # nearly free: used to leapfrog the big one
        first_src, first = yield cb.recv()
        second_src, second = yield cb.recv()
        return first.unpack(), second.unpack()

    first, second = run(fw, scenario(), max_time=300)
    assert first == big  # message order preserved on the stream adapter
    assert second == small


@pytest.mark.parametrize("method", ["adoc", "gsi"])
def test_codec_drivers_preserve_stream_order(ethernet_cluster, method):
    """Same bug family at the codec drivers: a small block's cheaper
    compression/cipher delay must not let it overtake an earlier large
    block (regression: per-block call_later on both sides)."""
    fw, group = ethernet_cluster
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    from repro.methods import register_method_drivers

    register_method_drivers(n0)
    register_method_drivers(n1)
    listener = n1.vlink_listen(8800)
    big, small = bytes(range(256)) * 4000, b"B" * 8  # 1 MB + 8 B

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 8800, method=method)
        server = yield accept_op
        client.write(big)
        client.write(small)
        data = yield server.read(len(big) + len(small))
        return data[: len(big)] == big and data[len(big) :] == small

    assert run(fw, scenario(), max_time=600)
