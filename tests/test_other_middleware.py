"""Tests for Java sockets, SOAP, HLA, PVM and DSM middleware."""

import pytest

from tests.helpers import run

from repro.middleware.javasockets import DataInputStream, DataOutputStream, JavaSocketLayer
from repro.middleware.soap import (
    SoapClient,
    SoapFault,
    SoapServer,
    build_envelope,
    build_fault,
    parse_envelope,
)
from repro.middleware.hla import FederateAmbassador, RtiAmbassador, RtiGateway
from repro.middleware.pvm import PvmError, PvmTask
from repro.middleware.dsm import DsmError, DsmNode


# --------------------------------------------------------------------------
# Java sockets
# --------------------------------------------------------------------------


def test_java_sockets_data_streams(cluster):
    fw, group = cluster
    layer0 = JavaSocketLayer(fw.node(group[0].name))
    layer1 = JavaSocketLayer(fw.node(group[1].name))
    server_socket = layer1.server_socket(6100)

    def scenario():
        accept = fw.sim.process(server_socket.accept())
        client = layer0.socket()
        yield from client.connect(fw.node(group[1].name).host, 6100)
        server = yield accept
        out = DataOutputStream(client)
        inp = DataInputStream(server)
        yield from out.write_int(42)
        yield from out.write_double(2.75)
        yield from out.write_utf("grid")
        yield from out.write_fully(b"raw")
        i = yield from inp.read_int()
        d = yield from inp.read_double()
        s = yield from inp.read_utf()
        raw = yield from inp.read_fully(3)
        return i, d, s, raw, client.driver_name

    i, d, s, raw, driver = run(fw, scenario())
    assert (i, d, s, raw) == (42, 2.75, "grid", b"raw")
    assert driver == "madio"  # the JVM socket layer rides Myrinet transparently


def test_java_socket_latency_much_higher_than_mpi(cluster):
    fw, group = cluster
    layer0 = JavaSocketLayer(fw.node(group[0].name))
    layer1 = JavaSocketLayer(fw.node(group[1].name))
    server_socket = layer1.server_socket(6101)

    def scenario():
        accept = fw.sim.process(server_socket.accept())
        client = layer0.socket()
        yield from client.connect(fw.node(group[1].name).host, 6101)
        server = yield accept
        yield from client.write(b"w" * 8)
        yield from server.read(8)
        t0 = fw.sim.now
        yield from client.write(b"p" * 8)
        yield from server.read(8)
        return fw.sim.now - t0

    one_way = run(fw, scenario())
    assert 35e-6 < one_way < 46e-6  # paper: 40 us


# --------------------------------------------------------------------------
# SOAP
# --------------------------------------------------------------------------


def test_soap_envelope_roundtrip():
    xml = build_envelope("monitor", {"step": 12, "residual": 0.5, "name": "solver<1>", "ok": True})
    op, params = parse_envelope(xml)
    assert op == "monitor"
    values = dict(params)
    assert values == {"step": 12, "residual": 0.5, "name": "solver<1>", "ok": True}


def test_soap_envelope_with_binary_and_list():
    xml = build_envelope("put", {"blob": b"\x00\x01\x02", "series": [1, 2.5, "x"]})
    _, params = parse_envelope(xml)
    values = dict(params)
    assert values["blob"] == b"\x00\x01\x02"
    assert values["series"] == [1, 2.5, "x"]


def test_soap_fault_parsing():
    with pytest.raises(SoapFault, match="broken"):
        parse_envelope(build_fault("broken"))
    with pytest.raises(SoapFault):
        parse_envelope("<not-soap/>")


def test_soap_rpc_end_to_end(cluster):
    fw, group = cluster
    server = SoapServer(fw.node(group[1].name), 18200)
    state = {}
    server.register(
        "set_progress",
        lambda step=0, residual=0.0: state.update(step=step, residual=residual) or True,
    )
    server.register("get_step", lambda: state.get("step", -1))
    client = SoapClient(fw.node(group[0].name), fw.node(group[1].name).host, 18200)

    def scenario():
        ok = yield from client.call("set_progress", step=7, residual=0.125)
        step = yield from client.call("get_step")
        return ok, step

    ok, step = run(fw, scenario())
    assert ok is True and step == 7
    assert server.requests_served == 2


def test_soap_unknown_operation_returns_fault(cluster):
    fw, group = cluster
    SoapServer(fw.node(group[1].name), 18201)
    client = SoapClient(fw.node(group[0].name), fw.node(group[1].name).host, 18201)

    def scenario():
        try:
            yield from client.call("nothing_here")
        except SoapFault as exc:
            return str(exc)

    assert "nothing_here" in run(fw, scenario())


# --------------------------------------------------------------------------
# HLA
# --------------------------------------------------------------------------


class _Recorder(FederateAmbassador):
    def __init__(self):
        self.reflections = []

    def reflect_attribute_values(self, object_id, object_class, attributes, sender, timestamp):
        self.reflections.append((object_id, object_class, attributes, sender))


def test_hla_publish_subscribe_reflection(cluster4):
    fw, group = cluster4
    RtiGateway(fw.node(group[0].name), port=17100)
    recorder = _Recorder()
    publisher = RtiAmbassador(fw.node(group[1].name), group[0], port=17100)
    subscriber = RtiAmbassador(fw.node(group[2].name), group[0], port=17100,
                               federate_ambassador=recorder)

    def scenario():
        yield from publisher.create_federation_execution("simulation")
        yield from publisher.join_federation_execution("producer", "simulation")
        yield from subscriber.join_federation_execution("consumer", "simulation")
        yield from publisher.publish_object_class("Aircraft")
        yield from subscriber.subscribe_object_class("Aircraft")
        obj = yield from publisher.register_object_instance("Aircraft")
        yield from publisher.update_attribute_values(obj, {"alt": 10_000, "speed": 240.0})
        yield fw.sim.timeout(5e-3)
        return obj, recorder.reflections

    obj, reflections = run(fw, scenario())
    assert len(reflections) == 1
    object_id, object_class, attributes, sender = reflections[0]
    assert object_id == obj and object_class == "Aircraft"
    assert attributes == {"alt": 10_000, "speed": 240.0} and sender == "producer"


def test_hla_join_unknown_federation_fails(cluster):
    fw, group = cluster
    RtiGateway(fw.node(group[0].name), port=17101)
    amb = RtiAmbassador(fw.node(group[1].name), group[0], port=17101)

    def scenario():
        try:
            yield from amb.join_federation_execution("lost", "does-not-exist")
        except Exception as exc:  # RtiError
            return type(exc).__name__

    assert run(fw, scenario()) == "RtiError"


# --------------------------------------------------------------------------
# PVM
# --------------------------------------------------------------------------


def test_pvm_pack_send_receive(cluster):
    fw, group = cluster
    t0 = PvmTask(fw.node(group[0].name), group)
    t1 = PvmTask(fw.node(group[1].name), group)
    assert t0.mytid != t1.mytid
    assert t1.tid_of_rank(0) == t0.mytid

    def scenario():
        t0.initsend()
        t0.pkint([1, 2, 3])
        t0.pkdouble([0.5])
        t0.pkstr("pvm")
        t0.pkbyte(b"\xff\x00")
        t0.send(t1.mytid, tag=4)
        src = yield from t1.recv(tag=4)
        ints = t1.upkint()
        dbl = t1.upkdouble()
        text = t1.upkstr()
        raw = t1.upkbyte()
        return src, ints, dbl, text, raw

    src, ints, dbl, text, raw = run(fw, scenario())
    assert src == t0.mytid
    assert ints.tolist() == [1, 2, 3] and dbl.tolist() == [0.5]
    assert text == "pvm" and raw == b"\xff\x00"


def test_pvm_usage_errors_and_nrecv(cluster):
    fw, group = cluster
    t0 = PvmTask(fw.node(group[0].name), group)
    t1 = PvmTask(fw.node(group[1].name), group)
    with pytest.raises(PvmError):
        t0.pkint([1])  # no initsend
    with pytest.raises(PvmError):
        t1.upkint()  # no active receive buffer
    assert t1.nrecv() is False

    def scenario():
        t0.initsend()
        t0.pkstr("typed")
        t0.send(t1.mytid, tag=1)
        yield fw.sim.timeout(1e-3)
        assert t1.nrecv(tag=1) is True
        with pytest.raises(PvmError):
            t1.upkint()  # type mismatch: packed a string
        return True

    assert run(fw, scenario()) is True


# --------------------------------------------------------------------------
# DSM
# --------------------------------------------------------------------------


def test_dsm_read_write_ownership(cluster):
    fw, group = cluster
    d0 = DsmNode(fw.node(group[0].name), group, pages=8, page_size=256)
    d1 = DsmNode(fw.node(group[1].name), group, pages=8, page_size=256)
    assert d0.home_of(0) == 0 and d0.home_of(1) == 1

    def scenario():
        # rank 0 writes to a page whose home is rank 1: ownership migrates
        yield from d0.write(1, b"written-by-rank0")
        data_local = yield from d0.read(1)
        # rank 1 reads it back across the network
        data_remote = yield from d1.read(1)
        return data_local[:16], data_remote[:16], d0.remote_acquires, d1.remote_reads

    local, remote, acquires, reads = run(fw, scenario())
    assert local == b"written-by-rank0"
    assert remote == b"written-by-rank0"
    assert acquires == 1 and reads == 1
    assert 1 in d0.owned_pages()


def test_dsm_invalidation_on_write_after_read(cluster):
    fw, group = cluster
    d0 = DsmNode(fw.node(group[0].name), group, pages=4, page_size=128)
    d1 = DsmNode(fw.node(group[1].name), group, pages=4, page_size=128)

    def scenario():
        # rank 1 caches page 0 (home: rank 0)
        yield from d1.read(0)
        assert d1.is_cached(0)
        # rank 0 (the home) hands ownership to rank 1? no — rank 0 writes,
        # which must invalidate rank 1's cached copy
        yield from d0.write(0, b"fresh")
        yield fw.sim.timeout(2e-3)
        was_invalidated = not d1.is_cached(0)
        data = yield from d1.read(0)
        return was_invalidated, data[:5]

    was_invalidated, data = run(fw, scenario())
    assert was_invalidated
    assert data == b"fresh"


def test_dsm_bounds_checks(cluster):
    fw, group = cluster
    d0 = DsmNode(fw.node(group[0].name), group, pages=2, page_size=64)
    with pytest.raises(DsmError):
        d0.home_of(99)

    def scenario():
        try:
            yield from d0.write(0, b"x" * 100)
        except DsmError:
            return "too-big"

    assert run(fw, scenario()) == "too-big"
