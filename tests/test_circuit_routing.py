"""Route-aware Circuits: per-hop method pinning and parameter derivation.

Covers the Selector's circuit-hop policy (``pin_circuit_route``), the
restriction of hop methods to drivers served on *both* hop ends, the
fallback when no WAN method is mutually served, monitoring-driven method
parameters (stream fan-out, VRP tolerance), and the relay chain executing
pinned continuations end to end.
"""

import pytest

from repro.abstraction.common import AbstractionError
from repro.abstraction.routing import (
    Route,
    RouteChoice,
    decode_pinned_hops,
    encode_pinned_hops,
)
from repro.abstraction.topology import LinkClass
from repro.core import PadicoFramework
from repro.methods import register_wan_method_drivers
from repro.simnet.networks import Ethernet100, WanVthd


def two_cluster_deployment(*, wan_methods_on_remote_gateway: bool = True):
    """a0 -- lan-a -- ga | wan | gb -- lan-b -- b0 (one gateway per side)."""
    fw = PadicoFramework()
    for name, site in [("a0", "sa"), ("ga", "sa"), ("b0", "sb"), ("gb", "sb")]:
        fw.add_host(name, site=site)
    lan_a = fw.add_network(Ethernet100(fw.sim, "lan-a"))
    lan_b = fw.add_network(Ethernet100(fw.sim, "lan-b"))
    wan = fw.add_network(WanVthd(fw.sim, "wan"))
    for h in ("a0", "ga"):
        lan_a.connect(fw.host(h))
    for h in ("b0", "gb"):
        lan_b.connect(fw.host(h))
    wan.connect(fw.host("ga")), wan.connect(fw.host("gb"))
    fw.boot()
    register_wan_method_drivers(fw.node("ga"))
    if wan_methods_on_remote_gateway:
        register_wan_method_drivers(fw.node("gb"))
    return fw, wan


# ---------------------------------------------------------------------------
# pin_circuit_route: per-hop methods
# ---------------------------------------------------------------------------


def test_pin_circuit_route_pins_a_method_per_hop():
    fw, wan = two_cluster_deployment()
    route = fw.selector.pin_circuit_route(fw.host("a0"), fw.host("b0"))
    assert [h.method for h in route.hops] == ["sysio", "parallel_streams", "sysio"]
    assert [h.dst.name for h in route.hops] == ["ga", "gb", "b0"]
    assert route.hops[1].link_class is LinkClass.WAN
    # the WAN hop got its monitoring-derived fan-out (nominal metrics here)
    assert route.hops[1].params == {"streams": 4}


def test_hop_methods_restricted_to_drivers_on_both_ends():
    """A WAN method only served on one end of the hop cannot be pinned:
    the hop falls back to the method both gateways serve."""
    fw, wan = two_cluster_deployment(wan_methods_on_remote_gateway=False)
    route = fw.selector.pin_circuit_route(fw.host("a0"), fw.host("b0"))
    # ga serves parallel_streams/adoc/vrp, gb serves only the stock drivers:
    # no WAN method is mutually available, so the hop degrades to sysio.
    assert route.hops[1].method == "sysio"


def test_fallback_when_no_wan_method_is_mutually_served_end_to_end():
    """The degraded pick still carries a working circuit."""
    fw, wan = two_cluster_deployment(wan_methods_on_remote_gateway=False)
    group = fw.group(["a0", "b0"], "fallback-group")
    tx = fw.node("a0").circuit("fallback", group)
    rx = fw.node("b0").circuit("fallback", group)
    got = {}
    rx.set_receive_callback(lambda s, inc, r: got.setdefault("data", inc.unpack_express()))
    payload = bytes(range(256)) * 64

    def scenario():
        yield tx.send(1, payload)

    fw.sim.process(scenario())
    fw.sim.run(max_time=20.0)
    assert got.get("data") == payload


def test_pin_circuit_route_requires_remote_destination():
    fw, _ = two_cluster_deployment()
    with pytest.raises(AbstractionError):
        fw.selector.pin_circuit_route(fw.host("a0"), fw.host("a0"))


def test_circuit_hop_preferences_override_the_default_table():
    fw, _ = two_cluster_deployment()
    fw.preferences.prefer_circuit_hop(LinkClass.WAN, "adoc")
    route = fw.selector.pin_circuit_route(fw.host("a0"), fw.host("b0"))
    assert route.hops[1].method == "adoc"


# ---------------------------------------------------------------------------
# monitoring-driven parameters
# ---------------------------------------------------------------------------


def test_stream_fanout_grows_with_measured_loss():
    fw, wan = two_cluster_deployment()
    selector = fw.selector
    before = selector.pin_circuit_route(fw.host("a0"), fw.host("b0"))
    assert before.hops[1].params["streams"] == 4
    # loss below the lossy-WAN threshold: the hop keeps parallel streams
    # but widens the fan-out
    fw.topology.apply_measurement(wan, loss_rate=0.008, detail="probe estimate")
    after = selector.pin_circuit_route(fw.host("a0"), fw.host("b0"))
    assert after.hops[1].method == "parallel_streams"
    assert after.hops[1].params["streams"] == 5  # 4 + round(0.008 * 100)
    # the derivation itself is monotone and clamped
    fw.topology.apply_measurement(wan, loss_rate=0.03, detail="probe estimate")
    assert selector.derive_method_params("parallel_streams", wan) == {"streams": 7}
    fw.topology.apply_measurement(wan, loss_rate=0.30, detail="probe estimate")
    assert selector.derive_method_params("parallel_streams", wan) == {"streams": 8}
    # ...and once the loss crosses the lossy threshold, the *method* flips
    # to VRP pinned at zero tolerance (reliable hop), so the parameter and
    # the choice react together
    worst = selector.pin_circuit_route(fw.host("a0"), fw.host("b0"))
    assert worst.hops[1].method == "vrp"
    assert worst.hops[1].params == {"tolerance": 0.0}


def test_vrp_tolerance_follows_measured_loss_but_not_on_reliable_legs():
    fw, wan = two_cluster_deployment()
    selector = fw.selector
    fw.topology.apply_measurement(wan, loss_rate=0.05, detail="probe estimate")
    assert selector.derive_method_params("vrp", wan) == {"tolerance": 0.075}
    # capped: never surrender more than MAX_VRP_TOLERANCE
    fw.topology.apply_measurement(wan, loss_rate=0.5, detail="probe estimate")
    assert selector.derive_method_params("vrp", wan) == {"tolerance": 0.2}
    # relay / adaptive legs carry somebody else's framed stream: pinned at 0
    assert selector.derive_method_params("vrp", wan, reliable=True) == {"tolerance": 0.0}


def test_vlink_route_choice_carries_derived_params():
    """Plain VLink selection also benefits: a lossy WAN pick tunes VRP."""
    fw = PadicoFramework()
    a, b = fw.add_host("wa", site="s1"), fw.add_host("wb", site="s2")
    wan = fw.add_network(WanVthd(fw.sim, "wan-direct"))
    wan.connect(a), wan.connect(b)
    fw.boot()
    register_wan_method_drivers(fw.node("wa"))
    register_wan_method_drivers(fw.node("wb"))
    fw.topology.apply_measurement(wan, loss_rate=0.04, detail="probe estimate")
    route = fw.selector.choose_vlink_route(
        a, b, fw.node("wa").vlink.driver_names()
    )
    assert route.first.method == "vrp"
    assert route.first.params == {"tolerance": 0.06}


def test_per_connection_method_parameters_reach_the_drivers():
    fw, wan = two_cluster_deployment()
    ga, gb = fw.node("ga"), fw.node("gb")
    ps = ga.vlink.driver("parallel_streams")
    vrp = ga.vlink.driver("vrp")
    listener = gb.vlink_listen(9600)
    accepted = []
    listener.set_accept_callback(lambda link: accepted.append(link))

    def scenario():
        conn_ps = yield ps.connect_with_params(fw.host("gb"), 9600, {"streams": 2})
        conn_vrp = yield vrp.connect_with_params(fw.host("gb"), 9600, {"tolerance": 0.25})
        return conn_ps, conn_vrp

    conn_ps, conn_vrp = fw.sim.run(until=fw.sim.process(scenario()), max_time=10.0)
    fw.sim.run(max_time=1.0)  # let the accept-side hellos drain
    assert conn_ps.total_streams == 2
    assert conn_vrp.tolerance == 0.25
    # the receive side negotiated the same per-connection tolerance
    server_vrp = [link.conn for link in accepted if link.driver_name == "vrp"]
    assert server_vrp and server_vrp[0].tolerance == 0.25


# ---------------------------------------------------------------------------
# routed circuits execute the pinning end to end
# ---------------------------------------------------------------------------


def test_choose_circuit_route_carries_the_pinned_continuation():
    fw, _ = two_cluster_deployment()
    choice = fw.selector.choose_circuit_route(
        fw.host("a0"), fw.host("b0"), ["vlink", "sysio"]
    )
    assert choice.method == "vlink"
    assert choice.link_class is LinkClass.ROUTED
    assert choice.via is not None
    assert [h.method for h in choice.via.hops] == ["sysio", "parallel_streams", "sysio"]


def test_relay_chain_honours_the_pinned_hop_methods():
    fw, _ = two_cluster_deployment()
    group = fw.group(["a0", "b0"], "pinned-group")
    tx = fw.node("a0").circuit("pinned", group)
    rx = fw.node("b0").circuit("pinned", group)
    got = {}
    rx.set_receive_callback(lambda s, inc, r: got.setdefault("data", inc.unpack_express()))
    payload = bytes(range(251)) * 100

    def scenario():
        yield tx.send(1, payload)

    fw.sim.process(scenario())
    fw.sim.run(max_time=20.0)
    assert got.get("data") == payload
    # the gateway's downstream leg rides the pinned WAN method, not a
    # re-selected plain socket
    relay = fw.node("ga").gateway_relay
    assert relay.relayed == 1
    downstream = relay.sessions()[0].downstream
    assert downstream.driver_name == "parallel_streams"


def test_relay_falls_back_when_a_pinned_driver_is_unusable():
    """A pinned continuation naming a driver the gateway does not serve
    degrades to autonomous selection instead of failing the splice."""
    fw, _ = two_cluster_deployment()
    bogus = Route(
        fw.host("a0"),
        fw.host("b0"),
        [
            RouteChoice(
                method="sysio", network=None, link_class=LinkClass.LAN,
                src=fw.host("a0"), dst=fw.host("ga"),
            ),
            RouteChoice(
                method="no-such-driver", network=None, link_class=LinkClass.WAN,
                src=fw.host("ga"), dst=fw.host("gb"),
            ),
            RouteChoice(
                method="sysio", network=None, link_class=LinkClass.LAN,
                src=fw.host("gb"), dst=fw.host("b0"),
            ),
        ],
    )
    listener = fw.node("b0").vlink_listen(9700)
    got = {}
    listener.set_accept_callback(
        lambda link: link.set_data_handler(
            lambda l: got.setdefault("data", l.read_available())
        )
    )

    def scenario():
        client = yield fw.node("a0").vlink.connect(fw.host("b0"), 9700, route=bogus)
        yield client.write(b"pinned-fallback")

    fw.sim.process(scenario())
    fw.sim.run(max_time=20.0)
    assert got.get("data") == b"pinned-fallback"


def test_pinned_hop_wire_codec_roundtrips():
    fw, _ = two_cluster_deployment()
    route = fw.selector.pin_circuit_route(fw.host("a0"), fw.host("b0"))
    blob = encode_pinned_hops(route.hops[1:])
    decoded = decode_pinned_hops(blob)
    assert decoded == [
        ("parallel_streams", "gb", {"streams": 4}),
        ("sysio", "b0", {}),
    ]
    # hops without explicit endpoints cannot be pinned
    assert encode_pinned_hops([RouteChoice("sysio", None, LinkClass.LAN)]) == b""
    with pytest.raises(ValueError):
        decode_pinned_hops(b"garbage-without-at-sign")
