"""Adaptive Circuits: per-leg migration for group endpoints.

A circuit created with ``adaptive=True`` rides every remote leg on an
offset-framed adaptive session whose rail follows the selector's
circuit-hop pinning; when a hop degrades or a gateway dies only the
affected leg migrates, and per-source byte order across the group is
preserved through the cumulative-ack resume handshake.
"""

from repro.core import PadicoFramework
from repro.simnet.networks import Ethernet100, WanVthd


CHUNK = 16 * 1024


def _pattern(i: int, size: int = CHUNK) -> bytes:
    return bytes((j + i) % 251 for j in range(size))


def dual_gateway_deployment():
    """Two clusters, two independent gateway/WAN paths between them.

    a0, a1 share lan-a with gateways ga1/ga2; b0 sits on lan-b with
    gateways gb1/gb2; wan1 joins ga1--gb1, wan2 joins ga2--gb2.  Killing
    wan1 (or ga1) leaves the ga2/wan2 path as the escape route.
    """
    fw = PadicoFramework()
    for name, site in [
        ("a0", "sa"), ("a1", "sa"), ("ga1", "sa"), ("ga2", "sa"),
        ("b0", "sb"), ("gb1", "sb"), ("gb2", "sb"),
    ]:
        fw.add_host(name, site=site)
    lan_a = fw.add_network(Ethernet100(fw.sim, "lan-a"))
    lan_b = fw.add_network(Ethernet100(fw.sim, "lan-b"))
    wan1 = fw.add_network(WanVthd(fw.sim, "wan1"))
    wan2 = fw.add_network(WanVthd(fw.sim, "wan2", seed=9))
    for h in ("a0", "a1", "ga1", "ga2"):
        lan_a.connect(fw.host(h))
    for h in ("b0", "gb1", "gb2"):
        lan_b.connect(fw.host(h))
    wan1.connect(fw.host("ga1")), wan1.connect(fw.host("gb1"))
    wan2.connect(fw.host("ga2")), wan2.connect(fw.host("gb2"))
    fw.boot()
    return fw, wan1, wan2


def make_adaptive_pair(fw, names, circuit_name):
    group = fw.group(names, f"{circuit_name}-group")
    circuits = [fw.node(n).circuit(circuit_name, group, adaptive=True) for n in names]
    return group, circuits


def test_adaptive_circuit_exposes_a_session_and_pinned_rails():
    fw, _, _ = dual_gateway_deployment()
    _, (ca, cb) = make_adaptive_pair(fw, ["a0", "b0"], "smoke")
    got = {}
    cb.set_receive_callback(lambda s, inc, r: got.setdefault("data", inc.unpack_express()))

    def scenario():
        yield ca.send(1, _pattern(0))

    fw.sim.process(scenario())
    fw.sim.run(max_time=10.0)
    assert got.get("data") == _pattern(0)
    assert ca.adaptive is not None
    session = ca.adaptive.describe()
    assert session["legs"] == 1
    assert session["migrations"] == 0
    # the leg's rail follows circuit-hop pinning: relay route with the WAN
    # hop on a pinned WAN method
    route = ca.adaptive.leg_routes()[1]
    assert "parallel_streams" in route or "adoc" in route


def test_adaptive_leg_migrates_when_its_wan_dies_and_order_survives():
    fw, wan1, _ = dual_gateway_deployment()
    _, (ca, cb) = make_adaptive_pair(fw, ["a0", "b0"], "mig")
    received = []
    cb.set_receive_callback(lambda s, inc, r: received.append(inc.unpack_express()))

    total = 40
    injector = fw.fault_injector(seed=7, announce=True)
    injector.fail_link_at(0.08, wan1)

    def scenario():
        last = None
        for i in range(total):
            last = ca.send(1, _pattern(i))
        yield last

    fw.sim.process(scenario())
    fw.sim.run(max_time=30.0)
    assert len(received) == total
    assert all(received[i] == _pattern(i) for i in range(total))
    assert ca.adaptive.migrations() >= 1
    # the leg re-pinned onto the surviving gateway path
    assert "ga2" in ca.adaptive.leg_routes()[1]


def test_only_the_affected_leg_migrates():
    """A member talking to both a local and a remote peer keeps the local
    leg untouched when the remote leg's WAN dies."""
    fw, wan1, _ = dual_gateway_deployment()
    _, (ca, c_local, c_remote) = make_adaptive_pair(fw, ["a0", "a1", "b0"], "leg")
    local_got, remote_got = [], []
    c_local.set_receive_callback(lambda s, inc, r: local_got.append(inc.unpack_express()))
    c_remote.set_receive_callback(lambda s, inc, r: remote_got.append(inc.unpack_express()))

    total = 24
    injector = fw.fault_injector(seed=11, announce=True)
    injector.fail_link_at(0.06, wan1)

    def scenario():
        last = None
        for i in range(total):
            ca.send(1, _pattern(i))
            last = ca.send(2, _pattern(i))
        yield last

    fw.sim.process(scenario())
    fw.sim.run(max_time=30.0)
    assert len(local_got) == total and len(remote_got) == total
    legs = ca.adaptive.legs()
    assert legs[2].migrations >= 1, "the routed leg should have migrated"
    assert legs[1].migrations == 0, "the intra-cluster leg must not migrate"


def test_gateway_death_migrates_the_leg():
    """Killing the gateway host (not just the wire) tears the relay splice
    down; the leg resumes through the other gateway pair."""
    fw, _, _ = dual_gateway_deployment()
    _, (ca, cb) = make_adaptive_pair(fw, ["a0", "b0"], "gwkill")
    received = []
    cb.set_receive_callback(lambda s, inc, r: received.append(inc.unpack_express()))

    total = 40
    injector = fw.fault_injector(seed=13, announce=True)
    injector.kill_host_at(0.08, fw.host("ga1"))

    def scenario():
        last = None
        for i in range(total):
            last = ca.send(1, _pattern(i))
        yield last

    fw.sim.process(scenario())
    fw.sim.run(max_time=30.0)
    assert len(received) == total
    assert all(received[i] == _pattern(i) for i in range(total))
    assert ca.adaptive.migrations() >= 1
    assert "ga2" in ca.adaptive.leg_routes()[1]


def test_adaptive_circuit_is_bidirectional_per_source_ordered():
    """Both directions of the mesh ride adaptive sessions; each member's
    stream stays ordered at every destination across a migration."""
    fw, wan1, _ = dual_gateway_deployment()
    _, (ca, cb) = make_adaptive_pair(fw, ["a0", "b0"], "bidi")
    at_a, at_b = [], []
    ca.set_receive_callback(lambda s, inc, r: at_a.append(inc.unpack_express()))
    cb.set_receive_callback(lambda s, inc, r: at_b.append(inc.unpack_express()))

    total = 24
    injector = fw.fault_injector(seed=17, announce=True)
    injector.fail_link_at(0.06, wan1)

    def scenario():
        last = None
        for i in range(total):
            ca.send(1, _pattern(2 * i))
            last = cb.send(0, _pattern(2 * i + 1))
        yield last

    fw.sim.process(scenario())
    fw.sim.run(max_time=30.0)
    assert [len(p) for p in at_b] == [CHUNK] * total
    assert all(at_b[i] == _pattern(2 * i) for i in range(total))
    assert all(at_a[i] == _pattern(2 * i + 1) for i in range(total))


def test_adaptive_rejects_forced_methods():
    """Forcing a per-rank adapter contradicts migratable sessions; the
    combination must fail loudly, not silently measure the wrong transport."""
    import pytest

    from repro.abstraction.common import AbstractionError

    fw, _, _ = dual_gateway_deployment()
    group = fw.group(["a0", "a1"], "forced-group")
    with pytest.raises(AbstractionError):
        fw.node("a0").circuit("forced", group, adaptive=True, methods={1: "sysio"})


def test_dsm_rides_adaptive_circuits():
    """Middleware entry point: the DSM can opt into adaptive circuits."""
    from repro.middleware.dsm import DsmNode

    fw, _, _ = dual_gateway_deployment()
    group = fw.group(["a0", "b0"], "dsm-group")
    nodes = [DsmNode(fw.node(n), group, pages=4, adaptive=True) for n in ("a0", "b0")]
    assert all(n.circuit.adaptive is not None for n in nodes)

    def scenario():
        yield from nodes[0].write(1, b"adaptive-dsm")
        data = yield from nodes[1].read(1)
        return data

    data = fw.sim.run(until=fw.sim.process(scenario()), max_time=30.0)
    assert data[: len(b"adaptive-dsm")] == b"adaptive-dsm"
