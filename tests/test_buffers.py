"""Unit tests for the zero-copy byte ring."""


from repro.simnet.buffers import ByteRing


def test_empty_ring():
    ring = ByteRing()
    assert len(ring) == 0
    assert not ring
    assert ring.take() == b""
    assert ring.take(10) == b""
    assert ring.peek(10) == b""
    assert ring.skip(10) == 0


def test_zero_length_operations():
    ring = ByteRing(b"abc")
    assert ring.take(0) == b""
    assert ring.peek(0) == b""
    assert ring.skip(0) == 0
    ring.append(b"")  # no-op
    assert len(ring) == 3
    assert ring.take() == b"abc"


def test_take_within_single_chunk():
    ring = ByteRing(b"hello world")
    assert ring.take(5) == b"hello"
    assert len(ring) == 6
    assert ring.take(1) == b" "
    assert ring.take() == b"world"
    assert not ring


def test_exact_chunk_take_is_zero_copy():
    chunk = b"x" * 1024
    ring = ByteRing()
    ring.append(chunk)
    assert ring.take(1024) is chunk  # the original object, no copy


def test_cross_boundary_take():
    ring = ByteRing()
    ring.append(b"abc")
    ring.append(b"defg")
    ring.append(b"hij")
    assert ring.take(5) == b"abcde"
    assert ring.take(5) == b"fghij"
    assert not ring


def test_take_more_than_available():
    ring = ByteRing(b"abc")
    assert ring.take(100) == b"abc"
    assert not ring


def test_peek_does_not_consume():
    ring = ByteRing()
    ring.append(b"abc")
    ring.append(b"def")
    assert ring.peek(2) == b"ab"
    assert ring.peek(4) == b"abcd"  # crosses a chunk boundary
    assert ring.peek(100) == b"abcdef"
    assert len(ring) == 6
    assert ring.take() == b"abcdef"


def test_skip_across_boundaries():
    ring = ByteRing()
    ring.append(b"abc")
    ring.append(b"def")
    ring.append(b"ghi")
    assert ring.skip(4) == 4
    assert ring.take() == b"efghi"
    assert ring.skip(5) == 0


def test_skip_partial_chunk():
    ring = ByteRing(b"abcdef")
    assert ring.skip(2) == 2
    assert ring.peek(2) == b"cd"
    assert ring.skip(100) == 4
    assert not ring


def test_wrap_around_reuse():
    """Interleaved produce/consume cycles: offsets reset as chunks retire."""
    ring = ByteRing()
    out = bytearray()
    fed = bytearray()
    for i in range(50):
        chunk = bytes([i % 251]) * (i % 7 + 1)
        ring.append(chunk)
        fed += chunk
        take = (i * 3) % 5
        out += ring.take(take)
    out += ring.take()
    assert bytes(out) == bytes(fed)
    assert len(ring) == 0
    assert ring._head == 0


def test_writable_buffers_are_snapshotted():
    ring = ByteRing()
    buf = bytearray(b"abc")
    ring.append(buf)
    buf[0] = ord("z")  # later mutation must not leak into the ring
    assert ring.take() == b"abc"


def test_memoryview_appends_are_snapshotted():
    base = bytearray(b"abcdef")
    ring = ByteRing()
    ring.append(memoryview(base)[2:5])
    base[3] = ord("!")
    assert ring.take() == b"cde"


def test_clear():
    ring = ByteRing(b"abc")
    ring.clear()
    assert len(ring) == 0
    assert ring.take() == b""


def test_interleaved_exactness_stress():
    """Byte-for-byte FIFO order over a randomized append/take/skip mix."""
    import random

    rng = random.Random(1234)
    ring = ByteRing()
    model = bytearray()
    for _ in range(2000):
        op = rng.random()
        if op < 0.45:
            chunk = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 9)))
            ring.append(chunk)
            model += chunk
        elif op < 0.8:
            n = rng.randrange(0, 12)
            expect = bytes(model[:n])
            del model[: len(expect)]
            assert ring.take(n) == expect
        elif op < 0.9:
            n = rng.randrange(0, 12)
            assert ring.peek(n) == bytes(model[:n])
        else:
            n = rng.randrange(0, 12)
            skipped = ring.skip(n)
            assert skipped == min(n, len(model))
            del model[:skipped]
        assert len(ring) == len(model)
    assert ring.take() == bytes(model)
