"""Shared helpers used across the test modules."""

from __future__ import annotations


def run(fw, gen, max_time=60.0):
    """Run a generator to completion inside a framework's simulator."""
    return fw.sim.run(until=fw.sim.process(gen), max_time=max_time)
