"""FIG3 — Figure 3: bandwidth vs message size over Myrinet-2000.

Curves: omniORB-3, omniORB-4, Mico-2.3.7, ORBacus-4.0.5, MPICH-1.1.2,
Java sockets — all inside the framework over Myrinet-2000 — plus the
TCP/Ethernet-100 reference curve.

Expected shape (paper): MPI ≈ omniORB ≈ Java sockets plateau around
240 MB/s (96 % of the Myrinet-2000 hardware bandwidth); Mico ≈ 55 MB/s and
ORBacus ≈ 63 MB/s because they copy during marshalling; the Ethernet
reference plateaus around 11 MB/s.
"""

import pytest

from repro.core import paper_cluster
from repro.bench import (
    CorbaTransport,
    JavaSocketTransport,
    MpiTransport,
    VLinkTransport,
    bandwidth_sweep,
)
from repro.bench.report import format_series
from repro.middleware.corba import MICO_2_3_7, OMNIORB_3, OMNIORB_4, ORBACUS_4_0_5
from repro.middleware.mpi import MPICH_1_1_2

#: a compact version of the Figure 3 x-axis (32 B → 1 MB).
SIZES = [32, 1024, 16384, 65536, 262144, 1000000]


def _sweep(make_transport, myrinet=True):
    fw, group = paper_cluster(2, myrinet=myrinet)
    transport = make_transport(fw, group)
    return bandwidth_sweep(transport, SIZES, repeats=1, max_time=600)


CURVES = {
    "omniORB-3.0.2/Myrinet": lambda: _sweep(lambda fw, g: CorbaTransport(fw, g, profile=OMNIORB_3)),
    "omniORB-4.0.0/Myrinet": lambda: _sweep(lambda fw, g: CorbaTransport(fw, g, profile=OMNIORB_4)),
    "Mico-2.3.7/Myrinet": lambda: _sweep(lambda fw, g: CorbaTransport(fw, g, profile=MICO_2_3_7)),
    "ORBacus-4.0.5/Myrinet": lambda: _sweep(
        lambda fw, g: CorbaTransport(fw, g, profile=ORBACUS_4_0_5)
    ),
    "MPICH-1.1.2/Myrinet": lambda: _sweep(lambda fw, g: MpiTransport(fw, g, profile=MPICH_1_1_2)),
    "Java socket/Myrinet": lambda: _sweep(lambda fw, g: JavaSocketTransport(fw, g)),
    "TCP/Ethernet-100 (reference)": lambda: _sweep(
        lambda fw, g: VLinkTransport(fw, g, method="sysio"), myrinet=False
    ),
}

#: paper plateaus in MB/s (read off Figure 3 / the §5 text).
PAPER_PLATEAUS = {
    "omniORB-3.0.2/Myrinet": 238.4,
    "omniORB-4.0.0/Myrinet": 235.8,
    "Mico-2.3.7/Myrinet": 55.0,
    "ORBacus-4.0.5/Myrinet": 63.0,
    "MPICH-1.1.2/Myrinet": 238.7,
    "Java socket/Myrinet": 237.9,
    "TCP/Ethernet-100 (reference)": 11.2,
}


@pytest.mark.parametrize("curve", sorted(CURVES))
def test_fig3_curve(benchmark, curve):
    results = benchmark.pedantic(CURVES[curve], rounds=1, iterations=1, warmup_rounds=0)
    plateau = results[max(results)] / 1e6
    benchmark.extra_info["curve"] = curve
    benchmark.extra_info["plateau_MBps"] = round(plateau, 1)
    benchmark.extra_info["paper_MBps"] = PAPER_PLATEAUS[curve]
    benchmark.extra_info["series_MBps"] = {s: round(v / 1e6, 2) for s, v in results.items()}
    # shape check: within 15 % of the paper's plateau
    assert plateau == pytest.approx(PAPER_PLATEAUS[curve], rel=0.15)
    # bandwidth must grow with message size (the S-curve of Figure 3)
    assert results[32] < results[16384] < results[max(results)]


def test_fig3_relative_ordering(benchmark):
    """The headline shape: zero-copy middleware ≈ wire speed, copying ORBs
    collapse, Ethernet reference far below everything."""

    def measure():
        return {
            name: CURVES[name]()[max(SIZES)] / 1e6
            for name in (
                "MPICH-1.1.2/Myrinet",
                "omniORB-4.0.0/Myrinet",
                "Mico-2.3.7/Myrinet",
                "ORBacus-4.0.5/Myrinet",
                "TCP/Ethernet-100 (reference)",
            )
        }

    plateaus = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["plateaus_MBps"] = {k: round(v, 1) for k, v in plateaus.items()}
    assert plateaus["MPICH-1.1.2/Myrinet"] > 4 * plateaus["Mico-2.3.7/Myrinet"]
    assert plateaus["omniORB-4.0.0/Myrinet"] > 3 * plateaus["ORBacus-4.0.5/Myrinet"]
    assert plateaus["ORBacus-4.0.5/Myrinet"] > plateaus["Mico-2.3.7/Myrinet"]
    assert plateaus["Mico-2.3.7/Myrinet"] > plateaus["TCP/Ethernet-100 (reference)"]


def test_fig3_render_series():
    """Render the full figure as text (what EXPERIMENTS.md embeds)."""
    series = {name.split("/")[0]: fn() for name, fn in list(CURVES.items())[:3]}
    text = format_series("Figure 3 — bandwidth over Myrinet-2000", series)
    assert "msg size" in text and "omniORB-3.0.2" in text
