"""Telemetry overhead: the disabled flight recorder must cost nothing.

The observability acceptance of the telemetry PR, measured on the
engine-scale deployment scenario (``test_engine_scale.run_scenario``):

* **Disabled** (the default state: every ``telemetry`` attribute is
  ``None``) — the instrumented code pays one attribute check per hot-path
  site.  Measured as a paired, interleaved comparison against runs where a
  hub was created and then detached before the measured window (the exact
  same disabled hot path plus the enable/disable bookkeeping): the wall
  ratio is gated at < 2%.  Interleaving A/B/A/B after a warmup round and
  taking per-side minima (the classic noise-robust wall estimator)
  cancels the machine drift that poisons back-to-back pairs.
* **Enabled** (in-memory recording, no JSONL file) — measured against the
  plain run, reported, and recorded under the ``deployment_telemetry``
  kind in ``BENCH_engine.json`` (with ``BENCH_REFRESH=1``), so the
  recording cost is a tracked number instead of folklore.  Enabled-mode
  cost is not hard-gated: it scales with the scenario's event density and
  is a recorded trade-off, not a regression.

``ENGINE_SCALE`` selects the deployment size (default ``small`` — this
file rides the CI smoke job; the gate is meaningful at every size).
"""

from __future__ import annotations

import os
import time

import test_engine_scale as engine_bench

#: disabled-mode acceptance: < 2% wall-time overhead.
DISABLED_OVERHEAD_LIMIT = 1.02
#: paired rounds per side; medians of interleaved runs.
ROUNDS = 3


def _size() -> str:
    forced = os.environ.get("ENGINE_SCALE", "").strip()
    return forced if forced else "small"


def _timed_run(size: str, telemetry: str) -> tuple:
    """One deployment run; returns (wall_s, result-ish dict).

    ``telemetry``: "off" = never enabled; "disabled" = enabled then
    detached before the measured window; "on" = recording in memory.
    """
    fw, grid, completions = engine_bench.build_scenario(size)
    hub = None
    if telemetry in ("disabled", "on"):
        hub = fw.enable_telemetry()
    if telemetry == "disabled":
        fw.disable_telemetry()
    all_done = fw.sim.all_of(completions)
    with engine_bench._gc_paused():
        start = time.perf_counter()
        delivered = fw.sim.run(until=all_done, max_time=engine_bench.MAX_VIRTUAL)
        fw.sim.run(
            until=max(engine_bench.CHURN_HORIZON, fw.sim.now),
            max_time=engine_bench.MAX_VIRTUAL,
        )
        wall_s = time.perf_counter() - start
    if telemetry == "on":
        hub.flush()
    expected = len(completions) * engine_bench.TRANSFER_BYTES
    assert sum(delivered) == expected
    stats = fw.sim.stats()
    return wall_s, {
        "hosts": len(grid.hosts),
        "streams": len(completions),
        "bytes_delivered": sum(delivered),
        "events": stats.events_processed,
        "telemetry_events": len(hub.events) if hub is not None else 0,
    }


def test_disabled_telemetry_overhead_under_two_percent(benchmark, once):
    """A deployment that enabled and detached the recorder must run within
    2% of one that never touched it — the disabled state is one attribute
    check per instrumented site, nothing more."""
    size = _size()

    def measure():
        _timed_run(size, "off")  # warmup: allocator and import costs
        plain, disabled = [], []
        for _ in range(ROUNDS):
            wall, info = _timed_run(size, "off")
            plain.append(wall)
            wall, _info = _timed_run(size, "disabled")
            disabled.append(wall)
        return {
            "plain_wall_s": round(min(plain), 4),
            "disabled_wall_s": round(min(disabled), 4),
            "ratio": round(min(disabled) / min(plain), 4),
            **info,
        }

    result = once(benchmark, measure)
    benchmark.extra_info.update(result)
    ratio = result["ratio"]
    if ratio > DISABLED_OVERHEAD_LIMIT:
        # one retry: a single paired measurement on shared hardware can
        # blow a 2% margin on scheduler noise alone
        result = measure()
        benchmark.extra_info["ratio_first_attempt"] = ratio
        benchmark.extra_info.update(result)
        ratio = result["ratio"]
    assert ratio <= DISABLED_OVERHEAD_LIMIT, (
        f"disabled telemetry costs {100 * (ratio - 1):.1f}% wall time on the "
        f"{size!r} deployment (limit {100 * (DISABLED_OVERHEAD_LIMIT - 1):.0f}%)"
    )


def test_enabled_telemetry_overhead_recorded(benchmark, once):
    """Enabled-mode recording cost: measured, reported, and written to
    BENCH_engine.json under ``deployment_telemetry`` (BENCH_REFRESH=1)."""
    size = _size()

    def measure():
        _timed_run(size, "off")  # warmup
        plain, enabled = [], []
        info = {}
        for _ in range(ROUNDS):
            wall, _i = _timed_run(size, "off")
            plain.append(wall)
            wall, info = _timed_run(size, "on")
            enabled.append(wall)
        plain_med = min(plain)
        on_med = min(enabled)
        return {
            **info,
            "wall_s": round(on_med, 4),
            "plain_wall_s": round(plain_med, 4),
            "events_per_sec": round(info["events"] / on_med, 1),
            "telemetry_overhead_ratio": round(on_med / plain_med, 4),
        }

    result = once(benchmark, measure)
    benchmark.extra_info.update(result)
    assert result["telemetry_events"] > 0
    # enabled recording on this scenario stays a modest constant factor;
    # gate only against runaway pathology, record the precise number
    assert result["telemetry_overhead_ratio"] < 2.0
    engine_bench.check_baselines(
        "deployment_telemetry", size, result, benchmark, remeasure=measure
    )
