"""EXP-CONCURRENT — §3/§4: several middleware systems at the same time.

The paper's second contribution: "the proposed model is able to concurrently
support several communication middleware systems with very few or no
change", with the NetAccess core arbitrating between them (and a tunable
priority).  The benchmark runs MPI and CORBA concurrently over one node
pair, checks both make progress with bounded slowdown, and measures the
no-arbitration ablation where an active-polling middleware starves the
other.
"""


from repro.core import paper_cluster
from repro.middleware.corba import Interface, ORB, OMNIORB_4, Operation, Servant, TC_LONG
from repro.middleware.mpi import MpiRuntime

IFACE = Interface("IDL:Progress:1.0", [Operation("poke", params=(("x", TC_LONG),), result=TC_LONG)])


class Progress(Servant):
    def poke(self, x):
        return x + 1


def _setup(competitive=False, corba_on_sysio=True):
    fw, group = paper_cluster(2)
    comms = [MpiRuntime(fw.node(h.name), group).comm_world for h in group]
    forced = "sysio" if corba_on_sysio else None
    server = ORB(fw.node(group[1].name), OMNIORB_4, forced_method=forced)
    client = ORB(fw.node(group[0].name), OMNIORB_4, forced_method=forced)
    proxy = client.object_to_proxy(server.activate_object(Progress(), IFACE), IFACE)
    if competitive:
        for h in group:
            fw.node(h.name).netaccess.set_competitive_baseline("madio")
    return fw, group, comms, proxy


def _mpi_pingpong_time(fw, comms, rounds=20, tag_base=100):
    def gen():
        t0 = fw.sim.now
        for i in range(rounds):
            comms[0].isend(b"x" * 4096, 1, tag=tag_base + i)
            data = yield comms[1].irecv(0, tag_base + i).wait()
            comms[1].isend(data, 0, tag=tag_base + 1000 + i)
            yield comms[0].irecv(1, tag_base + 1000 + i).wait()
        return fw.sim.now - t0

    return fw.sim.process(gen())


def _corba_calls_time(fw, proxy, rounds=20):
    def gen():
        yield from proxy.invoke("poke", 0)  # connection warm-up
        t0 = fw.sim.now
        for i in range(rounds):
            result = yield from proxy.invoke("poke", i)
            assert result == i + 1
        return fw.sim.now - t0

    return fw.sim.process(gen())


def test_mpi_and_corba_share_the_node_fairly(benchmark):
    def measure():
        # baselines: each middleware alone
        fw, group, comms, proxy = _setup()
        mpi_alone = fw.sim.run(until=_mpi_pingpong_time(fw, comms), max_time=60)
        fw, group, comms, proxy = _setup()
        corba_alone = fw.sim.run(until=_corba_calls_time(fw, proxy), max_time=60)
        # concurrent run
        fw, group, comms, proxy = _setup()
        p_mpi = _mpi_pingpong_time(fw, comms)
        p_corba = _corba_calls_time(fw, proxy)
        fw.sim.run(until=fw.sim.all_of([p_mpi, p_corba]), max_time=60)
        report = fw.node(group[1].name).netaccess.fairness_report()
        return {
            "mpi_alone_ms": mpi_alone * 1e3,
            "corba_alone_ms": corba_alone * 1e3,
            "mpi_concurrent_ms": p_mpi.value * 1e3,
            "corba_concurrent_ms": p_corba.value * 1e3,
            "madio_dispatches": report["madio"]["dispatches"],
            "sysio_dispatches": report["sysio"]["dispatches"],
        }

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({k: round(v, 3) for k, v in r.items()})
    # both middleware made progress through the same arbitration core
    assert r["madio_dispatches"] > 0 and r["sysio_dispatches"] > 0
    # bounded interference: each runs within 2x of its isolated time
    assert r["mpi_concurrent_ms"] < 2.0 * r["mpi_alone_ms"]
    assert r["corba_concurrent_ms"] < 2.0 * r["corba_alone_ms"]


def test_no_arbitration_ablation_starves_the_distributed_middleware(benchmark):
    def measure():
        fw, group, comms, proxy = _setup(competitive=False)
        cooperative = fw.sim.run(until=_corba_calls_time(fw, proxy, rounds=5), max_time=60)
        fw, group, comms, proxy = _setup(competitive=True)
        starved = fw.sim.run(until=_corba_calls_time(fw, proxy, rounds=5), max_time=60)
        return {"cooperative_ms": cooperative * 1e3, "starved_ms": starved * 1e3}

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({k: round(v, 3) for k, v in r.items()})
    benchmark.extra_info["paper_claim"] = (
        "without arbitration, an active-polling middleware holds ~100% of the CPU; "
        "inequity or even deadlock (§4.1)"
    )
    assert r["starved_ms"] > 3.0 * r["cooperative_ms"]


def test_priority_knob_shifts_arbitration_cost(benchmark):
    """§4.1: 'The interleaving policy between SysIO and MadIO is dynamically
    user-tunable ... to give more priority to system sockets or high
    performance network depending on the application.'"""

    def measure():
        fw, group, comms, proxy = _setup()
        core = fw.node(group[1].name).netaccess
        default_cost = core.dispatch_cost("sysio")
        core.set_priority("sysio", 8.0)
        favoured = core.dispatch_cost("sysio")
        penalised_madio = core.dispatch_cost("madio")
        return {
            "default_sysio_us": default_cost * 1e6,
            "favoured_sysio_us": favoured * 1e6,
            "penalised_madio_us": penalised_madio * 1e6,
        }

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({k: round(v, 4) for k, v in r.items()})
    assert r["favoured_sysio_us"] < r["default_sysio_us"]
    assert r["penalised_madio_us"] > r["favoured_sysio_us"]
