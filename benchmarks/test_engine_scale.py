"""EXP-SCALE — event-kernel & data-path throughput at grid scale.

Two scenarios over the same ``rows x cols`` grid of Ethernet clusters
(:func:`repro.simnet.networks.grid_deployment`):

**Full-stack deployment scenario** (``run_scenario``) — boots every host
and drives the load the deployments of PR 1–2 combine: chunked TCP/SysIO
streams between cluster neighbours, cross-cluster streams through two
gateway relays, an active probe per WAN link, and seeded degrade/recover
churn.  Wall time here is dominated by the protocol *models* (TCP window
model, monitoring estimators), so this scenario tracks the end-to-end
trajectory rather than the kernel in isolation.

**Kernel workload scenario** (``run_kernel_scenario``) — the same grid, but
driving exactly the layers the event-kernel overhaul rebuilt, with the
protocol models out of the way:

* *failure detectors*: every host heartbeats its cluster neighbour; each
  beat arms a cancellable guard timeout that delivery cancels — the
  dense-timer + cancellation workload (on the pre-PR kernel every guard
  stayed in the heap and fired as a dead no-op);
* *churn*: Poisson-thinning flap schedules on every WAN link
  (:func:`repro.monitoring.churn.poisson_thinning_times`);
* *relayed byte streams*: per WAN link, a burst producer feeds a chain of
  store-and-forward ``StreamBuffer`` hops (the gateway-relay motif) with a
  framed consumer draining 4 KB exact reads at the end — the pattern that
  is quadratic per burst on the seed ``bytearray`` buffers and linear on
  :class:`~repro.simnet.buffers.ByteRing`.

Its throughput metric is *logical* events/sec (beats, guard verdicts,
bursts, hop forwards, framed reads — identical counts on every kernel by
construction), so kernels compare purely on wall time.

Measured quantities are *wall-clock*: events/sec, total wall time, and the
peak pending-entry count (heap/wheel size).  Baselines live in
``BENCH_engine.json`` at the repository root:

* ``seed`` entries were recorded with this same harness on the pre-PR
  kernel (monolithic ``heapq`` + copying byte path), for trajectory
  context;
* ``current`` entries are the committed performance trajectory — the CI
  smoke job fails on a >25% regression against them.

The >= 3x speedup acceptance does not rely on recorded wall-clock numbers:
:func:`test_kernel_speedup_vs_seed_stack` re-measures the wheel stack and
the legacy stack (:class:`ReferenceSimulator` + the seed-era copying
buffers, no cancellation) in fresh interpreters on the same machine.

Wall-clock numbers are machine-dependent, so every entry also records a
``calibration_ops`` figure (a fixed pure-Python heapq workload measured on
the recording machine); comparisons scale the stored baseline by the ratio
of the calibration measured now to the calibration stored then.

Refreshing baselines: ``BENCH_REFRESH=1 PYTHONPATH=src python -m pytest
benchmarks/test_engine_scale.py -q`` rewrites the ``current`` entries (and
the calibration) for the sizes it runs; ``ENGINE_SCALE=<size>`` restricts
the run to one size (the CI smoke job uses ``ENGINE_SCALE=small``).
"""

from __future__ import annotations

import gc
import heapq
import itertools
import json
import os
import random
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core import PadicoFramework
from repro.monitoring.churn import poisson_thinning_times
from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.networks import grid_deployment
from repro.abstraction.drivers import StreamBuffer

try:  # the wheel kernel ships a reference heap scheduler; absent pre-PR
    from repro.simnet.engine import ReferenceSimulator
except ImportError:  # pragma: no cover - seed-kernel baseline recording
    ReferenceSimulator = None

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: deployment sizes: rows x cols clusters of hosts_per_cluster hosts.
SIZES = {
    "small": dict(rows=2, cols=2, hosts_per_cluster=8),  # 32 hosts (CI smoke)
    "medium": dict(rows=5, cols=5, hosts_per_cluster=8),  # 200 hosts
    "large": dict(rows=5, cols=10, hosts_per_cluster=20),  # 1000 hosts
    # nightly-only (ENGINE_SCALE=huge): 250 clusters x 40 hosts
    "huge": dict(rows=10, cols=25, hosts_per_cluster=40),  # 10000 hosts
}

TRANSFER_BYTES = 512 * 1024
#: writer granularity (one VLink write per chunk).
CHUNK = 32 * 1024
#: reader granularity: framed consumption in small exact reads, the pattern
#: middleware personalities produce (and the one that is quadratic on a
#: copying receive buffer once TCP bursts outpace the consumer).
READ_PIECE = 8 * 1024
PROBE_INTERVAL = 0.002
PROBE_SEED = 0x5CA1E
CHURN_SEED = 0xC4A05
CHURN_HORIZON = 0.35
MAX_VIRTUAL = 120.0

#: acceptance: events/sec vs. the recorded pre-PR (seed) kernel.
SPEEDUP_TARGET = 3.0
#: CI regression gate vs. the committed `current` baseline.
REGRESSION_FLOOR = 0.75


def selected_sizes():
    forced = os.environ.get("ENGINE_SCALE", "").strip()
    if forced:
        if forced not in SIZES:
            raise ValueError(f"ENGINE_SCALE={forced!r}; known sizes: {sorted(SIZES)}")
        return [forced]
    return ["medium", "large"]


def selected_executor():
    """``ENGINE_EXECUTOR`` selects the partitioned benchmarks' executor
    (unset / ``round-robin``, ``thread``, or ``process``); returns
    ``(executor_arg, kind_suffix)``.  Each executor gates against its own
    recorded baseline kind (``kernel_partitioned``, ``kernel_process``, …)
    — the process executor pays wire-serialization costs the in-process
    executors do not, so their trajectories are tracked separately."""
    ex = os.environ.get("ENGINE_EXECUTOR", "").strip()
    if not ex or ex == "round-robin":
        return None, "partitioned"
    if ex not in ("thread", "process"):
        raise ValueError(
            f"ENGINE_EXECUTOR={ex!r}; known executors: round-robin, thread, process"
        )
    return ex, ex


# ---------------------------------------------------------------------------
# machine calibration
# ---------------------------------------------------------------------------


@contextmanager
def _gc_paused():
    """Collector paused during the measured window (uniform across kernels;
    the allocation-heavy runs otherwise measure GC pauses, not the kernel)."""
    enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()


def calibration_ops(n: int = 120_000) -> float:
    """Fixed pure-Python heapq workload, in ops/sec, used to scale recorded
    wall-clock baselines onto the machine running the comparison."""
    best = 0.0
    for _ in range(3):
        heap = []
        counter = itertools.count()
        start = time.perf_counter()
        for i in range(n):
            heapq.heappush(heap, ((i * 2654435761 % n) * 1e-6, next(counter), None))
        while heap:
            heapq.heappop(heap)
        elapsed = time.perf_counter() - start
        best = max(best, (2 * n) / elapsed)
    return best


# ---------------------------------------------------------------------------
# scenario
# ---------------------------------------------------------------------------


def _stream(fw, src, dst, port, total, chunk=CHUNK):
    """One chunked byte stream src -> dst; returns the completion event."""
    listener = fw.node(dst.name).vlink_listen(port)
    done = fw.sim.event(name=f"xfer-{src.name}->{dst.name}")

    def on_accept(link):
        state = {"got": 0}

        def reader():
            while state["got"] < total:
                data = yield link.read(min(READ_PIECE, total - state["got"]))
                state["got"] += len(data)
            done.succeed(state["got"])

        fw.sim.process(reader(), name=f"rx-{dst.name}:{port}")

    listener.set_accept_callback(on_accept)
    payload = bytes(chunk)

    def writer():
        link = yield fw.node(src.name).vlink_connect(fw.node(dst.name), port)
        sent = 0
        while sent < total:
            n = min(chunk, total - sent)
            yield link.write(payload[:n])
            sent += n

    # the writer executes in the source host's partition (readers spawn in
    # the accept callback, which already runs in the destination partition)
    with fw.sim.in_partition(src.partition):
        fw.sim.process(writer(), name=f"tx-{src.name}:{port}")
    return done


def build_scenario(size: str, partitions=None, executor=None):
    cfg = SIZES[size]
    # ENGINE_FIDELITY=hybrid runs the same deployment with the fluid fast
    # path armed (the nightly job exercises this; byte totals must match).
    fidelity = os.environ.get("ENGINE_FIDELITY", "packet")
    fw = PadicoFramework(partitions=partitions, executor=executor, fidelity=fidelity)
    grid = grid_deployment(fw, **cfg)
    fw.boot()

    for index, wan in enumerate(grid.wans):
        # coalesce=8 batches runs of identical probe samples into closed-form
        # estimator updates — the 2 ms probe cadence makes per-sample
        # evaluation a measurable slice of the deployment's wall time
        fw.monitoring.watch(
            wan, interval=PROBE_INTERVAL, seed=PROBE_SEED + index, coalesce=8
        )

    injector = fw.fault_injector(seed=CHURN_SEED, announce=True)
    rng = random.Random(CHURN_SEED)
    for wan in grid.wans:
        t = 0.02 + rng.random() * 0.05
        while t < CHURN_HORIZON:
            injector.degrade_link_at(t, wan, loss_rate=0.004, bandwidth=9.0e6)
            injector.recover_link_at(t + 0.03, wan)
            t += 0.07 + rng.random() * 0.08

    completions = []
    port = itertools.count(7000)
    # intra-cluster neighbour streams (every non-gateway host participates)
    for hosts in grid.clusters:
        for i in range(1, len(hosts) - 1):
            completions.append(_stream(fw, hosts[i], hosts[i + 1], next(port), TRANSFER_BYTES))
    # cross-cluster streams, relayed through both gateways of the WAN hop
    cols = cfg["cols"]
    clusters = grid.clusters
    for k, hosts in enumerate(clusters):
        if (k + 1) % cols == 0:
            continue  # no right neighbour
        neighbour = clusters[k + 1]
        completions.append(_stream(fw, hosts[-1], neighbour[1], next(port), TRANSFER_BYTES))

    return fw, grid, completions


def _instrument(sim):
    """Event counting for kernels without ``Simulator.stats()`` (the pre-PR
    seed kernel): shadow ``step`` with a counting wrapper.  This is how the
    ``seed`` entries of BENCH_engine.json were recorded."""
    if hasattr(sim, "stats"):
        return None
    counter = {"events": 0, "peak": 0}
    orig = sim.step

    def step():
        ran = orig()
        if ran:
            counter["events"] += 1
            depth = sim.pending_count()
            if depth > counter["peak"]:
                counter["peak"] = depth
        return ran

    sim.step = step
    return counter


def run_scenario(size: str, partitions=None, executor=None) -> dict:
    build_start = time.perf_counter()
    fw, grid, completions = build_scenario(size, partitions=partitions, executor=executor)
    build_s = time.perf_counter() - build_start

    legacy_counter = _instrument(fw.sim)
    all_done = fw.sim.all_of(completions)
    with _gc_paused():
        start = time.perf_counter()
        delivered = fw.sim.run(until=all_done, max_time=MAX_VIRTUAL)
        # keep going through the full churn/probe horizon so the dense-timer
        # workload is part of the measured window even when transfers finish
        # early.
        fw.sim.run(until=max(CHURN_HORIZON, fw.sim.now), max_time=MAX_VIRTUAL)
        wall_s = time.perf_counter() - start

    if legacy_counter is not None:
        events = legacy_counter["events"]
        peak_pending = legacy_counter["peak"]
        cancellations = 0
    else:
        stats = fw.sim.stats()
        events = stats.events_processed
        peak_pending = stats.peak_pending
        cancellations = stats.cancellations
    expected = len(completions) * TRANSFER_BYTES
    got = sum(delivered)
    result = {
        "hosts": len(grid.hosts),
        "streams": len(completions),
        "bytes_delivered": got,
        "bytes_expected": expected,
        "virtual_s": round(fw.sim.now, 6),
        "build_s": round(build_s, 3),
        "wall_s": round(wall_s, 3),
        "events": events,
        "events_per_sec": round(events / wall_s, 1),
        "peak_pending": peak_pending,
        "cancellations": cancellations,
    }
    if fw.sim.partition_count > 1:
        result["partitions"] = fw.sim.partition_count
        result["windows"] = fw.sim.windows_run
        result["mailbox_deliveries"] = fw.sim.mailbox_deliveries
    fw.shutdown()  # release the process executor's worker pool (no-op otherwise)
    return result


# ---------------------------------------------------------------------------
# fluid-model deployment scenario (bulk staging transfers)
# ---------------------------------------------------------------------------

MIB = 1024 * 1024
#: per-stream staging volume: one send, epoch-sized so the fluid tier can
#: collapse hundreds of congestion-window rounds per flow.
FLUID_TRANSFER_BYTES = {"small": 16 * MIB, "medium": 32 * MIB, "large": 64 * MIB, "huge": 64 * MIB}
#: staging-phase monitoring cadence (the 2 ms operational cadence of the
#: chunked scenario would dominate the collapsed event stream).
FLUID_PROBE_INTERVAL = 0.05
#: acceptance at the 1000-host tier: packet-equivalent events retired per
#: second of hybrid wall clock vs the recorded packet deployment baseline.
FLUID_SPEEDUP_TARGET = 10.0


def _bulk_stream(fw, src, dst, port, total, payload, conns, finish_times, index):
    """One bulk TCP stream src -> dst: a single send of ``payload``,
    drained through the zero-copy iov read path.  Returns the completion
    event (succeeds, at the final byte's ready time, with the byte count)."""
    listener = fw.node(dst.name).tcp.listen(port)
    done = fw.sim.event(name=f"bulk-{src.name}->{dst.name}")

    def on_accept(conn):
        state = {"got": 0}

        def on_data(c):
            for chunk in c.read_iov():
                state["got"] += len(chunk)
            if state["got"] >= total and not done.triggered:
                finish_times[index] = fw.sim.now
                done.succeed(state["got"])

        conn.set_data_callback(on_data)

    listener.set_accept_callback(on_accept)

    def client():
        conn = yield fw.node(src.name).tcp.connect(dst, port)
        conns.append(conn)
        yield conn.send(payload)

    fw.sim.process(client(), name=f"bulk-tx-{src.name}:{port}")
    return done


def build_fluid_scenario(size: str, fidelity: str):
    """The staging workload: every non-gateway host bulk-transfers to its
    cluster neighbour while WAN monitoring runs at staging cadence.  No
    seeded churn: the streams ride cluster LANs (churn hits WANs only, so
    it would not perturb them — fidelity fallback under churn is covered
    by the fluid boundary tests, not this throughput benchmark)."""
    cfg = SIZES[size]
    fw = PadicoFramework(fidelity=fidelity)
    grid = grid_deployment(fw, **cfg)
    fw.boot()

    for index, wan in enumerate(grid.wans):
        fw.monitoring.watch(
            wan, interval=FLUID_PROBE_INTERVAL, seed=PROBE_SEED + index, coalesce=8
        )

    total = FLUID_TRANSFER_BYTES[size]
    payload = bytes(total)  # shared by every stream: sends queue views of it
    completions = []
    conns = []
    finish_times = []
    port = itertools.count(7000)
    for hosts in grid.clusters:
        for i in range(1, len(hosts) - 1):
            finish_times.append(None)
            completions.append(
                _bulk_stream(
                    fw, hosts[i], hosts[i + 1], next(port), total, payload,
                    conns, finish_times, len(finish_times) - 1,
                )
            )
    return fw, grid, completions, conns, finish_times


def run_fluid_scenario(size: str, fidelity: str):
    """One fidelity leg; returns (result, per-stream completion times)."""
    build_start = time.perf_counter()
    fw, grid, completions, conns, finish_times = build_fluid_scenario(size, fidelity)
    build_s = time.perf_counter() - build_start

    all_done = fw.sim.all_of(completions)
    with _gc_paused():
        start = time.perf_counter()
        delivered = fw.sim.run(until=all_done, max_time=MAX_VIRTUAL)
        wall_s = time.perf_counter() - start

    stats = fw.sim.stats()
    expected = len(completions) * FLUID_TRANSFER_BYTES[size]
    fluid = [c._fluid for c in conns if getattr(c, "_fluid", None) is not None]
    result = {
        "hosts": len(grid.hosts),
        "streams": len(completions),
        "bytes_delivered": sum(delivered),
        "bytes_expected": expected,
        "virtual_s": round(fw.sim.now, 6),
        "build_s": round(build_s, 3),
        "wall_s": round(wall_s, 3),
        "events": stats.events_processed,
        "events_per_sec": round(stats.events_processed / wall_s, 1),
        "peak_pending": stats.peak_pending,
        "fluid_rounds": sum(f.fluid_rounds for f in fluid),
        "epochs": sum(f.epochs for f in fluid),
    }
    return result, finish_times


def run_fluid_pair(size: str) -> dict:
    """Both fidelity legs of the staging workload, packet first (it also
    warms the allocator), then hybrid.  The reported ``events_per_sec`` is
    the gated figure: the packet run's (logical) event count retired per
    second of the *hybrid* run's wall clock."""
    packet, t_packet = run_fluid_scenario(size, "packet")
    hybrid, t_hybrid = run_fluid_scenario(size, "hybrid")
    result = dict(hybrid)
    result["packet_events"] = packet["events"]
    result["hybrid_events"] = hybrid["events"]
    result["packet_wall_s"] = packet["wall_s"]
    result["events"] = packet["events"]
    result["events_per_sec"] = round(packet["events"] / hybrid["wall_s"], 1)
    result["bytes_match_packet"] = hybrid["bytes_delivered"] == packet["bytes_delivered"]
    result["completion_times_equal"] = t_hybrid == t_packet
    return result


# ---------------------------------------------------------------------------
# kernel workload scenario
# ---------------------------------------------------------------------------

HB_INTERVAL = 0.01
HB_GUARD = 0.06
HB_LOSS = 0.005
#: cross-cluster gateway heartbeats riding the WAN latency: the workload's
#: boundary-mailbox traffic in partitioned mode (plain timers otherwise).
WAN_BEAT_INTERVAL = 0.017
#: one full TCP receive window accumulated at a relay, the deep-buffer case
#: of the seed stack (`TcpModel.receive_window` is 256 KB).
BURST = 256 * 1024
BURST_INTERVAL = 0.02  # ~12.8 MB/s per WAN stream, the VTHD access rate
#: buffer stages per relayed direction: client TCP -> gateway splice ->
#: gateway splice -> server TCP, the two-gateway route of the grid.
RELAY_HOPS = 4
FORWARD_DELAY = 2e-6
#: framed consumption granularity (middleware personalities read small
#: header/body records: GIOP headers, MPI envelopes, adaptive frames).
KERNEL_PIECE = 2 * 1024
KERNEL_HORIZON = {"small": 0.4, "medium": 0.8, "large": 1.0, "huge": 0.6}
FLAP_RATE = 2.0
FLAP_DOWN = 0.03
KERNEL_SEED = 0xBEEF


class _LegacyStreamBuffer:
    """The seed (pre-PR) receive buffer, verbatim: a ``bytearray`` consumed
    with ``bytes(buf[:take]); del buf[:take]`` and list-based pending reads.
    Paired with :class:`ReferenceSimulator` it reproduces the pre-PR kernel
    configuration in-process, so the speedup assertion compares both stacks
    on the same machine at the same moment (recorded wall-clock baselines
    alone are too noisy on shared hardware)."""

    def __init__(self, sim):
        self.sim = sim
        self._buffer = bytearray()
        self._pending = []
        self._data_callback = None
        self._close_callback = None
        self.closed = False

    def append(self, data):
        self._buffer += data
        self._satisfy()
        if self._data_callback is not None and self._buffer:
            self._data_callback()

    def available(self):
        return len(self._buffer)

    def read_available(self, limit=None):
        take = len(self._buffer) if limit is None else min(limit, len(self._buffer))
        chunk = bytes(self._buffer[:take])
        del self._buffer[:take]
        return chunk

    def recv_exact(self, nbytes):
        ev = self.sim.event(name=f"stream-read({nbytes})")
        self._pending.append((nbytes, True, ev))
        self._satisfy()
        return ev

    def set_data_callback(self, fn):
        self._data_callback = fn
        if fn is not None and self._buffer:
            fn()

    def _satisfy(self):
        while self._pending and self._buffer:
            nbytes, exact, ev = self._pending[0]
            if exact and nbytes is not None and len(self._buffer) < nbytes:
                return
            self._pending.pop(0)
            take = len(self._buffer) if nbytes is None else min(nbytes, len(self._buffer))
            chunk = bytes(self._buffer[:take])
            del self._buffer[:take]
            if not ev.triggered:
                ev.succeed(chunk)


class _GridStub:
    """The minimal framework surface :func:`grid_deployment` needs (hosts
    and networks only — the kernel workload drives engine-level primitives,
    not booted protocol stacks)."""

    def __init__(self, sim):
        self.sim = sim
        self.hosts = []
        self.networks = []

    def add_host(self, name, site="default-site"):
        host = Host(self.sim, name)
        host.site = site
        self.hosts.append(host)
        return host

    def add_network(self, network):
        self.networks.append(network)
        return network


def run_kernel_scenario(
    size: str,
    sim_cls=None,
    buffer_cls=None,
    cancellable=True,
    partitions=None,
    executor=None,
) -> dict:
    """Heartbeat failure detectors + churn flaps + cross-cluster WAN beats +
    relayed framed streams over the grid, on a bare simulator (``sim_cls``
    defaults to the shipped :class:`Simulator`; pass ``ReferenceSimulator``
    for the heap kernel).  ``buffer_cls``/``cancellable`` select the
    byte-path and guard-timer idioms (see :func:`run_kernel_scenario_legacy`).

    ``partitions``/``executor`` run the identical workload on the
    partitioned kernel: clusters map to partitions, every schedule lands in
    its owner's queue, the WAN gateway beats cross partitions through the
    boundary mailboxes, and all counters are per-partition cells (no shard
    ever writes another shard's cell, so the thread executor stays exact).
    The logical trace — the summed counters — is identical by construction
    on every kernel, which is what the trace-equality tests pin down.
    """
    cfg = SIZES[size]
    horizon = KERNEL_HORIZON[size]
    if partitions is not None and partitions > 1:
        sim = Simulator(partitions=partitions, executor=executor)
    else:
        sim = (sim_cls or Simulator)()
    nparts = sim.partition_count
    buffer_cls = buffer_cls or StreamBuffer
    grid = grid_deployment(_GridStub(sim), **cfg)
    rng = random.Random(KERNEL_SEED)
    # hot counters as per-partition list cells: dict hashing is measurable
    # at ~1M reads, and one cell per partition keeps writes shard-local
    beats = [0] * nparts
    delivered = [0] * nparts
    suspicions = [0] * nparts
    flaps = [0] * nparts
    bursts = [0] * nparts
    forwards = [0] * nparts
    reads = [0] * nparts
    wan_beats = [0] * nparts

    # -- failure detectors: host -> cluster successor ----------------------
    inflight = {}
    key_counter = itertools.count()

    def deliver(key, part):
        delivered[part] += 1
        guard = inflight.pop(key, None)
        # pre-PR kernels had no cancellation (call_later returned None):
        # the dead guard stayed queued and fired as a no-op
        if cancellable and guard is not None and hasattr(guard, "cancel"):
            guard.cancel()

    def guard_fired(key, part):
        if key in inflight:  # beat lost: a real suspicion
            del inflight[key]
            suspicions[part] += 1

    def make_beat(lan, host_rng, part):
        latency = lan.latency + lan.serialization_time(64)

        def beat():
            beats[part] += 1
            key = next(key_counter)
            if host_rng.random() >= HB_LOSS:
                sim.call_later(latency, deliver, key, part)
            inflight[key] = sim.call_later(HB_GUARD, guard_fired, key, part)

        return beat

    for lan, hosts in zip(grid.lans, grid.clusters):
        part = lan.owning_partition()
        with sim.in_partition(part):
            for host in hosts:
                host_rng = random.Random(rng.randrange(1 << 30))
                phase = host_rng.random() * HB_INTERVAL
                sim.call_later(phase, sim.every, HB_INTERVAL, make_beat(lan, host_rng, part))

    # -- churn: Poisson-thinning flap schedules on the WAN links -----------
    def set_up(net, up, part):
        net.up = up
        flaps[part] += 1

    for wan in grid.wans:
        part = wan.owning_partition()
        last_up = 0.0
        with sim.in_partition(part):
            for at in poisson_thinning_times(rng, lambda _t: FLAP_RATE, horizon, FLAP_RATE):
                if at < last_up:
                    continue
                sim.call_later(at, set_up, wan, False, part)
                sim.call_later(at + FLAP_DOWN, set_up, wan, True, part)
                last_up = at + FLAP_DOWN

    # -- relayed framed byte streams over every WAN ------------------------
    payload = bytes(BURST)

    def make_pipeline(wan, part):
        stages = [buffer_cls(sim) for _ in range(RELAY_HOPS)]

        def splice(src, dst):
            def _pump():
                data = src.read_available()
                if data:
                    forwards[part] += 1
                    sim.call_later(FORWARD_DELAY, dst.append, data)

            src.set_data_callback(_pump)

        for src, dst in zip(stages, stages[1:]):
            splice(src, dst)

        tail = stages[-1]

        def _drain(_ev):
            reads[part] += 1
            tail.recv_exact(KERNEL_PIECE).add_callback(_drain)

        tail.recv_exact(KERNEL_PIECE).add_callback(_drain)

        def produce():
            if wan.up:
                bursts[part] += 1
                stages[0].append(payload)

        phase = rng.random() * BURST_INTERVAL
        sim.call_later(phase, sim.every, BURST_INTERVAL, produce)

    for wan in grid.wans:
        # relays splice both directions; run one pipeline per direction,
        # both in the partition that owns the link (`produce` reads the
        # `up` flag the flap schedule flips there)
        part = wan.owning_partition()
        with sim.in_partition(part):
            make_pipeline(wan, part)
            make_pipeline(wan, part)

    # -- cross-cluster gateway beats over every WAN ------------------------
    # Each gateway pings its WAN neighbour; the delivery executes in the
    # *neighbour's* partition after the wire latency — on the partitioned
    # kernel this is exactly the boundary-mailbox path (latency ==
    # lookahead), on the single loop a plain timer at the same timestamp.
    def wan_deliver(part):
        wan_beats[part] += 1

    # the only scenario-level callback that crosses partitions: name it so
    # the process executor's wire codec can ship ("h", name, args) instead
    # of pickling the closure (a no-op on every other kernel)
    if hasattr(sim, "register_wire_handler"):
        sim.register_wire_handler("kernel.wan-deliver", wan_deliver)

    def make_wan_beat(wan, dst_part):
        def beat():
            sim.call_at_partition(dst_part, sim.now + wan.latency, wan_deliver, dst_part)

        return beat

    for wan, (gw_a, gw_b) in zip(grid.wans, grid.wan_pairs):
        for src_gw, dst_gw in ((gw_a, gw_b), (gw_b, gw_a)):
            phase = rng.random() * WAN_BEAT_INTERVAL
            with sim.in_partition(src_gw.partition):
                sim.call_later(
                    phase, sim.every, WAN_BEAT_INTERVAL, make_wan_beat(wan, dst_gw.partition)
                )

    # -- run, sampling queue depth uniformly on every kernel ---------------
    peak = {"pending": 0}

    def _sample():
        depth = sim.pending_count()
        if depth > peak["pending"]:
            peak["pending"] = depth

    sim.every(0.002, _sample)

    # under the process executor the counter cells live in the worker
    # replicas (each worker writes only its own partition's cell); read
    # them back through a collector evaluated inside each worker
    is_process = getattr(getattr(sim, "_executor", None), "is_process", False)
    if hasattr(sim, "register_collector"):
        cells = (beats, delivered, suspicions, flaps, bursts, forwards, reads, wan_beats)
        sim.register_collector(
            "kernel.counters", lambda p: tuple(c[p] for c in cells) + (peak["pending"],)
        )

    with _gc_paused():
        start = time.perf_counter()
        sim.run(until=horizon)
        wall_s = time.perf_counter() - start

    if is_process:
        rows = sim.collect("kernel.counters")
        beats, delivered, suspicions, flaps, bursts, forwards, reads, wan_beats = (
            [row[i] for row in rows] for i in range(8)
        )
        # the depth sampler runs in partition 0, i.e. inside worker 0
        peak = {"pending": max(row[8] for row in rows)}

    counters = {
        "beats": sum(beats),
        "delivered": sum(delivered),
        "suspicions": sum(suspicions),
        "flaps": sum(flaps),
        "bursts": sum(bursts),
        "forwards": sum(forwards),
        "reads": sum(reads),
        "wan_beats": sum(wan_beats),
    }
    events = sum(counters.values())
    stats = sim.stats() if hasattr(sim, "stats") else None
    result = {
        "hosts": len(grid.hosts),
        "wans": len(grid.wans),
        "virtual_s": round(sim.now, 6),
        "wall_s": round(wall_s, 3),
        "events": events,
        "events_per_sec": round(events / wall_s, 1),
        "peak_pending": peak["pending"],
        "cancellations": stats.cancellations if stats is not None else 0,
    }
    if nparts > 1:
        result["partitions"] = nparts
        result["windows"] = sim.windows_run
        result["mailbox_deliveries"] = sim.mailbox_deliveries
    result.update(counters)
    if is_process:
        sim.shutdown()
    return result


def run_kernel_scenario_legacy(size: str) -> dict:
    """The identical workload on the pre-PR kernel configuration: monolithic
    heap scheduler (:class:`ReferenceSimulator`), copying byte buffers
    (:class:`_LegacyStreamBuffer`), no timer cancellation."""
    if ReferenceSimulator is None:  # pragma: no cover - seed checkout
        raise RuntimeError("reference scheduler not available on this kernel")
    return run_kernel_scenario(
        size, sim_cls=ReferenceSimulator, buffer_cls=_LegacyStreamBuffer, cancellable=False
    )


def run_isolated(fn_name: str, size: str) -> dict:
    """Run one scenario function in a fresh interpreter and return its
    result.  Wall-clock comparisons between the wheel and the legacy stack
    are allocator-sensitive (the copying legacy buffers run measurably
    faster in a warmed-up heap), so the speedup acceptance measures each
    configuration pyperf-style: cold, isolated, same machine, back to back.
    """
    root = BENCH_PATH.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH", "")) if p
    )
    code = (
        "import json\n"
        f"from benchmarks.test_engine_scale import {fn_name}\n"
        f"print(json.dumps({fn_name}({size!r})))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        cwd=root,
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=600,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------


def load_baselines() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {}


def scaled(entry: dict, machine_ops: float) -> float:
    """The baseline's events/sec translated onto this machine."""
    recorded_ops = entry.get("calibration_ops") or machine_ops
    return entry["events_per_sec"] * (machine_ops / recorded_ops)


def maybe_refresh(kind: str, size: str, result: dict, machine_ops: float) -> None:
    if os.environ.get("BENCH_REFRESH", "") != "1":
        return
    data = load_baselines()
    entry = {k: v for k, v in result.items() if k != "build_s"}
    entry["calibration_ops"] = round(machine_ops, 1)
    data.setdefault(kind, {}).setdefault(size, {})["current"] = entry
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def check_baselines(kind: str, size: str, result: dict, benchmark, remeasure=None) -> None:
    """Report speedup vs the recorded seed entry and gate against a >25%
    regression vs the committed ``current`` entry.  (The hard >= 3x speedup
    acceptance lives in :func:`test_kernel_speedup_vs_seed_stack`, which
    measures both stacks live — recorded wall-clock entries are only
    calibration-scaled estimates across machines.)

    ``remeasure`` (a zero-arg callable re-running the scenario) grants the
    gate one retry: a single wall-clock measurement on shared hardware can
    blow the margin on scheduler noise alone (the same discipline as the
    best-of-two speedup test); a genuine regression fails both attempts."""
    machine_ops = calibration_ops()
    benchmark.extra_info["calibration_ops"] = round(machine_ops, 1)
    maybe_refresh(kind, size, result, machine_ops)

    entries = load_baselines().get(kind, {}).get(size, {})
    seed = entries.get("seed")
    if seed is not None:
        expected = scaled(seed, machine_ops)
        benchmark.extra_info["speedup_vs_seed"] = round(
            result["events_per_sec"] / expected, 2
        )
    current = entries.get("current")
    if current is not None and os.environ.get("BENCH_REFRESH", "") != "1":
        expected = scaled(current, machine_ops)
        ratio = result["events_per_sec"] / expected
        if ratio < REGRESSION_FLOOR and remeasure is not None:
            retried = remeasure()
            retry_ratio = retried["events_per_sec"] / expected
            benchmark.extra_info["ratio_first_attempt"] = round(ratio, 2)
            if retry_ratio > ratio:
                ratio = retry_ratio
        benchmark.extra_info["ratio_vs_baseline"] = round(ratio, 2)
        assert ratio >= REGRESSION_FLOOR, (
            f"{kind} events/sec regressed >25% vs committed baseline: "
            f"{result['events_per_sec']}/s vs {expected:.0f}/s expected "
            f"(ratio {ratio:.2f} < {REGRESSION_FLOOR})"
        )


# ---------------------------------------------------------------------------
# the benchmarks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("size", selected_sizes())
def test_engine_scale_deployment(benchmark, once, size):
    result = once(benchmark, lambda: run_scenario(size))
    benchmark.extra_info.update(result)

    # correctness first: every stream delivered every byte
    assert result["bytes_delivered"] == result["bytes_expected"]
    # the nightly hybrid run records under its own kind so it never gates
    # (or refreshes) the packet baselines
    kind = "deployment"
    if os.environ.get("ENGINE_FIDELITY", "packet") != "packet":
        kind = "deployment_hybrid"
    check_baselines(kind, size, result, benchmark, remeasure=lambda: run_scenario(size))


@pytest.mark.parametrize("size", selected_sizes())
def test_engine_scale_deployment_fluid(benchmark, once, size):
    result = once(benchmark, lambda: run_fluid_pair(size))
    benchmark.extra_info.update(result)

    # correctness gates: identical bytes and float-identical completion
    # instants across fidelities, and the fast path genuinely engaged
    assert result["bytes_delivered"] == result["bytes_expected"]
    assert result["bytes_match_packet"]
    assert result["completion_times_equal"]
    assert result["epochs"] >= result["streams"]
    check_baselines(
        "deployment_fluid", size, result, benchmark, remeasure=lambda: run_fluid_pair(size)
    )

    # the tentpole acceptance, at the 1000-host tier: the hybrid leg must
    # retire the packet leg's logical events >= 10x faster, both legs
    # measured back-to-back in this process on identical work — a direct
    # same-machine ratio, immune to calibration noise
    if size == "large":
        speedup = round(result["packet_wall_s"] / result["wall_s"], 2)
        benchmark.extra_info["fluid_pair_speedup"] = speedup
        assert speedup >= FLUID_SPEEDUP_TARGET, (
            f"fluid fast path below {FLUID_SPEEDUP_TARGET}x: packet leg "
            f"{result['packet_wall_s']}s vs hybrid {result['wall_s']}s "
            f"({speedup}x)"
        )
        # informational cross-check against the recorded VLink deployment
        # baseline (calibration-scaled; noisy on shared VMs, so not a gate)
        current = load_baselines().get("deployment", {}).get("large", {}).get("current")
        if current is not None:
            benchmark.extra_info["fluid_vs_deployment_baseline"] = round(
                result["events_per_sec"] / scaled(current, calibration_ops()), 2
            )


@pytest.mark.parametrize("size", selected_sizes())
def test_engine_scale_kernel(benchmark, once, size):
    result = once(benchmark, lambda: run_kernel_scenario(size))
    benchmark.extra_info.update(result)

    # shape: detectors mostly cancel (suspicions only from seeded loss), and
    # every burst is consumed by the framed reader
    assert 0 < result["suspicions"] < 0.02 * result["beats"]
    assert result["reads"] >= result["bursts"] * (BURST // KERNEL_PIECE) * 0.9
    check_baselines("kernel", size, result, benchmark, remeasure=lambda: run_kernel_scenario(size))


def test_kernel_speedup_vs_seed_stack():
    """The acceptance target: >= 3x events/sec over the pre-PR kernel
    (monolithic heap + copying buffers + no cancellation) on the 1000-host
    kernel workload, both stacks measured in fresh interpreters on this
    machine.  Wall-clock noise is real: best of two attempts.  The hard
    target is defined (ISSUE/ROADMAP) at the 1000-host size; reduced sizes
    (CI smoke) have ~30 ms measurement windows where run-to-run noise
    swamps the margin, so they only gate a loose sanity floor.
    """
    size = os.environ.get("ENGINE_SCALE", "") or "large"
    target = SPEEDUP_TARGET if size == "large" else SPEEDUP_TARGET / 2
    best = 0.0
    for _attempt in range(2):
        wheel = run_isolated("run_kernel_scenario", size)
        legacy = run_isolated("run_kernel_scenario_legacy", size)
        assert wheel["events"] == legacy["events"]  # identical logical trace
        best = max(best, wheel["events_per_sec"] / legacy["events_per_sec"])
        if best >= target:
            break
    assert best >= target, (
        f"kernel workload speedup over the seed stack at {size!r} is "
        f"{best:.2f}x, below the {target}x floor"
    )


#: the kernel workload's logical trace: identical counts on every kernel
#: (wheel, reference heap, partitioned at any width) by construction.
TRACE_KEYS = (
    "beats",
    "delivered",
    "suspicions",
    "flaps",
    "bursts",
    "forwards",
    "reads",
    "wan_beats",
    "virtual_s",
)


def test_kernel_workload_trace_matches_reference_heap(benchmark, once):
    """Both schedulers must produce identical logical traces (the wheel is a
    faster implementation of the *same* deterministic order)."""
    if ReferenceSimulator is None:  # pragma: no cover - seed kernel
        pytest.skip("reference scheduler not available")
    wheel = once(benchmark, lambda: run_kernel_scenario("small"))
    heap = run_kernel_scenario("small", sim_cls=ReferenceSimulator)
    assert {k: wheel[k] for k in TRACE_KEYS} == {k: heap[k] for k in TRACE_KEYS}
    benchmark.extra_info["wheel_vs_heap_wall"] = round(
        heap["wall_s"] / max(wheel["wall_s"], 1e-9), 2
    )


# ---------------------------------------------------------------------------
# partitioned kernel
# ---------------------------------------------------------------------------


def run_kernel_scenario_partitioned(size: str, partitions: int = 2) -> dict:
    """The kernel workload on the partitioned kernel (round-robin executor);
    importable by :func:`run_isolated`."""
    return run_kernel_scenario(size, partitions=partitions)


#: acceptance width and floor for the process executor: >= 2.5x wall-clock
#: over the single loop at 4 partitions on the 1000-host kernel workload.
PROCESS_PARTITIONS = 4
PROCESS_SPEEDUP_TARGET = 2.5


def run_kernel_scenario_process(size: str) -> dict:
    """The kernel workload on the process executor at the acceptance
    partition width; importable by :func:`run_isolated`."""
    return run_kernel_scenario(size, partitions=PROCESS_PARTITIONS, executor="process")


@pytest.mark.parametrize("size", selected_sizes())
def test_engine_scale_kernel_partitioned(benchmark, once, size):
    """The kernel workload sharded across partitions (2 by default,
    ``ENGINE_PARTITIONS`` overrides; ``ENGINE_EXECUTOR`` selects the
    executor): gated for trace equality with the single loop and against
    the committed baseline of the matching kind (``kernel_partitioned``,
    ``kernel_thread`` or ``kernel_process``)."""
    nparts = int(os.environ.get("ENGINE_PARTITIONS", "2"))
    executor, suffix = selected_executor()
    def run():
        return run_kernel_scenario(size, partitions=nparts, executor=executor)

    result = once(benchmark, run)
    benchmark.extra_info.update(result)

    assert result["partitions"] == nparts
    assert result["mailbox_deliveries"] > 0  # WAN beats crossed the boundary
    assert 0 < result["suspicions"] < 0.02 * result["beats"]
    assert result["reads"] >= result["bursts"] * (BURST // KERNEL_PIECE) * 0.9
    # conservative execution is *trace-equal* to the single loop
    single = run_kernel_scenario(size)
    assert {k: result[k] for k in TRACE_KEYS} == {k: single[k] for k in TRACE_KEYS}
    check_baselines(f"kernel_{suffix}", size, result, benchmark, remeasure=run)


@pytest.mark.parametrize("size", selected_sizes())
def test_engine_scale_deployment_partitioned(benchmark, once, size):
    """The full-stack deployment scenario on the partitioned kernel: every
    stream must deliver every byte through the boundary mailboxes (executor
    from ``ENGINE_EXECUTOR``, baseline kind suffixed to match)."""
    executor, suffix = selected_executor()
    def run():
        return run_scenario(size, partitions=2, executor=executor)

    result = once(benchmark, run)
    benchmark.extra_info.update(result)

    assert result["bytes_delivered"] == result["bytes_expected"]
    assert result["mailbox_deliveries"] > 0
    check_baselines(f"deployment_{suffix}", size, result, benchmark, remeasure=run)


@pytest.mark.parametrize("nparts", [2, 4])
def test_partitioned_kernel_trace_matches_single_loop(nparts):
    """Determinism acceptance: the seeded churn workload executes the same
    logical trace at 2 and 4 partitions as on the single loop."""
    size = os.environ.get("ENGINE_SCALE", "") or "small"
    single = run_kernel_scenario(size)
    multi = run_kernel_scenario(size, partitions=nparts)
    assert multi["mailbox_deliveries"] > 0
    assert {k: multi[k] for k in TRACE_KEYS} == {k: single[k] for k in TRACE_KEYS}


def test_partitioned_kernel_thread_executor_matches_round_robin():
    """The opt-in thread-pool executor must reproduce the round-robin trace
    exactly (per-partition state, order-stamped mailboxes)."""
    round_robin = run_kernel_scenario("small", partitions=2)
    threaded = run_kernel_scenario("small", partitions=2, executor="thread")
    assert {k: threaded[k] for k in TRACE_KEYS} == {k: round_robin[k] for k in TRACE_KEYS}


def test_partitioned_kernel_process_executor_matches_round_robin():
    """The process executor — one forked worker per partition, shard-owned
    object graphs, wire-serialized boundary mailboxes — must reproduce the
    round-robin trace exactly."""
    round_robin = run_kernel_scenario("small", partitions=2)
    forked = run_kernel_scenario("small", partitions=2, executor="process")
    assert {k: forked[k] for k in TRACE_KEYS} == {k: round_robin[k] for k in TRACE_KEYS}


def test_process_speedup_vs_single_loop():
    """The tentpole acceptance: >= 2.5x wall-clock speedup at 4 partitions
    on the 1000-host kernel workload, process executor vs the single loop,
    both measured live in fresh interpreters on this machine (best of two).

    A parallel speedup needs parallel hardware: on machines with fewer
    cores than partitions the workers time-slice one core and the ratio
    measures scheduling overhead, not the kernel — the gate only arms when
    the shards can actually run concurrently.  Reduced sizes (CI smoke)
    skip for the same reason the 3x kernel gate relaxes there: the
    windowed protocol's fixed costs dominate sub-100 ms runs."""
    cores = os.cpu_count() or 1
    if cores < PROCESS_PARTITIONS:
        pytest.skip(
            f"process-speedup gate needs >= {PROCESS_PARTITIONS} cores; this "
            f"machine has {cores} (workers would time-slice, not parallelize)"
        )
    size = os.environ.get("ENGINE_SCALE", "") or "large"
    if size not in ("large", "huge"):
        pytest.skip("the 2.5x floor is defined at the 1000-host tier (ENGINE_SCALE=large)")
    best = 0.0
    for _attempt in range(2):
        single = run_isolated("run_kernel_scenario", size)
        multi = run_isolated("run_kernel_scenario_process", size)
        assert multi["events"] == single["events"]  # identical logical trace
        best = max(best, single["wall_s"] / multi["wall_s"])
        if best >= PROCESS_SPEEDUP_TARGET:
            break
    assert best >= PROCESS_SPEEDUP_TARGET, (
        f"process executor at {PROCESS_PARTITIONS} partitions is {best:.2f}x "
        f"the single loop at {size!r}, below the {PROCESS_SPEEDUP_TARGET}x floor"
    )
