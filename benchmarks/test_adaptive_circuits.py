"""EXP-ADAPT-CIRCUIT — adaptive vs. static group communication under churn.

The scripted (seeded) scenario: a four-member circuit spans two clusters
joined by two independent gateway/WAN paths.  Every member streams
sequence-numbered messages to every other member while the fault injector
first *degrades* the preferred WAN (loss crosses the lossy threshold) and
then *kills the gateway host* the static routes relay through.  Detection
is entirely through the monitoring subsystem (``announce=False``): seeded
active probes feed estimators, the TopologyMonitor pushes measured
profiles into the knowledge base, and a run of lost probes marks the dead
path down.

* **adaptive** — circuits created with ``adaptive=True``: every remote leg
  is an offset-framed adaptive session pinned through the selector's
  circuit-hop policy.  When the WAN degrades the affected legs migrate to
  the backup gateway pair (re-pinning methods and monitoring-derived
  parameters per hop); the later gateway death cannot touch them.  Every
  member's stream arrives complete and in per-source order.
* **static** — the seed behaviour: adapters bound once at creation.  The
  group's cross-cluster legs collapse with TCP when the WAN degrades and
  freeze entirely when their gateway dies.

Headline: delivered-bytes/time across the group, identical fault schedule.
The measured adaptive/static ratio is recorded in ``BENCH_circuits.json``
(refresh with ``BENCH_REFRESH=1``) and CI-gated against a floor derived
from the recorded margin.
"""

import json
import os
import struct
from pathlib import Path

from repro.core import PadicoFramework
from repro.simnet.networks import Ethernet100, WanVthd

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_circuits.json"

CHUNK = 16 * 1024
CHUNKS_PER_PAIR = 64          # 1 MB per (src, dst) pair
MEMBERS = ["a0", "a1", "b0", "b1"]
DEGRADE_AT, DEGRADE_LOSS = 0.1, 0.06
GATEWAY_KILL_AT = 0.45
HORIZON = 4.0
CHURN_SEED = 42
PROBE_SEED = 7

_SEQ = struct.Struct("!II")  # src_rank, sequence number

#: absolute floor for the adaptive/static delivered-bytes/time ratio, and
#: the fraction of the recorded margin CI re-requires (machine variance on
#: the virtual-time measurement is nil, but the schedule leaves the static
#: run a machine-independent trickle before the freeze).
RATIO_FLOOR = 1.3
RATIO_BASELINE_FRACTION = 0.5
#: route-flap ceiling: the minimum-dwell hysteresis on pinned routes holds
#: the seeded schedule to ~8 migrations (it ran ~20 before the dwell, with
#: passive probes on the loaded backup WAN flapping the route weights).
MIGRATIONS_CEILING = 10


def deployment():
    """Two clusters, two independent gateway/WAN paths; wan1 preferred."""
    fw = PadicoFramework()
    for name, site in [
        ("a0", "sa"), ("a1", "sa"), ("ga1", "sa"), ("ga2", "sa"),
        ("b0", "sb"), ("b1", "sb"), ("gb1", "sb"), ("gb2", "sb"),
    ]:
        fw.add_host(name, site=site)
    lan_a = fw.add_network(Ethernet100(fw.sim, "lan-a"))
    lan_b = fw.add_network(Ethernet100(fw.sim, "lan-b"))
    wan1 = fw.add_network(WanVthd(fw.sim, "wan1"))
    wan2 = fw.add_network(WanVthd(fw.sim, "wan2", seed=777))
    # wan2 is the backup: slightly higher latency keeps wan1 preferred
    # until the measured degradation inverts the edge weights.
    wan2.latency = wan1.latency * 1.15
    for h in ("a0", "a1", "ga1", "ga2"):
        lan_a.connect(fw.host(h))
    for h in ("b0", "b1", "gb1", "gb2"):
        lan_b.connect(fw.host(h))
    wan1.connect(fw.host("ga1")), wan1.connect(fw.host("gb1"))
    wan2.connect(fw.host("ga2")), wan2.connect(fw.host("gb2"))
    fw.boot()
    fw.monitoring.watch(wan1, interval=0.01, seed=PROBE_SEED)
    fw.monitoring.watch(wan2, interval=0.01, seed=PROBE_SEED + 1)
    injector = fw.fault_injector(seed=CHURN_SEED, announce=False)
    injector.degrade_link_at(DEGRADE_AT, wan1, loss_rate=DEGRADE_LOSS)
    injector.kill_host_at(GATEWAY_KILL_AT, fw.host("ga1"))
    return fw


def payload(src_rank: int, seq: int) -> bytes:
    body = bytes((j + src_rank * 31 + seq) % 251 for j in range(CHUNK - _SEQ.size))
    return _SEQ.pack(src_rank, seq) + body


def run_group(adaptive: bool) -> dict:
    fw = deployment()
    group = fw.group(MEMBERS, "bench-group")
    circuits = {
        name: fw.node(name).circuit("bench", group, adaptive=adaptive)
        for name in MEMBERS
    }
    expected_messages = len(MEMBERS) * (len(MEMBERS) - 1) * CHUNKS_PER_PAIR
    state = {
        "messages": 0,
        "bytes": 0,
        "order_ok": True,
        "content_ok": True,
        "finished_at": None,
    }
    # per (receiver, src) sequence cursor: per-source order across the group
    cursors = {}

    def on_receive(me):
        def _cb(src_rank, incoming, _rx):
            data = incoming.unpack_express()
            src, seq = _SEQ.unpack_from(data, 0)
            key = (me, src)
            if cursors.get(key, -1) + 1 != seq:
                state["order_ok"] = False
            cursors[key] = seq
            if data != payload(src, seq):
                state["content_ok"] = False
            state["messages"] += 1
            state["bytes"] += len(data)
            if state["messages"] >= expected_messages and state["finished_at"] is None:
                state["finished_at"] = fw.sim.now
        return _cb

    for rank, name in enumerate(MEMBERS):
        circuits[name].set_receive_callback(on_receive(rank))

    for rank, name in enumerate(MEMBERS):
        circuit = circuits[name]
        for seq in range(CHUNKS_PER_PAIR):
            for dst_rank in range(len(MEMBERS)):
                if dst_rank != rank:
                    circuit.send(dst_rank, payload(rank, seq))

    fw.sim.run(until=HORIZON)
    finished_at = state["finished_at"] if state["finished_at"] else HORIZON
    monitor = fw.monitoring.describe()
    fw.monitoring.stop()
    migrations = sum(
        c.adaptive.migrations() for c in circuits.values() if c.adaptive is not None
    )
    return {
        "finished_at": finished_at,
        "complete": state["messages"] >= expected_messages,
        "messages": state["messages"],
        "bytes": state["bytes"],
        "order_ok": state["order_ok"],
        "content_ok": state["content_ok"],
        "rate_MBps": state["bytes"] / finished_at / 1e6,
        "migrations": migrations,
        "monitor": monitor,
    }


def load_recorded() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {}


def maybe_refresh(result: dict) -> None:
    if os.environ.get("BENCH_REFRESH", "") != "1":
        return
    BENCH_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def test_adaptive_circuits_beat_static_under_degrade_and_gateway_kill(benchmark):
    def measure():
        return {"adaptive": run_group(adaptive=True), "static": run_group(adaptive=False)}

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    adaptive, static = r["adaptive"], r["static"]
    ratio = adaptive["rate_MBps"] / max(static["rate_MBps"], 1e-9)

    benchmark.extra_info.update(
        {
            "adaptive_finished_s": round(adaptive["finished_at"], 3),
            "adaptive_rate_MBps": round(adaptive["rate_MBps"], 2),
            "adaptive_migrations": adaptive["migrations"],
            "static_rate_MBps": round(static["rate_MBps"], 2),
            "static_messages": static["messages"],
            "ratio": round(ratio, 2),
            "monitor": adaptive["monitor"],
        }
    )

    # the adaptive group delivered everything, in per-source order, intact
    assert adaptive["complete"], "adaptive group transfer did not finish"
    assert adaptive["order_ok"], "per-source message order violated"
    assert adaptive["content_ok"], "payload corruption across migration"
    # churn actually bit: legs migrated, and the monitoring loop (not an
    # oracle) drove the decisions
    assert adaptive["migrations"] >= 1
    # ... but the minimum-dwell hysteresis keeps the route from flapping
    # (this schedule migrated ~20 times before the dwell, ~8 after)
    assert adaptive["migrations"] <= MIGRATIONS_CEILING, (
        f"route flapping is back: {adaptive['migrations']} migrations under the "
        f"seeded schedule (ceiling {MIGRATIONS_CEILING})"
    )
    assert adaptive["monitor"]["reclassifications"] + adaptive["monitor"][
        "links_marked_down"
    ] >= 1
    # the static group froze: it cannot complete under the same schedule
    assert not static["complete"]
    # static deliveries that did land must also be ordered (the adapters'
    # per-source serialization is churn-independent)
    assert static["order_ok"] and static["content_ok"]

    # headline gate: delivered-bytes/time margin vs the recorded baseline
    recorded = load_recorded()
    maybe_refresh(
        {
            "adaptive_rate_MBps": round(adaptive["rate_MBps"], 3),
            "static_rate_MBps": round(static["rate_MBps"], 3),
            "ratio": round(ratio, 3),
        }
    )
    gate = RATIO_FLOOR
    if recorded.get("ratio") and os.environ.get("BENCH_REFRESH", "") != "1":
        gate = max(gate, RATIO_BASELINE_FRACTION * recorded["ratio"])
    assert ratio >= gate, (
        f"adaptive/static delivered-bytes/time ratio regressed: {ratio:.2f} < {gate:.2f} "
        f"(recorded {recorded.get('ratio')})"
    )
