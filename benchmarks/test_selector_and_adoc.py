"""EXP-SELECTOR and EXP-ADOC — ablations of design choices called out in DESIGN.md.

* EXP-SELECTOR: the dual-abstraction argument of Figure 1 — on a SAN, the
  straight parallel path (Circuit→MadIO) must beat a configuration where
  everything is forced through the distributed abstraction (Circuit→SysIO
  over the same wire pair's Ethernet), and the selector must pick the
  straight path automatically from the topology knowledge base.
* EXP-ADOC: online compression pays off for compressible data on slow
  links and stays out of the way for incompressible data (§3.2).
"""

import os


from repro.core import paper_cluster, paper_lossy_pair
from repro.methods import register_method_drivers


def _circuit_one_way(fw, group, name, methods, nbytes=65536):
    c0 = fw.node(group[0].name).circuit(name, group, methods=methods)
    c1 = fw.node(group[1].name).circuit(name, group, methods=methods)

    def scenario():
        t0 = fw.sim.now
        c0.send(1, b"x" * nbytes)
        yield c1.recv()
        return fw.sim.now - t0

    return fw.sim.run(until=fw.sim.process(scenario()), max_time=60)


def test_selector_picks_straight_path_and_it_wins(benchmark):
    def measure():
        fw, group = paper_cluster(2)
        auto = _circuit_one_way(fw, group, "auto", None)
        chosen = fw.node(group[0].name).circuits.circuit("auto").route_for(1).method
        forced = _circuit_one_way(fw, group, "forced", {0: "sysio", 1: "sysio"})
        return {"auto_us": auto * 1e6, "forced_cross_us": forced * 1e6, "chosen": chosen}

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {"auto_us": round(r["auto_us"], 2), "forced_cross_us": round(r["forced_cross_us"], 2),
         "selector_choice": r["chosen"]}
    )
    assert r["chosen"] == "madio"                   # knowledge-base driven choice
    assert r["forced_cross_us"] > 5 * r["auto_us"]  # the Figure 1 penalty is large on a SAN


def _adoc_bandwidth(payload: bytes) -> float:
    fw, group = paper_lossy_pair(loss_rate=0.0)
    for host in group:
        register_method_drivers(fw.node(host.name))
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(9300)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 9300, method="adoc")
        server = yield accept_op
        t0 = fw.sim.now
        client.write(payload)
        data = yield server.read(len(payload))
        assert data == payload
        return len(payload) / (fw.sim.now - t0) / 1e3

    return fw.sim.run(until=fw.sim.process(scenario()), max_time=3600)


def test_adoc_compression_ablation(benchmark):
    compressible = (b"temperature=300.0 pressure=101325 " * 40000)[:1_000_000]
    incompressible = os.urandom(400_000)

    def measure():
        return {
            "compressible_KBps": _adoc_bandwidth(compressible),
            "incompressible_KBps": _adoc_bandwidth(incompressible),
        }

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update({k: round(v, 1) for k, v in r.items()})
    # the slow link carries ~0.5 MB/s raw: compression must beat that clearly
    assert r["compressible_KBps"] > 3 * r["incompressible_KBps"]
    # incompressible data is passed through, still roughly at link speed
    assert r["incompressible_KBps"] > 250
