"""EXP-WAN — §5 text: the VTHD wide-area experiments.

"We have run test on VTHD, a French experimental high-bandwidth WAN.  All
middleware systems get roughly the same performance, namely a bandwidth of
9 MB/s and a 8 ms latency [...] When activating Parallel Streams, the
bandwidth goes up to 12 MB/s which is the maximum possible given the fact
that each node is connected to VTHD through Ethernet-100."
"""

import pytest

from repro.core import paper_wan_pair
from repro.methods import register_method_drivers
from repro.bench import CorbaTransport, MpiTransport, SoapTransport, measure_latency
from repro.middleware.corba import OMNIORB_4

TRANSFER = 12_000_000


def _wan():
    fw, group = paper_wan_pair()
    for host in group:
        register_method_drivers(fw.node(host.name), streams=4)
    return fw, group


def _bulk_bandwidth(method: str) -> float:
    """MB/s of a bulk transfer over the WAN with the given VLink method."""
    fw, group = _wan()
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(9100)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 9100, method=method)
        server = yield accept_op
        t0 = fw.sim.now
        sent = 0
        while sent < TRANSFER:
            n = min(512 * 1024, TRANSFER - sent)
            client.write(b"x" * n)
            sent += n
        data = yield server.read(TRANSFER)
        assert len(data) == TRANSFER
        return TRANSFER / (fw.sim.now - t0) / 1e6

    return fw.sim.run(until=fw.sim.process(scenario()), max_time=600)


def test_wan_single_stream_vs_parallel_streams(benchmark):
    def measure():
        return {"single": _bulk_bandwidth("sysio"), "parallel": _bulk_bandwidth("parallel_streams")}

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "single_stream_MBps": round(r["single"], 2),
            "parallel_streams_MBps": round(r["parallel"], 2),
            "paper_single_MBps": 9.0,
            "paper_parallel_MBps": 12.0,
        }
    )
    assert r["single"] == pytest.approx(9.0, rel=0.25)
    assert r["parallel"] == pytest.approx(12.0, rel=0.15)
    assert r["parallel"] > r["single"]
    assert r["parallel"] < 12.6  # capped by the Ethernet-100 access link


def test_wan_every_middleware_gets_the_same_latency(benchmark):
    """Paper: "On the WAN, every middleware systems get roughly the same
    performance since software overhead is negligible compared to the
    network speed."""

    def measure():
        results = {}
        for name, maker in {
            "MPI": lambda fw, g: MpiTransport(fw, g),
            "omniORB-4": lambda fw, g: CorbaTransport(fw, g, profile=OMNIORB_4),
            "gSOAP": lambda fw, g: SoapTransport(fw, g),
        }.items():
            # plain single-socket deployment: this experiment is about every
            # middleware seeing the same 8 ms WAN latency, not about the
            # WAN-specific methods
            fw, group = paper_wan_pair()
            results[name] = (
                measure_latency(maker(fw, group), size=64, iterations=3, max_time=600) * 1e3
            )
        return results

    latencies_ms = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["latencies_ms"] = {k: round(v, 2) for k, v in latencies_ms.items()}
    benchmark.extra_info["paper_latency_ms"] = 8.0
    for value in latencies_ms.values():
        assert value == pytest.approx(8.0, rel=0.35)
    spread = max(latencies_ms.values()) - min(latencies_ms.values())
    assert spread < 2.0  # "roughly the same" — software differences are lost in the 8 ms
