"""EXP-ADAPT — adaptive vs. static selection under link churn.

The scripted (seeded) scenario: a bulk transfer runs over a direct WAN
while the fault injector first *degrades* the link (loss crosses the lossy
threshold) and then *kills* it outright.  Detection is entirely through the
monitoring subsystem (``announce=False``): active probes feed seeded
estimators, the TopologyMonitor pushes measured profiles into the
knowledge base, and a run of lost probes marks the link down.

* **adaptive** — the open VLink reacts to each knowledge-base change: it
  migrates from the parallel-streams rail to zero-tolerance VRP when the
  measured loss reclassifies the link, and to the gateway relay route when
  the link dies; every byte arrives intact and in order.
* **static** — the seed behaviour: selection happens once at connect time;
  the stream collapses with TCP under loss and freezes entirely when the
  wire goes dark.

Expected shape: the adaptive transfer completes; the static one plateaus at
whatever it managed before the kill, so adaptive wins on delivered-bytes
per unit time under the identical fault schedule.
"""


from repro.core import PadicoFramework
from repro.methods import register_wan_method_drivers
from repro.simnet.networks import Ethernet100, WanVthd

CHUNK = 64 * 1024
TOTAL = 122 * CHUNK  # ~8 MB, an exact number of chunks
DEGRADE_AT, DEGRADE_LOSS = 0.25, 0.06
KILL_AT = 0.7
HORIZON = 3.0
CHURN_SEED = 42
PROBE_SEED = 7


def deployment():
    """edge--wan--remote plus a gateway path (edge--lan--gw--wan2--remote)."""
    fw = PadicoFramework()
    edge = fw.add_host("edge", site="s1")
    gw = fw.add_host("gw", site="s1")
    remote = fw.add_host("remote", site="s2")
    wan = fw.add_network(WanVthd(fw.sim, "wan-direct"))
    lan = fw.add_network(Ethernet100(fw.sim, "lan"))
    wan2 = fw.add_network(WanVthd(fw.sim, "wan-backup", seed=777))
    wan.connect(edge), wan.connect(remote)
    lan.connect(edge), lan.connect(gw)
    wan2.connect(gw), wan2.connect(remote)
    fw.boot()
    register_wan_method_drivers(fw.node("edge"))
    register_wan_method_drivers(fw.node("remote"))
    fw.monitoring.watch(wan, interval=0.01, seed=PROBE_SEED)
    injector = fw.fault_injector(seed=CHURN_SEED, announce=False)
    injector.degrade_link_at(DEGRADE_AT, wan, loss_rate=DEGRADE_LOSS)
    injector.fail_link_at(KILL_AT, wan)
    return fw, wan


def pattern(i):
    return bytes((j + i) % 251 for j in range(CHUNK))


def expected_payload():
    return b"".join(pattern(i) for i in range(TOTAL // CHUNK))


def run_adaptive():
    fw, wan = deployment()
    listener = fw.node("remote").vlink_listen(9400, adaptive=True)
    state = {}

    def scenario():
        accept_op = listener.accept()
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 9400, adaptive=True)
        server = yield accept_op
        for i in range(TOTAL // CHUNK):
            client.write(pattern(i))
        data = yield server.read(TOTAL)
        state["client"] = client
        state["intact"] = data == expected_payload()
        return fw.sim.now

    finished_at = fw.sim.run(until=fw.sim.process(scenario()), max_time=HORIZON * 4)
    monitor_report = fw.monitoring.describe()
    fw.monitoring.stop()
    client = state["client"]
    return {
        "finished_at": finished_at,
        "intact": state["intact"],
        "migrations": client.migrations,
        "final_driver": client.driver_name,
        "final_gateways": [h.name for h in client.route.gateways()]
        if hasattr(client.route, "gateways")
        else [],
        "monitor": monitor_report,
    }


def run_static():
    fw, wan = deployment()
    listener = fw.node("remote").vlink_listen(9400)
    delivered = {"bytes": 0}

    def on_server_link(link):
        link.set_data_handler(
            lambda l: delivered.__setitem__("bytes", delivered["bytes"] + len(l.read_available()))
        )

    listener.set_accept_callback(on_server_link)

    def scenario():
        client = yield fw.node("edge").vlink_connect(fw.node("remote"), 9400)
        for i in range(TOTAL // CHUNK):
            client.write(pattern(i))
        return client.driver_name

    driver = fw.sim.run(until=fw.sim.process(scenario()), max_time=HORIZON * 4)
    fw.sim.run(until=HORIZON)
    fw.monitoring.stop()
    return {"delivered": delivered["bytes"], "driver": driver}


def test_adaptive_beats_static_selection_under_churn(benchmark):
    def measure():
        return {"adaptive": run_adaptive(), "static": run_static()}

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    adaptive, static = r["adaptive"], r["static"]

    adaptive_rate = TOTAL / adaptive["finished_at"] / 1e6
    static_rate = static["delivered"] / HORIZON / 1e6
    benchmark.extra_info.update(
        {
            "adaptive_finished_s": round(adaptive["finished_at"], 3),
            "adaptive_rate_MBps": round(adaptive_rate, 2),
            "adaptive_migrations": adaptive["migrations"],
            "adaptive_final_driver": adaptive["final_driver"],
            "adaptive_final_gateways": adaptive["final_gateways"],
            "static_delivered_MB": round(static["delivered"] / 1e6, 2),
            "static_rate_MBps": round(static_rate, 2),
            "monitor": adaptive["monitor"],
        }
    )

    # every byte survived the degrade + kill, intact and in order
    assert adaptive["intact"]
    # the link migrated at least twice: to VRP on reclassification, then to
    # the gateway route when the wire died
    assert adaptive["migrations"] >= 2
    assert adaptive["final_gateways"] == ["gw"]
    # the monitoring loop (not an oracle) drove every decision
    monitor = adaptive["monitor"]
    assert monitor["reclassifications"] >= 1
    assert monitor["links_marked_down"] >= 1
    # the static transfer froze when the wire died: it cannot complete
    assert static["delivered"] < TOTAL
    # headline: delivered-bytes/time, identical fault schedule
    assert adaptive_rate > 1.5 * static_rate
