"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
(§5).  The quantity of interest is *virtual* time measured inside the
simulator (latencies in µs, bandwidths in MB/s); pytest-benchmark measures
the wall-clock cost of running the simulation, which is only useful as a
regression guard.  Every benchmark therefore:

* runs the simulated experiment once inside ``benchmark.pedantic`` (or a
  plain call) so ``--benchmark-only`` runs work,
* attaches the reproduced numbers to ``benchmark.extra_info`` so they appear
  in the report, and
* asserts the *shape* the paper reports (who wins, by roughly what factor).
"""

from __future__ import annotations

import sys
from pathlib import Path

# allow running `pytest benchmarks/` from the repository root without install
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
