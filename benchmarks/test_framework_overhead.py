"""EXP-PADICO-OVERHEAD — §5 text: "PadicoTM overhead is negligible: MPICH in
PadicoTM over Myrinet-2000 gets roughly the same performance as a standalone
implementation of MPICH over Myrinet-2000."

The same MPI library runs (a) through the full framework (virtual Madeleine
personality → Circuit → MadIO → NetAccess → Madeleine) and (b) bound
straight to a raw Madeleine channel; the latency and bandwidth differences
are the framework's overhead.
"""


from repro.core import paper_cluster
from repro.bench import MpiTransport, measure_bandwidth, measure_latency
from repro.middleware.mpi import MPICH_1_2_5


def _measure(standalone: bool):
    fw, group = paper_cluster(2)
    latency = measure_latency(
        MpiTransport(fw, group, profile=MPICH_1_2_5, standalone=standalone),
        size=8, iterations=15, max_time=120,
    )
    fw2, group2 = paper_cluster(2)
    bandwidth = measure_bandwidth(
        MpiTransport(fw2, group2, profile=MPICH_1_2_5, standalone=standalone),
        size=1_000_000, repeats=2, max_time=120,
    )
    return latency * 1e6, bandwidth / 1e6


def test_mpich_inside_framework_vs_standalone(benchmark):
    def measure():
        inside = _measure(standalone=False)
        alone = _measure(standalone=True)
        return inside, alone

    (lat_in, bw_in), (lat_alone, bw_alone) = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(
        {
            "framework_latency_us": round(lat_in, 2),
            "standalone_latency_us": round(lat_alone, 2),
            "latency_overhead_us": round(lat_in - lat_alone, 3),
            "framework_bandwidth_MBps": round(bw_in, 1),
            "standalone_bandwidth_MBps": round(bw_alone, 1),
            "paper_claim": "roughly the same performance",
        }
    )
    # negligible overhead: < 1 us of latency, < 2 % of bandwidth
    assert lat_in >= lat_alone
    assert lat_in - lat_alone < 1.0
    assert bw_alone - bw_in < 0.02 * bw_alone + 1.0
