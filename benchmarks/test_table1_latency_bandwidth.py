"""TAB1 — Table 1: one-way latency and maximum bandwidth over Myrinet-2000.

Paper values:

=================  ============== =====================
API / middleware   latency (µs)    max bandwidth (MB/s)
=================  ============== =====================
Circuit            8.4             240
VLink              10.2            239
MPICH-1.2.5        12.06           238.7
omniORB 3          20.3            238.4
omniORB 4          18.4            235.8
Java sockets       40              237.9
=================  ============== =====================

(The §5 text adds Mico at 63 µs / 55 MB/s and ORBacus at 54 µs / 63 MB/s.)
"""

import pytest

from repro.core import paper_cluster
from repro.bench import (
    CircuitTransport,
    CorbaTransport,
    JavaSocketTransport,
    MpiTransport,
    VLinkTransport,
    measure_bandwidth,
    measure_latency,
)
from repro.middleware.corba import MICO_2_3_7, OMNIORB_3, OMNIORB_4, ORBACUS_4_0_5
from repro.middleware.mpi import MPICH_1_2_5

ROWS = {
    "Circuit": (lambda fw, g: CircuitTransport(fw, g), 8.4, 240.0),
    "VLink": (lambda fw, g: VLinkTransport(fw, g), 10.2, 239.0),
    "MPICH-1.2.5": (lambda fw, g: MpiTransport(fw, g, profile=MPICH_1_2_5), 12.06, 238.7),
    "omniORB 3": (lambda fw, g: CorbaTransport(fw, g, profile=OMNIORB_3), 20.3, 238.4),
    "omniORB 4": (lambda fw, g: CorbaTransport(fw, g, profile=OMNIORB_4), 18.4, 235.8),
    "Java sockets": (lambda fw, g: JavaSocketTransport(fw, g), 40.0, 237.9),
    "Mico-2.3.7": (lambda fw, g: CorbaTransport(fw, g, profile=MICO_2_3_7), 63.0, 55.0),
    "ORBacus-4.0.5": (lambda fw, g: CorbaTransport(fw, g, profile=ORBACUS_4_0_5), 54.0, 63.0),
}


def _measure(maker):
    fw, group = paper_cluster(2)
    latency = measure_latency(maker(fw, group), size=8, iterations=15, max_time=120)
    fw2, group2 = paper_cluster(2)
    bandwidth = measure_bandwidth(maker(fw2, group2), size=1_000_000, repeats=2, max_time=120)
    return latency * 1e6, bandwidth / 1e6


@pytest.mark.parametrize("row", sorted(ROWS))
def test_table1_row(benchmark, row):
    maker, paper_lat, paper_bw = ROWS[row]
    latency_us, bandwidth_MBps = benchmark.pedantic(
        lambda: _measure(maker), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(
        {
            "row": row,
            "latency_us": round(latency_us, 2),
            "paper_latency_us": paper_lat,
            "bandwidth_MBps": round(bandwidth_MBps, 1),
            "paper_bandwidth_MBps": paper_bw,
        }
    )
    assert latency_us == pytest.approx(paper_lat, rel=0.12)
    assert bandwidth_MBps == pytest.approx(paper_bw, rel=0.10)


def test_table1_latency_ordering(benchmark):
    """The ordering the paper's Table 1 exhibits."""

    def measure():
        return {name: _measure(ROWS[name][0])[0] for name in
                ("Circuit", "VLink", "MPICH-1.2.5", "omniORB 4", "omniORB 3", "Java sockets")}

    lat = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["latencies_us"] = {k: round(v, 2) for k, v in lat.items()}
    assert (
        lat["Circuit"]
        < lat["VLink"]
        < lat["MPICH-1.2.5"]
        < lat["omniORB 4"]
        < lat["omniORB 3"]
        < lat["Java sockets"]
    )
