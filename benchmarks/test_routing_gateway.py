"""EXP-ROUTE — multi-hop gateway routing on a grid of two clusters.

The paper's §2.1 scenario assumes every node of both clusters holds a WAN
interface.  Real grid sites expose a single *front-end gateway* instead:
compute nodes sit on the SAN and a private LAN, and only the gateway also
reaches the VTHD WAN.  This benchmark builds that topology and measures the
end-to-end latency and bandwidth of inter-site traffic relayed through the
two gateways, against the direct-WAN deployment of the seed as the baseline.

Expected shape: the relayed path pays the two private-LAN legs and the
store-and-forward work on each gateway on top of the 8 ms WAN latency —
small against 8 ms — while bulk bandwidth stays in the region of the
single-stream VTHD figure (~9 MB/s), since the store-and-forward pipeline
keeps both legs busy and the WAN remains the bottleneck.
"""


from repro.core import PadicoFramework, paper_wan_pair
from repro.simnet.networks import WanVthd

TRANSFER = 2_000_000
PING = 64


def gateway_grid():
    """Two 2-node Myrinet clusters; only the per-site gateways reach the WAN."""
    fw = PadicoFramework()
    for site, prefix in (("rennes", "ra"), ("grenoble", "gb")):
        names = [f"{prefix}{i}" for i in range(2)]
        fw.add_cluster(names, site=site, myrinet=True, ethernet=True)
        gw = fw.add_host(f"{prefix}-gw", site=site)
        fw.network(f"eth-{site}").connect(gw)
    wan = fw.add_network(WanVthd(fw.sim, "vthd"))
    wan.connect(fw.host("ra-gw"))
    wan.connect(fw.host("gb-gw"))
    fw.boot()
    return fw


def _pingpong_latency(fw, src_name, dst_name, port):
    n0, n1 = fw.node(src_name), fw.node(dst_name)
    listener = n1.vlink_listen(port)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, port)
        server = yield accept_op
        # warm up (connection + relay splices established)
        client.write(b"w" * PING)
        yield server.read(PING)
        server.write(b"w" * PING)
        yield client.read(PING)
        t0 = fw.sim.now
        rounds = 4
        for _ in range(rounds):
            client.write(b"p" * PING)
            data = yield server.read(PING)
            server.write(data)
            yield client.read(PING)
        return (fw.sim.now - t0) / rounds / 2

    return fw.sim.run(until=fw.sim.process(scenario()), max_time=600)


def _bulk_bandwidth(fw, src_name, dst_name, port):
    n0, n1 = fw.node(src_name), fw.node(dst_name)
    listener = n1.vlink_listen(port)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, port)
        server = yield accept_op
        t0 = fw.sim.now
        sent = 0
        while sent < TRANSFER:
            n = min(256 * 1024, TRANSFER - sent)
            client.write(b"x" * n)
            sent += n
        data = yield server.read(TRANSFER)
        assert len(data) == TRANSFER
        return TRANSFER / (fw.sim.now - t0) / 1e6

    return fw.sim.run(until=fw.sim.process(scenario()), max_time=600)


def test_gateway_relay_vs_direct_wan(benchmark):
    def measure():
        grid = gateway_grid()
        route = grid.route_between("ra0", "gb0")
        relayed = {
            "hops": len(route),
            "gateways": [h.name for h in route.gateways()],
            "latency_ms": _pingpong_latency(grid, "ra0", "gb0", 9200) * 1e3,
            "bandwidth_MBps": _bulk_bandwidth(gateway_grid(), "ra0", "gb0", 9300),
        }
        direct_fw, pair = paper_wan_pair()
        direct = {
            "latency_ms": _pingpong_latency(direct_fw, pair[0].name, pair[1].name, 9200) * 1e3,
            "bandwidth_MBps": _bulk_bandwidth(paper_wan_pair()[0], "rennes0", "grenoble0", 9300),
        }
        return {"relayed": relayed, "direct": direct}

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    relayed, direct = r["relayed"], r["direct"]
    benchmark.extra_info.update(
        {
            "relayed_latency_ms": round(relayed["latency_ms"], 3),
            "direct_latency_ms": round(direct["latency_ms"], 3),
            "relayed_bandwidth_MBps": round(relayed["bandwidth_MBps"], 2),
            "direct_bandwidth_MBps": round(direct["bandwidth_MBps"], 2),
            "gateways": relayed["gateways"],
        }
    )
    # the route really goes through both site gateways
    assert relayed["hops"] == 3
    assert relayed["gateways"] == ["ra-gw", "gb-gw"]
    # latency: pays the WAN once plus two cheap LAN legs and relay work
    assert relayed["latency_ms"] > direct["latency_ms"]
    assert relayed["latency_ms"] < direct["latency_ms"] + 2.0  # LAN legs are sub-ms
    # bandwidth: WAN stays the bottleneck; the relays must not collapse it.
    # (On a short transfer the relayed stream can slightly beat the direct
    # one — the gateway's chunk pacing softens TCP slow start — so the upper
    # bound is the physical Ethernet-100 access-link ceiling, not the direct
    # figure.)
    assert relayed["bandwidth_MBps"] > 0.5 * direct["bandwidth_MBps"]
    assert relayed["bandwidth_MBps"] < 12.6
