"""EXP-VRP — §5 text: the lossy trans-continental link.

"The link exhibits a typical loss-rate of 5-10 %.  With TCP/IP and plain
sockets, we get 150 KB/s; if we give up some reliability and allow up to
10 % loss with VRP, we get an average of 500 KB/s on the same link, ie.
three times more."
"""


from repro.core import paper_lossy_pair
from repro.methods import register_method_drivers

TRANSFER = 1_000_000


def _bandwidth(method: str, tolerance: float = 0.10, loss_rate: float = 0.07) -> float:
    """KB/s achieved by a bulk transfer over the lossy link."""
    fw, group = paper_lossy_pair(loss_rate=loss_rate)
    for host in group:
        register_method_drivers(fw.node(host.name), vrp_tolerance=tolerance)
    n0, n1 = fw.node(group[0].name), fw.node(group[1].name)
    listener = n1.vlink_listen(9200)

    def scenario():
        accept_op = listener.accept()
        client = yield n0.vlink_connect(n1, 9200, method=method)
        server = yield accept_op
        t0 = fw.sim.now
        sent = 0
        while sent < TRANSFER:
            n = min(200_000, TRANSFER - sent)
            client.write(b"x" * n)
            sent += n
        data = yield server.read(TRANSFER)
        assert len(data) == TRANSFER
        return TRANSFER / (fw.sim.now - t0) / 1e3

    return fw.sim.run(until=fw.sim.process(scenario()), max_time=3600)


def test_vrp_vs_tcp_on_lossy_link(benchmark):
    def measure():
        return {"tcp": _bandwidth("sysio"), "vrp": _bandwidth("vrp", tolerance=0.10)}

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "tcp_KBps": round(r["tcp"], 1),
            "vrp_KBps": round(r["vrp"], 1),
            "speedup": round(r["vrp"] / r["tcp"], 2),
            "paper_tcp_KBps": 150.0,
            "paper_vrp_KBps": 500.0,
            "paper_speedup": 3.3,
        }
    )
    assert 80 < r["tcp"] < 260          # around the paper's 150 KB/s
    assert 300 < r["vrp"] < 700         # around the paper's 500 KB/s
    assert r["vrp"] > 2.0 * r["tcp"]    # "three times more" (shape: >= 2x)


def test_vrp_tolerance_sweep(benchmark):
    """Ablation of VRP's tunable knob: lower tolerance costs bandwidth
    (retransmissions) but reduces the delivered loss to zero."""

    def measure():
        return {tol: _bandwidth("vrp", tolerance=tol) for tol in (0.0, 0.05, 0.10)}

    sweep = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["bandwidth_KBps_by_tolerance"] = {
        str(k): round(v, 1) for k, v in sweep.items()
    }
    assert sweep[0.10] >= sweep[0.0]          # tolerating loss never hurts
    assert sweep[0.0] > 160                   # even fully reliable VRP beats TCP's ~150 KB/s
