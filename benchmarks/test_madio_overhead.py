"""EXP-MADIO — §5/§4.1 text: "the overhead of MadIO over plain Madeleine is
less than 0.1 µs", thanks to header combining.

The benchmark measures the one-way latency of a small message at three
levels — plain Madeleine, MadIO with header combining (the default), MadIO
without header combining (ablation) — and checks that multiplexing is
essentially free when headers are combined and measurably more expensive
when they are not.
"""


from repro.simnet.engine import Simulator
from repro.simnet.host import Host, HostGroup
from repro.simnet.networks import Myrinet2000
from repro.madeleine import MadeleineDriver
from repro.arbitration import MadIO, NetAccessCore


def _pair():
    sim = Simulator()
    net = Myrinet2000(sim)
    a, b = Host(sim, "n0"), Host(sim, "n1")
    net.connect(a)
    net.connect(b)
    return sim, net, a, b, HostGroup("g", [a, b])


def one_way_madeleine():
    sim, net, a, b, group = _pair()
    ch_a = MadeleineDriver(a).open_channel("bench", net, group)
    ch_b = MadeleineDriver(b).open_channel("bench", net, group)
    out = {}
    ch_b.set_receive_callback(lambda inc, d: out.setdefault("t", d.ready_time()))
    ch_a.send(1, b"H" * 8, b"x" * 8)
    sim.run()
    return out["t"]


def one_way_madio(combine: bool):
    sim, net, a, b, group = _pair()
    ma = MadIO(NetAccessCore(a), combine_headers=combine)
    mb = MadIO(NetAccessCore(b), combine_headers=combine)
    ma.attach(net, group)
    mb.attach(net, group)
    ca = ma.open_logical_channel("bench", net)
    cb = mb.open_logical_channel("bench", net)
    out = {}
    cb.set_receive_callback(lambda s, h, body, d: out.setdefault("t", d.ready_time()))
    ca.send(1, b"H" * 8, b"x" * 8)
    sim.run()
    return out["t"]


def test_madio_multiplexing_overhead(benchmark):
    def measure():
        return {
            "madeleine_us": one_way_madeleine() * 1e6,
            "madio_combined_us": one_way_madio(True) * 1e6,
            "madio_uncombined_us": one_way_madio(False) * 1e6,
        }

    r = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    overhead_combined = r["madio_combined_us"] - r["madeleine_us"]
    overhead_uncombined = r["madio_uncombined_us"] - r["madeleine_us"]
    benchmark.extra_info.update(
        {
            **{k: round(v, 3) for k, v in r.items()},
            "madio_overhead_us": round(overhead_combined, 3),
            "madio_overhead_no_combining_us": round(overhead_uncombined, 3),
            "paper_claim": "MadIO - Madeleine < 0.1 us",
        }
    )
    # the multiplexing itself (excluding the NetAccess dispatch accounting,
    # which plain Madeleine does not pay) stays under 0.1 us; even including
    # it the total is tiny
    assert overhead_combined < 0.30
    assert overhead_combined - 0.16 < 0.10  # 0.16 us is the shared dispatch cost
    # the ablation: separate headers cost measurably more than combined ones
    assert overhead_uncombined > overhead_combined
