"""The per-host Madeleine driver, channels and connections.

Madeleine owns the parallel-paradigm (SAN) NICs of a host and exposes
*channels*: communication domains over one network for a fixed group of
hosts.  The number of channels is limited by the hardware ("2 over Myrinet,
1 over SCI" — §4.1); providing an arbitrary number of logical channels on
top is precisely the job of the MadIO arbitration subsystem.

Cost model (calibrated so that the one-way latency of the stack above lands
on the paper's Table 1 figures):

* per-message send / receive software overhead ≈ 0.85 µs each,
* per-segment packing overhead ≈ 0.05 µs,
* a per-byte pipelining inefficiency equivalent to a 12 GB/s copy on each
  side, which brings the 250 MB/s Myrinet-2000 wire down to the ≈240 MB/s
  plateau the paper reports,
* a rendezvous handshake (one extra control round-trip) for messages larger
  than 32 KB, as real Madeleine/GM does for zero-copy transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.simnet.cost import Cost, MB, MICROSECOND, KB
from repro.simnet.host import Host, HostGroup
from repro.simnet.network import Delivery, Network, PARADIGM_PARALLEL
from repro.madeleine.message import (
    MadIncoming,
    MadMessage,
    MadeleineError,
    segment_overhead,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import SimEvent


MADELEINE_SERVICE = "madeleine"


@dataclass
class MadeleineCostModel:
    """Software cost parameters of the Madeleine library itself."""

    send_overhead: float = 0.85 * MICROSECOND
    recv_overhead: float = 0.85 * MICROSECOND
    per_segment_overhead: float = 0.05 * MICROSECOND
    pipeline_copy_bandwidth: float = 12_000.0 * MB
    rendezvous_threshold: int = 32 * KB
    rendezvous_control_overhead: float = 1.0 * MICROSECOND


class _ChannelState:
    """State shared by every endpoint of one Madeleine channel."""

    def __init__(self, name: str, network: Network, group: HostGroup):
        self.name = name
        self.network = network
        self.group = group
        self.endpoints: Dict[Host, "MadChannel"] = {}

    def endpoint_for(self, host: Host) -> Optional["MadChannel"]:
        return self.endpoints.get(host)


def _channel_registry(network: Network) -> Dict[str, _ChannelState]:
    registry = getattr(network, "_madeleine_channels", None)
    if registry is None:
        registry = {}
        setattr(network, "_madeleine_channels", registry)
    return registry


class MadeleineDriver:
    """Per-host instance of the Madeleine library (owner of the SAN NICs)."""

    def __init__(self, host: Host, cost_model: Optional[MadeleineCostModel] = None):
        self.host = host
        self.sim = host.sim
        self.costs = cost_model or MadeleineCostModel()
        self._channels: Dict[Tuple[str, str], "MadChannel"] = {}
        self._owned_networks: List[Network] = []
        host.register_service(MADELEINE_SERVICE, self)

    # -- NIC ownership ---------------------------------------------------------
    def _claim(self, network: Network) -> None:
        if network in self._owned_networks:
            return
        if network.paradigm != PARADIGM_PARALLEL:
            raise MadeleineError(
                f"Madeleine drives parallel-paradigm (SAN) networks only, not {network.name!r}"
            )
        nic = network.nic_of(self.host)
        nic.set_receive_handler(self._handle_delivery, owner=MADELEINE_SERVICE)
        self._owned_networks.append(network)

    def owned_networks(self) -> List[Network]:
        return list(self._owned_networks)

    # -- channel management -------------------------------------------------------
    def open_channel(self, name: str, network: Network, group: HostGroup) -> "MadChannel":
        """Open (or join) the channel ``name`` over ``network`` for ``group``.

        Every host of the group must call this with identical arguments, as
        in the real library where channels are declared in a configuration
        file common to the session.
        """
        if not group.contains(self.host):
            raise MadeleineError(
                f"host {self.host.name!r} is not a member of group {group.name!r}"
            )
        self._claim(network)
        registry = _channel_registry(network)
        state = registry.get(name)
        if state is None:
            hw_limit = getattr(network, "hardware_channels", 1)
            active = len(registry)
            if active >= hw_limit:
                raise MadeleineError(
                    f"network {network.name!r} supports only {hw_limit} hardware channel(s); "
                    f"cannot open {name!r} — use MadIO logical multiplexing instead"
                )
            state = _ChannelState(name, network, group)
            registry[name] = state
        else:
            if state.group is not group and [h.name for h in state.group] != [
                h.name for h in group
            ]:
                raise MadeleineError(
                    f"channel {name!r} already open with a different group"
                )
        endpoint = MadChannel(self, state)
        state.endpoints[self.host] = endpoint
        self._channels[(network.name, name)] = endpoint
        return endpoint

    def channel(self, network: Network, name: str) -> "MadChannel":
        return self._channels[(network.name, name)]

    # -- receive path -----------------------------------------------------------------
    def _handle_delivery(self, delivery: Delivery) -> None:
        delivery.traverse(MADELEINE_SERVICE)
        channel_key = delivery.frame.channel
        if not isinstance(channel_key, tuple) or len(channel_key) != 2 or channel_key[0] != "mad":
            delivery.frame.network.record_drop(delivery.frame, "madeleine-bad-channel")
            return
        endpoint = self._channels.get((delivery.frame.network.name, channel_key[1]))
        if endpoint is None:
            delivery.frame.network.record_drop(delivery.frame, "madeleine-no-channel")
            return
        endpoint._receive(delivery)


class MadConnection:
    """Bookkeeping for one (src, dst) pair inside a channel."""

    def __init__(self, channel: "MadChannel", peer_rank: int):
        self.channel = channel
        self.peer_rank = peer_rank
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.bytes_received = 0


class MadChannel:
    """One host's endpoint on a Madeleine channel."""

    def __init__(self, driver: MadeleineDriver, state: _ChannelState):
        self.driver = driver
        self.state = state
        self.host = driver.host
        self.sim = driver.sim
        self._receive_callback: Optional[Callable[[MadIncoming, Delivery], None]] = None
        self._connections: Dict[int, MadConnection] = {}
        self._pending: List[Tuple[MadIncoming, Delivery]] = []

    # -- identity -----------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.state.name

    @property
    def network(self) -> Network:
        return self.state.network

    @property
    def group(self) -> HostGroup:
        return self.state.group

    @property
    def rank(self) -> int:
        """Rank of the local host inside the channel's group."""
        return self.group.index_of(self.host)

    @property
    def size(self) -> int:
        return len(self.group)

    def connection(self, peer_rank: int) -> MadConnection:
        conn = self._connections.get(peer_rank)
        if conn is None:
            conn = MadConnection(self, peer_rank)
            self._connections[peer_rank] = conn
        return conn

    # -- send path ---------------------------------------------------------------------
    def begin_packing(self, dst_rank: int) -> MadMessage:
        """Start building a message towards ``dst_rank``."""
        if not (0 <= dst_rank < self.size):
            raise MadeleineError(f"destination rank {dst_rank} outside group of size {self.size}")
        if dst_rank == self.rank:
            raise MadeleineError("Madeleine channels do not loop back to the local rank")
        return MadMessage(dst_rank, dst_name=self.group[dst_rank].name)

    def end_packing(self, message: MadMessage, extra_cost: Optional[Cost] = None) -> "SimEvent":
        """Serialise and transmit ``message``; the returned event fires when the
        send-side buffers are reusable (local completion)."""
        costs = self.driver.costs
        payload = message.finish()
        cost = Cost()
        if extra_cost is not None:
            cost.merge(extra_cost)
        cost.charge(costs.send_overhead, "madeleine.send")
        cost.charge(costs.per_segment_overhead * message.segment_count, "madeleine.pack")
        cost.charge_copy(len(payload), costs.pipeline_copy_bandwidth, "madeleine.pipeline")
        if message.payload_bytes > costs.rendezvous_threshold:
            cost.charge(
                2.0 * self.network.latency + costs.rendezvous_control_overhead,
                "madeleine.rendezvous",
            )
        dst_host = self.group[message.dst_rank]
        self.network.transmit(
            self.host,
            dst_host,
            payload,
            channel=("mad", self.name),
            send_cost=cost,
            meta={"src_rank": self.rank, "segments": message.segment_count},
        )
        conn = self.connection(message.dst_rank)
        conn.messages_sent += 1
        conn.bytes_sent += message.payload_bytes
        done = self.sim.event(name=f"mad-send({message.payload_bytes}B)")
        done.succeed(message.payload_bytes, delay=cost.seconds)
        return done

    def send(self, dst_rank: int, *buffers: bytes, express_first: bool = True) -> "SimEvent":
        """Convenience: pack ``buffers`` (first one express, rest cheaper) and send."""
        msg = self.begin_packing(dst_rank)
        for idx, buf in enumerate(buffers):
            if idx == 0 and express_first:
                msg.pack_express(buf)
            else:
                msg.pack_cheaper(buf)
        return self.end_packing(msg)

    # -- receive path --------------------------------------------------------------------
    def set_receive_callback(self, fn: Callable[[MadIncoming, Delivery], None]) -> None:
        """Install the single consumer of this channel (MadIO, or a test)."""
        self._receive_callback = fn
        while self._pending and self._receive_callback is not None:
            incoming, delivery = self._pending.pop(0)
            self._receive_callback(incoming, delivery)

    def _receive(self, delivery: Delivery) -> None:
        costs = self.driver.costs
        frame = delivery.frame
        delivery.traverse(f"mad-channel-{self.name}")
        delivery.cost.charge(costs.recv_overhead, "madeleine.recv")
        nsegs = frame.meta.get("segments", 1)
        delivery.cost.charge(costs.per_segment_overhead * nsegs, "madeleine.unpack")
        payload_len = max(0, frame.nbytes - segment_overhead(nsegs))
        delivery.cost.charge_copy(
            payload_len, costs.pipeline_copy_bandwidth, "madeleine.pipeline"
        )
        incoming = MadIncoming(
            src_rank=frame.meta.get("src_rank", -1),
            raw=frame.payload,
            src_name=frame.src.name,
        )
        conn = self.connection(incoming.src_rank)
        conn.messages_received += 1
        conn.bytes_received += incoming.payload_bytes
        if self._receive_callback is None:
            self._pending.append((incoming, delivery))
        else:
            self._receive_callback(incoming, delivery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MadChannel {self.name!r} on {self.network.name} rank={self.rank}/{self.size}>"
