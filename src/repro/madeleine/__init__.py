"""A Madeleine-like high-performance communication library.

PadicoTM builds its parallel-paradigm arbitration subsystem (MadIO) on the
Madeleine library [Aumage et al., CLUSTER 2000]: a portable message-passing
layer for SANs (Myrinet/GM, BIP, SCI, VIA) offering *incremental packing*
with explicit semantics and as many communication channels as the hardware
allows (e.g. two over Myrinet, one over SCI).

This package re-implements that substrate on top of :mod:`repro.simnet`:

* :class:`~repro.madeleine.driver.MadeleineDriver` — the per-host library
  instance, owner of the SAN NICs.
* :class:`~repro.madeleine.driver.MadChannel` — a hardware-backed channel
  over one SAN for a fixed set of hosts (the count is limited by the
  network's ``hardware_channels``; logical multiplexing is MadIO's job).
* :class:`~repro.madeleine.message.MadMessage` /
  :class:`~repro.madeleine.message.MadIncoming` — incremental packing and
  unpacking with ``express`` / ``cheaper`` semantics.
"""

from repro.madeleine.message import (
    PackMode,
    MadMessage,
    MadIncoming,
    MadeleineError,
)
from repro.madeleine.driver import (
    MadeleineDriver,
    MadChannel,
    MadConnection,
    MADELEINE_SERVICE,
)

__all__ = [
    "PackMode",
    "MadMessage",
    "MadIncoming",
    "MadeleineError",
    "MadeleineDriver",
    "MadChannel",
    "MadConnection",
    "MADELEINE_SERVICE",
]
