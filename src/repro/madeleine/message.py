"""Incremental packing / unpacking messages (the Madeleine API style).

Madeleine's key interface idea — which the paper's Circuit abstract interface
inherits — is *incremental packing with explicit semantics*: the sender packs
several buffers into one logical message, annotating each with how eagerly it
must be available on the receive side:

``EXPRESS``
    the receiver needs this piece immediately to decide how to continue
    unpacking (headers, sizes, routing information).  Express data may be
    aggregated with other express data and is delivered first.

``CHEAPER``
    the receiver will ask for this piece later; the library is free to use
    the cheapest strategy (zero-copy / rendezvous for large payloads).

The pack/unpack calls must match pairwise on both sides — enforced here, and
checked by property-based tests.
"""

from __future__ import annotations

import enum
import struct
from typing import List, Optional, Tuple


class MadeleineError(RuntimeError):
    """Protocol misuse (mismatched pack/unpack, channel errors, ...)."""


class PackMode(enum.Enum):
    """Packing semantics for one buffer of a message."""

    EXPRESS = "express"
    CHEAPER = "cheaper"

    @property
    def wire_code(self) -> int:
        return 0 if self is PackMode.EXPRESS else 1

    @classmethod
    def from_wire(cls, code: int) -> "PackMode":
        if code == 0:
            return cls.EXPRESS
        if code == 1:
            return cls.CHEAPER
        raise MadeleineError(f"unknown pack mode code {code}")


#: wire header in front of every packed segment: (mode, length)
_SEGMENT_HEADER = struct.Struct("!BI")


class MadMessage:
    """A message under construction on the send side (incremental packing)."""

    def __init__(self, dst_rank: int, dst_name: str = ""):
        self.dst_rank = dst_rank
        self.dst_name = dst_name
        self._segments: List[Tuple[PackMode, bytes]] = []
        self._finished = False

    def pack(self, data: bytes, mode: PackMode = PackMode.CHEAPER) -> "MadMessage":
        """Append one buffer to the message."""
        if self._finished:
            raise MadeleineError("pack() after end_packing()")
        if not isinstance(mode, PackMode):
            raise MadeleineError(f"mode must be a PackMode, got {mode!r}")
        self._segments.append((mode, bytes(data)))
        return self

    def pack_express(self, data: bytes) -> "MadMessage":
        return self.pack(data, PackMode.EXPRESS)

    def pack_cheaper(self, data: bytes) -> "MadMessage":
        return self.pack(data, PackMode.CHEAPER)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def payload_bytes(self) -> int:
        return sum(len(data) for _, data in self._segments)

    @property
    def express_bytes(self) -> int:
        return sum(len(d) for m, d in self._segments if m is PackMode.EXPRESS)

    def segments(self) -> List[Tuple[PackMode, bytes]]:
        return list(self._segments)

    def finish(self) -> bytes:
        """Serialise the message for the wire (called by ``end_packing``)."""
        if self._finished:
            raise MadeleineError("end_packing() called twice")
        self._finished = True
        return encode_segments(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MadMessage to={self.dst_name or self.dst_rank} segs={self.segment_count} {self.payload_bytes}B>"


class MadIncoming:
    """A received message being unpacked incrementally on the receive side."""

    def __init__(self, src_rank: int, raw: bytes, src_name: str = ""):
        self.src_rank = src_rank
        self.src_name = src_name
        self._segments = decode_segments(raw)
        self._cursor = 0
        self._finished = False

    def unpack(self, mode: Optional[PackMode] = None) -> bytes:
        """Extract the next buffer; ``mode`` (if given) must match the sender's."""
        if self._finished:
            raise MadeleineError("unpack() after end_unpacking()")
        if self._cursor >= len(self._segments):
            raise MadeleineError("unpack() past the end of the message")
        seg_mode, data = self._segments[self._cursor]
        if mode is not None and mode is not seg_mode:
            raise MadeleineError(
                f"unpack mode mismatch at segment {self._cursor}: "
                f"sender packed {seg_mode.value}, receiver expects {mode.value}"
            )
        self._cursor += 1
        return data

    def unpack_express(self) -> bytes:
        return self.unpack(PackMode.EXPRESS)

    def unpack_cheaper(self) -> bytes:
        return self.unpack(PackMode.CHEAPER)

    @property
    def remaining_segments(self) -> int:
        return len(self._segments) - self._cursor

    @property
    def payload_bytes(self) -> int:
        return sum(len(d) for _, d in self._segments)

    def peek_mode(self) -> PackMode:
        if self._cursor >= len(self._segments):
            raise MadeleineError("no segment left to peek at")
        return self._segments[self._cursor][0]

    def end_unpacking(self, require_drained: bool = False) -> None:
        """Finish unpacking; with ``require_drained`` every segment must have
        been consumed (useful to catch protocol mismatches in tests)."""
        if require_drained and self._cursor != len(self._segments):
            raise MadeleineError(
                f"end_unpacking() with {self.remaining_segments} segment(s) not consumed"
            )
        self._finished = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MadIncoming from={self.src_name or self.src_rank} segs={len(self._segments)}>"


def encode_segments(segments: List[Tuple[PackMode, bytes]]) -> bytes:
    """Serialise (mode, data) segments into one contiguous wire buffer."""
    parts: List[bytes] = []
    for mode, data in segments:
        parts.append(_SEGMENT_HEADER.pack(mode.wire_code, len(data)))
        parts.append(data)
    return b"".join(parts)


def decode_segments(raw: bytes) -> List[Tuple[PackMode, bytes]]:
    """Inverse of :func:`encode_segments` (validates framing)."""
    segments: List[Tuple[PackMode, bytes]] = []
    offset = 0
    size = len(raw)
    while offset < size:
        if offset + _SEGMENT_HEADER.size > size:
            raise MadeleineError("truncated segment header")
        code, length = _SEGMENT_HEADER.unpack_from(raw, offset)
        offset += _SEGMENT_HEADER.size
        if offset + length > size:
            raise MadeleineError("truncated segment payload")
        segments.append((PackMode.from_wire(code), raw[offset : offset + length]))
        offset += length
    return segments


def segment_overhead(segment_count: int) -> int:
    """Bytes of framing added by :func:`encode_segments` for ``segment_count`` segments."""
    return segment_count * _SEGMENT_HEADER.size
