"""TelemetryHub: the flight recorder's collection point.

Every instrumented subsystem (TCP stacks, the fluid controller, the
topology monitor, fault injectors, VLink managers, the partitioned kernel)
holds a ``telemetry`` attribute that is ``None`` by default; hot paths pay
one attribute check when recording is off.  When a hub is wired in, they
call :meth:`TelemetryHub.emit` with a kind string and flat JSON-compatible
fields.

Event shape
-----------

Each event is a flat dict::

    {"t": <virtual time, float>, "p": <partition>, "s": <per-partition seq>,
     "k": <kind>, ...kind-specific fields...}

``t`` is the *model* time of the fact (not necessarily the emission time:
the fluid fast path emits a committed epoch's per-round events when the
epoch resolves, stamped with the rounds' planned times), so the stream is
not globally t-sorted; analysis code canonicalizes order
(:func:`repro.telemetry.kpis.canonical_events`).

Determinism
-----------

On a single event loop, events append straight to :attr:`events` (and the
JSONL file, if one is attached).  On a partitioned kernel each shard
appends to its own buffer — shard-local, so the thread executor needs no
locks — and the facade drains the buffers at every window barrier, sorted
by ``(t, p, s)``: a deterministic function of per-shard streams that are
themselves trace-exact, so the merged stream is identical across the
round-robin and thread executors.

JSONL lines are written with sorted keys and no whitespace; floats
round-trip exactly through JSON, which is what makes replayed KPI output
byte-identical to the live run's (see :mod:`repro.telemetry.replay`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["TelemetryHub", "event_line"]


def event_line(ev: Dict[str, Any]) -> str:
    """The canonical JSONL encoding of one event (no trailing newline)."""
    return json.dumps(ev, sort_keys=True, separators=(",", ":"))


class TelemetryHub:
    """Collects typed telemetry events from an instrumented simulation.

    Parameters
    ----------
    sim:
        The simulator (single-loop or partitioned facade) whose clock and
        partition context stamp the events.
    jsonl_path:
        Optional path; when given, every event is also streamed to this
        file as one JSON line (written in commit order).
    engine_window:
        Virtual-time interval between ``engine.window`` samples (per-shard
        event/timer counter deltas).  ``None`` disables periodic sampling;
        a final cumulative sample is always taken by :meth:`flush`.
    """

    def __init__(
        self,
        sim,
        *,
        jsonl_path: Optional[str] = None,
        engine_window: Optional[float] = 0.25,
    ) -> None:
        self.sim = sim
        self.events: List[Dict[str, Any]] = []
        nparts = sim.partition_count
        self._nparts = nparts
        self._seq = [0] * nparts
        self._buffers: List[List[Dict[str, Any]]] = [[] for _ in range(nparts)]
        self._engine_window = engine_window
        self._next_engine = engine_window if engine_window is not None else None
        self._engine_prev: List[Optional[Dict[str, int]]] = [None] * nparts
        self._observed_networks: Dict[Any, Any] = {}
        self.jsonl_path = jsonl_path
        self._file = open(jsonl_path, "w", encoding="utf-8") if jsonl_path else None
        self.closed = False
        # process-executor worker replicas capture shard emissions locally
        # and ship them to the parent at each window barrier; None in the
        # parent / under in-process executors (see begin_worker_capture)
        self._worker_index: Optional[int] = None

    # -- collection -----------------------------------------------------------
    def emit(self, kind: str, t: Optional[float] = None, **fields: Any) -> None:
        """Record one event.  ``t`` defaults to the simulator clock."""
        sim = self.sim
        if self._worker_index is not None:
            tls = getattr(sim, "_tls", None)
            if tls is None or getattr(tls, "shard", None) is None:
                # barrier-context emission inside a worker replica (bus
                # consumers, hooks): every replica produces an identical
                # copy and the parent's is the authoritative one — drop
                # ours so the merged stream holds exactly one.
                return
        p: int = sim.current_partition
        s = self._seq[p]
        self._seq[p] = s + 1
        ev: Dict[str, Any] = {
            "t": float(sim.now if t is None else t),
            "p": p,
            "s": s,
            "k": kind,
        }
        ev.update(fields)
        if self._nparts == 1:
            self._commit(ev)
            if self._next_engine is not None and ev["t"] >= self._next_engine:
                self._sample_engine(ev["t"])
        else:
            # shard-local append; merged (deterministically) at the barrier
            self._buffers[p].append(ev)

    def _commit(self, ev: Dict[str, Any]) -> None:
        self.events.append(ev)
        if self._file is not None:
            self._file.write(event_line(ev) + "\n")

    def on_window_barrier(self, window_end: float) -> None:
        """Partitioned-kernel hook: drain shard buffers at a window barrier."""
        self._drain_buffers()
        if self._next_engine is not None and window_end >= self._next_engine:
            self._sample_engine(window_end)

    def _drain_buffers(self) -> None:
        pending: List[Dict[str, Any]] = []
        for buf in self._buffers:
            if buf:
                pending.extend(buf)
                del buf[:]
        if pending:
            pending.sort(key=lambda ev: (ev["t"], ev["p"], ev["s"]))
            for ev in pending:
                self._commit(ev)

    # -- engine counters ------------------------------------------------------
    def _sample_engine(self, now: float) -> None:
        """Emit per-shard ``engine.window`` counter deltas up to ``now``."""
        window = self._engine_window
        if window is not None:
            # advance to the next boundary strictly beyond `now`
            nxt = self._next_engine
            while nxt is not None and nxt <= now:
                nxt += window
            self._next_engine = nxt
        partition_stats = getattr(self.sim, "partition_stats", None)
        shards = partition_stats() if partition_stats is not None else [self.sim.stats()]
        for i, st in enumerate(shards):
            cur = st.as_dict()
            prev = self._engine_prev[i]
            self._engine_prev[i] = cur
            if prev == cur:
                # nothing happened on this shard since the last sample;
                # repeated flushes stay idempotent
                continue
            # events/timers/cancellations are windowed deltas; peak_pending
            # and wheel_rebuilds are cumulative (a peak has no useful delta)
            base = prev or {}
            self._commit(
                {
                    "t": float(now),
                    "p": self.sim.current_partition,
                    "s": self._bump_seq(),
                    "k": "engine.window",
                    "shard": i,
                    "events": cur["events_processed"] - base.get("events_processed", 0),
                    "timers": cur["timers_scheduled"] - base.get("timers_scheduled", 0),
                    "cancels": cur["cancellations"] - base.get("cancellations", 0),
                    "peak_pending": cur["peak_pending"],
                    "wheel_rebuilds": cur["wheel_rebuilds"],
                }
            )

    # -- process-executor plumbing --------------------------------------------
    def begin_worker_capture(self, index: int) -> None:
        """Switch this (fork-inherited) hub replica into worker-capture mode.

        Shard emissions buffer locally and are drained by
        :meth:`take_worker_events`; barrier-context emissions are dropped
        (the parent's copy is authoritative) and no JSONL stream is written
        from the worker."""
        self._worker_index = index
        self._file = None

    def take_worker_events(self) -> List[Dict[str, Any]]:
        """Drain and return every buffered shard emission (worker side)."""
        taken: List[Dict[str, Any]] = []
        for buf in self._buffers:
            if buf:
                taken.extend(buf)
                del buf[:]
        return taken

    def absorb_worker_events(self, events: List[Dict[str, Any]]) -> None:
        """Re-stamp worker-shipped events with this hub's per-partition
        sequence counters and buffer them for the barrier drain.

        Only the relative order of each partition's emissions matters for
        the ``(t, p, s)`` merge, and worker shard emissions always precede
        the parent's barrier-context emissions within a window, so
        restamping in arrival order reproduces the round-robin sequence
        assignment exactly."""
        for ev in events:
            p = ev["p"]
            ev["s"] = self._seq[p]
            self._seq[p] = ev["s"] + 1
            self._buffers[p].append(ev)

    def _bump_seq(self) -> int:
        p = self.sim.current_partition
        s = self._seq[p]
        self._seq[p] = s + 1
        return s

    # -- network attachment ---------------------------------------------------
    def observe_network(self, network) -> None:
        """Attach to ``network``'s observer fan-out (frames + losses)."""
        if network in self._observed_networks:
            return

        def _observer(net, kind, info, _hub=self):
            if kind == "frame":
                frame = info["frame"]
                meta = frame.meta
                begin = meta["tx_begin"]
                _hub.emit(
                    "link.tx",
                    t=begin,
                    net=net.name,
                    src=frame.src.name,
                    dst=frame.dst.name,
                    nbytes=frame.nbytes,
                    begin=begin,
                    end=meta["tx_end"],
                    qd=begin - net.sim.now,
                )
            elif kind == "blackhole":
                frame = info["frame"]
                _hub.emit(
                    "link.loss",
                    net=net.name,
                    nbytes=frame.nbytes,
                    reason="blackhole",
                )
            elif kind == "datagram-lost":
                _hub.emit(
                    "link.loss",
                    net=net.name,
                    nbytes=info.get("nbytes", 0),
                    reason=info.get("reason", "loss"),
                )
            # "tcp-burst" observations are consumed by passive probes; the
            # hub's flow.round / fluid.* events already carry that story.

        self._observed_networks[network] = network.add_observer(_observer)

    def release_networks(self) -> None:
        """Detach every observer installed by :meth:`observe_network`."""
        for network, fn in self._observed_networks.items():
            network.remove_observer(fn)
        self._observed_networks.clear()

    # -- lifecycle ------------------------------------------------------------
    def flush(self) -> None:
        """Drain shard buffers, take a final engine sample, flush the file."""
        self._drain_buffers()
        self._sample_engine(float(self.sim.now))
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Flush and close the JSONL file (idempotent)."""
        if self.closed:
            return
        self.flush()
        self.closed = True
        if self._file is not None:
            self._file.close()
            self._file = None

    def __len__(self) -> int:
        return len(self.events) + sum(len(b) for b in self._buffers)
