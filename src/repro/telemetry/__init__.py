"""Flight recorder: structured telemetry export, KPI analysis, replay.

The package has four layers (ISSUE 7 / ROADMAP item 4):

- :mod:`repro.telemetry.hub` — :class:`TelemetryHub`, the collection point.
  Instrumented subsystems hold a ``telemetry`` attribute that is ``None``
  when recording is off (hot paths gate on that single attribute check) and
  the hub when :meth:`repro.core.framework.PadicoFramework.enable_telemetry`
  wired it up.  Events are flat JSON-serializable dicts; on a partitioned
  kernel they collect in per-shard buffers merged deterministically at the
  window barriers, so the stream is executor-independent.
- :mod:`repro.telemetry.series` — :class:`MetricSeries`, compact windowed
  aggregation (sum/mean/p50/p99) with CSV/JSON dump.
- :mod:`repro.telemetry.kpis` — KPI computation over an event stream:
  per-link utilization curves, per-flow latency/goodput distributions,
  availability under churn, migration timelines.
- :mod:`repro.telemetry.replay` — deterministic reconstruction of the KPI
  view from a recorded JSONL trace, byte-identical to the live run's.
"""

from repro.telemetry.hub import TelemetryHub
from repro.telemetry.kpis import canonical_kpi_json, compute_kpis, invariant_view
from repro.telemetry.replay import read_trace, replay_kpis, verify_replay
from repro.telemetry.series import MetricSeries

__all__ = [
    "TelemetryHub",
    "MetricSeries",
    "compute_kpis",
    "invariant_view",
    "canonical_kpi_json",
    "read_trace",
    "replay_kpis",
    "verify_replay",
]
