"""KPI analysis over a telemetry event stream.

Input is a list of flat event dicts — live from
:attr:`repro.telemetry.hub.TelemetryHub.events` or re-read from a JSONL
trace (:func:`repro.telemetry.replay.read_trace`); the two produce
byte-identical KPI output because every value round-trips exactly through
JSON.

Determinism rules
-----------------

* Events are first put in *canonical order* (:func:`canonical_events`):
  sorted by ``(t, kind, canonical-json-of-fields)`` with the emission
  bookkeeping (``p``/``s``) excluded.  Identical event *multisets* —
  e.g. a packet-fidelity run and its hybrid twin, or the same scenario at
  1 vs N partitions — therefore produce identical float accumulation
  order, hence bit-identical sums.
* Percentiles are nearest-rank on sorted values; window bucketing is pure
  arithmetic.  No randomness, no wall-clock anywhere.

The output is a plain JSON-serializable dict; :func:`canonical_kpi_json`
is its canonical encoding, and :func:`invariant_view` is the subset that
is guaranteed identical across fidelities and partitionings (per-flow
completion instants and bytes, per-link frame/byte/busy totals).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.series import MetricSeries, percentile

__all__ = [
    "canonical_events",
    "compute_kpis",
    "invariant_view",
    "canonical_kpi_json",
]

#: churn.fault kinds that take a target down / bring it back
_DOWN_KINDS = {"fail-link", "kill-host"}
_UP_KINDS = {"recover-link", "revive-host"}


def _field_key(ev: Dict[str, Any]) -> str:
    fields = {k: v for k, v in ev.items() if k not in ("t", "p", "s")}
    return json.dumps(fields, sort_keys=True, separators=(",", ":"))


def canonical_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """A canonically ordered copy of ``events``.

    The order is a deterministic function of the event *multiset* alone:
    emission bookkeeping (partition, per-partition sequence) is excluded,
    so runs that produce the same facts in different emission orders —
    different partition counts, packet vs hybrid fidelity — canonicalize
    to the same list.
    """
    return sorted(events, key=lambda ev: (ev["t"], ev["k"], _field_key(ev)))


def compute_kpis(
    events: Iterable[Dict[str, Any]],
    *,
    curve_window: Optional[float] = None,
    horizon: Optional[float] = None,
) -> Dict[str, Any]:
    """Compute the KPI view of an event stream.

    ``horizon`` (virtual seconds) defaults to the latest time touched by
    any event; pass it explicitly when comparing runs whose trailing
    bookkeeping events end at different times.  ``curve_window`` sets the
    per-link utilization-curve bucket width (default: ``horizon / 20``).
    """
    evs = canonical_events(events)

    end = 0.0
    for ev in evs:
        t = ev["t"]
        if t > end:
            end = t
        e = ev.get("end")
        if e is not None and e > end:
            end = e
    if horizon is None:
        horizon = end
    if curve_window is None:
        curve_window = horizon / 20.0 if horizon > 0.0 else 1.0

    by_kind: Dict[str, int] = {}
    flows: Dict[str, Dict[str, Any]] = {}
    links: Dict[str, Dict[str, Any]] = {}
    curves: Dict[str, MetricSeries] = {}
    fault_timelines: Dict[str, List[List[Any]]] = {}
    migrations: Dict[str, List[float]] = {}
    vetoes: Dict[str, int] = {}
    monitor = {"pushes": 0, "link_down": 0, "link_up": 0}
    fluid = {
        "activations": 0,
        "invalidations": 0,
        "epochs": 0,
        "epoch_rounds": 0,
        "rollbacks": 0,
        "rounds_undone": 0,
        "packet_rounds": 0,
    }
    engine: Dict[int, Dict[str, int]] = {}

    def flow_rec(name: str) -> Dict[str, Any]:
        rec = flows.get(name)
        if rec is None:
            rec = flows[name] = {
                "opened": None,
                "closed": None,
                "first_send": None,
                "sent_bytes": 0,
                "completions": [],
                "bytes": 0,
                "rounds": 0,
                "lost_pkts": 0,
            }
        return rec

    def link_rec(name: str) -> Dict[str, Any]:
        rec = links.get(name)
        if rec is None:
            rec = links[name] = {
                "frames": 0,
                "bytes": 0,
                "busy": 0.0,
                "losses": 0,
                "lost_bytes": 0,
            }
        return rec

    for ev in evs:
        kind = ev["k"]
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if kind == "link.tx":
            rec = link_rec(ev["net"])
            rec["frames"] += 1
            rec["bytes"] += ev["nbytes"]
            begin, tx_end = ev["begin"], ev["end"]
            rec["busy"] += tx_end - begin
            series = curves.get(ev["net"])
            if series is None:
                series = curves[ev["net"]] = MetricSeries(ev["net"], curve_window)
            # split the occupancy interval across curve buckets
            w = curve_window
            i0, i1 = int(begin // w), int(tx_end // w)
            for i in range(i0, i1 + 1):
                lo = begin if begin > i * w else i * w
                hi = tx_end if tx_end < (i + 1) * w else (i + 1) * w
                if hi > lo:
                    series.add(lo, hi - lo)
        elif kind == "flow.complete":
            rec = flow_rec(ev["flow"])
            rec["completions"].append(ev["t"])
            rec["bytes"] += ev["nbytes"]
        elif kind == "flow.send":
            rec = flow_rec(ev["flow"])
            if rec["first_send"] is None:
                rec["first_send"] = ev["t"]
            rec["sent_bytes"] += ev["nbytes"]
        elif kind == "flow.open":
            rec = flow_rec(ev["flow"])
            rec["opened"] = ev["t"]
            rec["src"] = ev["src"]
            rec["dst"] = ev["dst"]
            rec["role"] = ev["role"]
        elif kind == "flow.close":
            flow_rec(ev["flow"])["closed"] = ev["t"]
        elif kind == "flow.round":
            rec = flow_rec(ev["flow"])
            rec["rounds"] += 1
            rec["lost_pkts"] += ev["lost"]
            fluid["packet_rounds"] += 1
        elif kind == "link.loss":
            rec = link_rec(ev["net"])
            rec["losses"] += 1
            rec["lost_bytes"] += ev["nbytes"]
        elif kind == "churn.fault":
            fault_timelines.setdefault(ev["target"], []).append([ev["t"], ev["fault"]])
        elif kind == "route.migrate":
            migrations.setdefault(ev["session"], []).append(ev["t"])
        elif kind == "route.dwell_veto":
            vetoes[ev["session"]] = vetoes.get(ev["session"], 0) + 1
        elif kind == "monitor.push":
            monitor["pushes"] += 1
        elif kind == "monitor.link_down":
            monitor["link_down"] += 1
        elif kind == "monitor.link_up":
            monitor["link_up"] += 1
        elif kind == "fluid.activate":
            fluid["activations"] += 1
        elif kind == "fluid.invalidate":
            fluid["invalidations"] += 1
        elif kind == "fluid.epoch":
            fluid["epochs"] += 1
            fluid["epoch_rounds"] += ev["rounds"]
        elif kind == "fluid.rollback":
            fluid["rollbacks"] += 1
            fluid["rounds_undone"] += ev["undone"]
        elif kind == "engine.window":
            cell = engine.setdefault(
                ev["shard"],
                {"events": 0, "timers": 0, "cancels": 0, "peak_pending": 0},
            )
            cell["events"] += ev["events"]
            cell["timers"] += ev["timers"]
            cell["cancels"] += ev["cancels"]
            if ev["peak_pending"] > cell["peak_pending"]:
                cell["peak_pending"] = ev["peak_pending"]

    # -- per-flow latency/goodput ---------------------------------------------
    latencies: List[float] = []
    goodputs: List[float] = []
    for rec in flows.values():
        rec["completions"].sort()
        if rec["completions"] and rec["first_send"] is not None:
            latency = rec["completions"][-1] - rec["first_send"]
            rec["latency"] = latency
            if latency > 0.0 and rec["bytes"]:
                rec["goodput"] = rec["bytes"] / latency
                goodputs.append(rec["goodput"])
            latencies.append(latency)
    latencies.sort()
    goodputs.sort()
    flow_summary: Dict[str, Any] = {"count": len(flows), "completed": len(latencies)}
    if latencies:
        flow_summary["latency_p50"] = percentile(latencies, 0.50)
        flow_summary["latency_p99"] = percentile(latencies, 0.99)
    if goodputs:
        flow_summary["goodput_p50"] = percentile(goodputs, 0.50)
        flow_summary["goodput_p99"] = percentile(goodputs, 0.99)

    # -- per-link utilization ---------------------------------------------------
    for name, rec in links.items():
        rec["utilization"] = rec["busy"] / horizon if horizon > 0.0 else 0.0
        series = curves.get(name)
        if series is not None:
            rec["curve"] = [
                {"t0": b["t0"], "busy": b["sum"], "util": b["sum"] / curve_window}
                for b in series.summarize()
            ]

    # -- availability during churn ---------------------------------------------
    availability: Dict[str, Any] = {}
    for target, timeline in fault_timelines.items():
        down_since: Optional[float] = None
        down_s = 0.0
        for t, kind in timeline:
            if kind in _DOWN_KINDS and down_since is None:
                down_since = t
            elif kind in _UP_KINDS and down_since is not None:
                down_s += t - down_since
                down_since = None
        if down_since is not None:
            down_s += horizon - down_since if horizon > down_since else 0.0
        availability[target] = {
            "faults": len(timeline),
            "down_s": down_s,
            "availability": 1.0 - down_s / horizon if horizon > 0.0 else 1.0,
            "timeline": timeline,
        }

    return {
        "horizon": horizon,
        "curve_window": curve_window,
        "events_total": len(evs),
        "by_kind": by_kind,
        "flows": flows,
        "flow_summary": flow_summary,
        "links": links,
        "availability": availability,
        "migrations": {
            session: {"count": len(times), "timeline": times}
            for session, times in migrations.items()
        },
        "dwell_vetoes": vetoes,
        "monitor": monitor,
        "fluid": fluid,
        "engine": {str(shard): cell for shard, cell in engine.items()},
    }


def invariant_view(kpis: Dict[str, Any]) -> Dict[str, Any]:
    """The KPI subset guaranteed identical across ``fidelity="packet"`` vs
    ``"hybrid"`` and across partition counts for the same seeded scenario:
    per-flow completion instants/bytes and per-link frame/byte/busy totals.
    (Monitor push timing, migration schedules and engine counters are
    legitimately fidelity-/partitioning-dependent and are excluded.)
    """
    return {
        "flows": {
            flow: {"completions": rec["completions"], "bytes": rec["bytes"]}
            for flow, rec in kpis["flows"].items()
        },
        "links": {
            net: {"frames": rec["frames"], "bytes": rec["bytes"], "busy": rec["busy"]}
            for net, rec in kpis["links"].items()
        },
    }


def canonical_kpi_json(kpis: Dict[str, Any]) -> str:
    """Canonical JSON encoding of a KPI dict (byte-comparable)."""
    return json.dumps(kpis, sort_keys=True, separators=(",", ":"))
