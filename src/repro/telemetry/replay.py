"""Deterministic replay: reconstruct the KPI view from a recorded trace.

A JSONL trace written by :class:`repro.telemetry.hub.TelemetryHub` is a
complete record of a run's telemetry: reading it back and running the same
KPI computation produces *byte-identical* output to the live run's,
because every event value survives the JSON round trip exactly (floats via
shortest-repr, ints as ints) and the KPI pipeline canonicalizes event
order before accumulating.  :func:`verify_replay` asserts that equality.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.kpis import canonical_kpi_json, compute_kpis

__all__ = ["read_trace", "replay_kpis", "verify_replay"]


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def replay_kpis(
    path: str,
    *,
    curve_window: Optional[float] = None,
    horizon: Optional[float] = None,
) -> Dict[str, Any]:
    """KPIs recomputed from a recorded trace."""
    return compute_kpis(read_trace(path), curve_window=curve_window, horizon=horizon)


def verify_replay(
    live_events: Iterable[Dict[str, Any]],
    path: str,
    *,
    curve_window: Optional[float] = None,
    horizon: Optional[float] = None,
) -> Dict[str, Any]:
    """Assert that replaying ``path`` reproduces the live KPI view exactly.

    Returns the replayed KPI dict.  Raises ``AssertionError`` with a
    field-level diff hint if the canonical KPI JSON differs by even a byte.
    """
    live = canonical_kpi_json(
        compute_kpis(live_events, curve_window=curve_window, horizon=horizon)
    )
    replayed_kpis = replay_kpis(path, curve_window=curve_window, horizon=horizon)
    replayed = canonical_kpi_json(replayed_kpis)
    if live != replayed:
        # find the first divergent byte for a useful failure message
        limit = min(len(live), len(replayed))
        at = next(
            (i for i in range(limit) if live[i] != replayed[i]),
            limit,
        )
        lo, hi = max(0, at - 60), at + 60
        raise AssertionError(
            "replayed KPI output diverges from the live run at byte "
            f"{at}:\n  live:     ...{live[lo:hi]}...\n"
            f"  replayed: ...{replayed[lo:hi]}..."
        )
    return replayed_kpis
