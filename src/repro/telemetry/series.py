"""MetricSeries: compact windowed aggregation of one scalar metric.

A :class:`MetricSeries` buckets ``(t, value)`` observations into fixed
virtual-time windows and summarizes each bucket as count/sum/mean/p50/p99.
Everything is deterministic: percentiles use the nearest-rank method on the
sorted bucket, and bucket boundaries are pure arithmetic on ``t``.

Used by :mod:`repro.telemetry.kpis` for per-link utilization curves and
per-flow distribution summaries; usable standalone for ad-hoc analysis::

    series = MetricSeries("rtt", window=0.5)
    series.add(1.2, 0.004)
    series.summarize()      # [{"t0": 1.0, "count": 1, ...}]
    series.to_csv(path)
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Union

__all__ = ["MetricSeries", "percentile"]


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of a sorted list."""
    if not sorted_values:
        raise ValueError("percentile of an empty list")
    rank = int(math.ceil(q * len(sorted_values)))
    if rank < 1:
        rank = 1
    return sorted_values[rank - 1]


class MetricSeries:
    """Windowed scalar series with deterministic summary statistics.

    ``window=None`` keeps everything in a single bucket (useful for
    whole-run distributions, e.g. per-flow goodput across flows).
    """

    def __init__(self, name: str, window: Optional[float] = None) -> None:
        if window is not None and window <= 0.0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.name = name
        self.window = window
        self._buckets: Dict[int, List[float]] = {}

    def add(self, t: float, value: float) -> None:
        """Record ``value`` observed at virtual time ``t``."""
        idx = 0 if self.window is None else int(t // self.window)
        self._buckets.setdefault(idx, []).append(float(value))

    def __len__(self) -> int:
        return sum(len(v) for v in self._buckets.values())

    def summarize(self) -> List[Dict[str, Union[float, int]]]:
        """Per-bucket summaries, ordered by bucket start time."""
        out: List[Dict[str, Union[float, int]]] = []
        for idx in sorted(self._buckets):
            values = sorted(self._buckets[idx])
            total = sum(values)
            out.append(
                {
                    "t0": 0.0 if self.window is None else idx * self.window,
                    "count": len(values),
                    "sum": total,
                    "mean": total / len(values),
                    "p50": percentile(values, 0.50),
                    "p99": percentile(values, 0.99),
                }
            )
        return out

    def to_json(self) -> str:
        """Canonical JSON dump (sorted keys, compact separators)."""
        payload = {"name": self.name, "window": self.window, "buckets": self.summarize()}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def to_csv(self, path: str) -> None:
        """Write the bucket summaries as a CSV file."""
        rows = self.summarize()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("t0,count,sum,mean,p50,p99\n")
            for row in rows:
                fh.write(
                    f"{row['t0']!r},{row['count']},{row['sum']!r},"
                    f"{row['mean']!r},{row['p50']!r},{row['p99']!r}\n"
                )
