"""SysIO: arbitrated, callback-based access to system sockets.

"Contrary to a widespread belief, using directly the socket API from the OS
does not bring full reentrance, multiplexing and cooperation. [...] To solve
these conflicts, SysIO manages a unique receipt loop that scans the opened
sockets and calls user-registered callback functions when a socket is
ready.  The callback-basedness guarantees that there is no reentrance issue
nor signals to mangle with." (§4.1)

:class:`SysIO` wraps the simulated OS TCP stack (:mod:`repro.simnet.tcp`).
Each open socket is represented by a :class:`SysSocket`; incoming data wakes
the socket's registered callback *through the NetAccess core*, which charges
the arbitration dispatch cost and keeps the fairness accounting that the
concurrency benchmark inspects.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.simnet.network import Network
from repro.simnet.tcp import TcpConnection, TcpListener, TcpStack, SERVICE_KEY as TCP_SERVICE
from repro.arbitration.netaccess import ArbitrationError, NetAccessCore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import SimEvent
    from repro.simnet.host import Host


SYSIO_SUBSYSTEM = "sysio"


class SysSocket:
    """A socket managed by the SysIO receipt loop."""

    def __init__(self, sysio: "SysIO", conn: TcpConnection, label: str = ""):
        self.sysio = sysio
        self.conn = conn
        self.sim = sysio.sim
        self.label = label or f"sys-sock-{conn.conn_id}"
        self._data_callback: Optional[Callable[["SysSocket"], None]] = None
        self._close_callback: Optional[Callable[["SysSocket"], None]] = None
        conn.set_data_callback(self._on_readable)
        conn.set_close_callback(self._on_closed)
        sysio._register_socket(self)

    # -- introspection ----------------------------------------------------------
    @property
    def host(self) -> "Host":
        return self.sysio.host

    @property
    def peer_name(self) -> str:
        return self.conn.peer_host.name

    @property
    def network(self) -> Network:
        return self.conn.network

    @property
    def closed(self) -> bool:
        return self.conn.closed

    def available(self) -> int:
        return self.conn.available()

    # -- sending -------------------------------------------------------------------
    def write(self, data: bytes) -> "SimEvent":
        """Write bytes on the socket; the event fires when the peer holds them."""
        self.sysio.bytes_sent += len(data)
        return self.conn.send(data)

    # -- receiving ------------------------------------------------------------------
    def set_data_callback(self, fn: Optional[Callable[["SysSocket"], None]]) -> None:
        """Register the "socket ready" callback run by the receipt loop."""
        self._data_callback = fn
        if fn is not None and self.conn.available() > 0:
            self.sysio._dispatch(self, fn)

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self.conn.read_available(limit)

    def recv(self, nbytes: Optional[int] = None) -> "SimEvent":
        return self._arbitrated(self.conn.recv(nbytes))

    def recv_exact(self, nbytes: int) -> "SimEvent":
        return self._arbitrated(self.conn.recv_exact(nbytes))

    def _arbitrated(self, inner: "SimEvent") -> "SimEvent":
        """Completion of a read still goes through the receipt loop: the
        NetAccess dispatch cost (and, in the no-arbitration ablation, the
        starvation penalty) applies to every socket readiness event."""
        outer = self.sim.event(name="sysio-read")

        def _done(ev) -> None:
            delay = self.sysio.core.dispatch_cost(SYSIO_SUBSYSTEM)
            self.sysio.dispatches += 1
            if ev.ok:
                outer.succeed(ev.value, delay=delay)
            else:
                outer.fail(ev.value, delay=delay)

        inner.add_callback(_done)
        return outer

    # -- lifecycle -----------------------------------------------------------------------
    def set_close_callback(self, fn: Optional[Callable[["SysSocket"], None]]) -> None:
        self._close_callback = fn

    def close(self) -> None:
        self.conn.close()
        self.sysio._unregister_socket(self)

    # -- internal: wired to the TCP stack ---------------------------------------------------
    def _on_readable(self, _conn: TcpConnection) -> None:
        if self._data_callback is not None:
            self.sysio._dispatch(self, self._data_callback)

    def _on_closed(self, _conn: TcpConnection) -> None:
        if self._close_callback is not None:
            self.sysio._dispatch(self, self._close_callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SysSocket {self.label} -> {self.peer_name} avail={self.available()}>"


class SysListener:
    """A listening socket whose accept events flow through the receipt loop."""

    def __init__(self, sysio: "SysIO", listener: TcpListener):
        self.sysio = sysio
        self.listener = listener
        self._accept_callback: Optional[Callable[[SysSocket], None]] = None
        listener.set_accept_callback(self._on_accept)

    @property
    def port(self) -> int:
        return self.listener.port

    def set_accept_callback(self, fn: Callable[[SysSocket], None]) -> None:
        self._accept_callback = fn

    def _on_accept(self, conn: TcpConnection) -> None:
        sock = SysSocket(self.sysio, conn, label=f"accepted:{self.port}")
        if self._accept_callback is not None:
            self.sysio._dispatch(sock, self._accept_callback)
        else:
            self.sysio._pending_accepts.setdefault(self.port, []).append(sock)

    def take_pending(self) -> List[SysSocket]:
        return self.sysio._pending_accepts.pop(self.port, [])

    def close(self) -> None:
        self.listener.close()


class SysIO:
    """The distributed-paradigm subsystem of NetAccess on one host."""

    def __init__(self, core: NetAccessCore, stack: Optional[TcpStack] = None):
        self.core = core
        self.host = core.host
        self.sim = core.sim
        self.stack = stack or self.host.get_service(TCP_SERVICE) or TcpStack(self.host)
        self._sockets: List[SysSocket] = []
        self._listeners: Dict[int, SysListener] = {}
        self._pending_accepts: Dict[int, List[SysSocket]] = {}
        self.bytes_sent = 0
        self.dispatches = 0
        core.register_subsystem(SYSIO_SUBSYSTEM)
        self.host.register_service(SYSIO_SUBSYSTEM, self, replace=True)

    # -- socket management ----------------------------------------------------------
    def listen(
        self, port: int, accept_callback: Optional[Callable[[SysSocket], None]] = None
    ) -> SysListener:
        """Open a listening socket; incoming connections invoke the callback."""
        if port in self._listeners:
            raise ArbitrationError(f"port {port} already registered with SysIO on {self.host.name}")
        listener = SysListener(self, self.stack.listen(port))
        if accept_callback is not None:
            listener.set_accept_callback(accept_callback)
        self._listeners[port] = listener
        return listener

    def connect(self, peer: "Host", port: int, network: Optional[Network] = None) -> "SimEvent":
        """Connect to ``peer:port``; the event succeeds with a :class:`SysSocket`."""
        done = self.sim.event(name=f"sysio-connect({peer.name}:{port})")
        attempt = self.stack.connect(peer, port, network=network)

        def _on_connected(ev) -> None:
            if ev.ok:
                sock = SysSocket(self, ev.value, label=f"connected:{peer.name}:{port}")
                done.succeed(sock)
            else:
                done.fail(ev.value)

        attempt.add_callback(_on_connected)
        return done

    def open_sockets(self) -> List[SysSocket]:
        """The sockets currently scanned by the receipt loop."""
        return list(self._sockets)

    def _register_socket(self, sock: SysSocket) -> None:
        self._sockets.append(sock)

    def _unregister_socket(self, sock: SysSocket) -> None:
        if sock in self._sockets:
            self._sockets.remove(sock)

    # -- the receipt loop ---------------------------------------------------------------
    def _dispatch(self, sock: SysSocket, fn: Callable[[SysSocket], None]) -> None:
        """Deliver one readiness callback through the NetAccess core."""
        self.dispatches += 1
        self.core.defer(SYSIO_SUBSYSTEM, fn, sock)

    # -- reporting -------------------------------------------------------------------------
    def describe(self) -> Dict[str, float]:
        return {
            "open_sockets": float(len(self._sockets)),
            "listeners": float(len(self._listeners)),
            "dispatches": float(self.dispatches),
            "bytes_sent": float(self.bytes_sent),
        }
