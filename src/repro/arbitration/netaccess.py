"""NetAccess core: fairness and interleaving between I/O subsystems.

The core of NetAccess "manages the threads with the polling loops.  It
enforces fairness between SysIO and MadIO.  The interleaving policy between
SysIO and MadIO is dynamically user-tunable through a configuration API to
give more priority to system sockets or high performance network depending
on the application." (§4.1)

In the reproduction the polling threads are not real threads; what matters
for the measurements is the *cost* a delivery pays to traverse the
arbitration layer and the way that cost shifts when several subsystems (or
several middleware systems inside one subsystem) are active at once:

* every callback dispatch costs the host's ``callback_overhead``;
* when more than one subsystem is registered, a delivery also pays an
  interleaving penalty proportional to how much polling time the *other*
  subsystems are granted — this is what the priority knob tunes;
* an explicit *competitive* baseline models the pre-PadicoTM situation the
  paper describes in §4.1 ("the one which does active polling holds near
  100 % of the CPU time; it will result in inequity or even deadlock"):
  deliveries to every subsystem other than the CPU hog are delayed by a
  large starvation penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.simnet.cost import Cost, MICROSECOND
from repro.simnet.host import Host
from repro.simnet.trace import Probe


NETACCESS_SERVICE = "netaccess"

#: time to poll one "other" subsystem once before reaching ours (seconds).
DEFAULT_POLL_SLICE = 0.05 * MICROSECOND

#: starvation penalty per delivery when an active-polling middleware
#: monopolises the CPU and no arbitration is present (competitive baseline).
DEFAULT_STARVATION_PENALTY = 500.0 * MICROSECOND


class ArbitrationError(RuntimeError):
    """Misuse of the arbitration layer."""


@dataclass
class SubsystemStats:
    """Per-subsystem accounting kept by the core."""

    name: str
    weight: float = 1.0
    dispatches: int = 0
    bytes_delivered: int = 0
    arbitration_time: float = 0.0
    last_dispatch_at: float = field(default=-1.0)


class NetAccessCore:
    """Per-host arbitration core (the single gateway to every NIC)."""

    def __init__(
        self,
        host: Host,
        *,
        poll_slice: float = DEFAULT_POLL_SLICE,
        starvation_penalty: float = DEFAULT_STARVATION_PENALTY,
    ):
        self.host = host
        self.sim = host.sim
        self.poll_slice = poll_slice
        self.starvation_penalty = starvation_penalty
        self._subsystems: Dict[str, SubsystemStats] = {}
        self._competitive_hog: Optional[str] = None
        self.probe = Probe()
        host.register_service(NETACCESS_SERVICE, self)

    # -- subsystem registry ------------------------------------------------------
    def register_subsystem(self, name: str, weight: float = 1.0) -> SubsystemStats:
        """Register an I/O subsystem (MadIO, SysIO, a Shmem subsystem, ...)."""
        if weight <= 0:
            raise ArbitrationError(f"subsystem weight must be positive, got {weight}")
        if name in self._subsystems:
            return self._subsystems[name]
        stats = SubsystemStats(name=name, weight=weight)
        self._subsystems[name] = stats
        return stats

    def subsystems(self) -> Dict[str, SubsystemStats]:
        return dict(self._subsystems)

    def stats(self, name: str) -> SubsystemStats:
        try:
            return self._subsystems[name]
        except KeyError:
            raise ArbitrationError(f"unknown subsystem {name!r}") from None

    # -- interleaving policy ---------------------------------------------------------
    def set_priority(self, name: str, weight: float) -> None:
        """Dynamically tune the polling interleave (§4.1 configuration API)."""
        if weight <= 0:
            raise ArbitrationError(f"priority weight must be positive, got {weight}")
        self.stats(name).weight = weight

    def priority(self, name: str) -> float:
        return self.stats(name).weight

    def set_competitive_baseline(self, hog: Optional[str]) -> None:
        """Enable the no-arbitration ablation: ``hog`` busy-polls and starves
        every other subsystem.  Pass ``None`` to restore cooperative mode."""
        if hog is not None and hog not in self._subsystems:
            raise ArbitrationError(f"unknown subsystem {hog!r}")
        self._competitive_hog = hog

    @property
    def competitive_hog(self) -> Optional[str]:
        return self._competitive_hog

    # -- dispatch cost -----------------------------------------------------------------
    def dispatch_cost(self, name: str) -> float:
        """Arbitration cost (seconds) of delivering one event to ``name``."""
        stats = self.stats(name)
        cost = self.host.cpu.callback_overhead
        if self._competitive_hog is not None and self._competitive_hog != name:
            # No cooperative arbitration: the busy-polling middleware owns the
            # CPU and everybody else waits for a scheduling quantum.
            cost += self.starvation_penalty
            return cost
        others_weight = sum(s.weight for n, s in self._subsystems.items() if n != name)
        if others_weight > 0:
            cost += self.poll_slice * (others_weight / stats.weight)
        return cost

    def charge_dispatch(self, name: str, cost: Cost, nbytes: int = 0) -> float:
        """Charge the arbitration cost for one delivery into ``cost`` and
        update the per-subsystem accounting.  Returns the seconds charged."""
        seconds = self.dispatch_cost(name)
        cost.charge(seconds, f"netaccess.{name}")
        stats = self.stats(name)
        stats.dispatches += 1
        stats.bytes_delivered += nbytes
        stats.arbitration_time += seconds
        stats.last_dispatch_at = self.sim.now
        self.probe("dispatch", subsystem=name, nbytes=nbytes, seconds=seconds)
        return seconds

    def defer(self, name: str, fn: Callable, *args) -> None:
        """Run ``fn`` after the arbitration dispatch delay (used by SysIO,
        whose underlying TCP deliveries have already consumed their own
        receive-side cost when the callback becomes runnable)."""
        seconds = self.dispatch_cost(name)
        stats = self.stats(name)
        stats.dispatches += 1
        stats.arbitration_time += seconds
        stats.last_dispatch_at = self.sim.now
        self.probe("dispatch", subsystem=name, nbytes=0, seconds=seconds)
        self.sim.call_later(seconds, fn, *args)

    # -- reporting ------------------------------------------------------------------------
    def fairness_report(self) -> Dict[str, Dict[str, float]]:
        """Snapshot used by tests and the concurrency benchmark."""
        report: Dict[str, Dict[str, float]] = {}
        for name, stats in self._subsystems.items():
            report[name] = {
                "weight": stats.weight,
                "dispatches": float(stats.dispatches),
                "bytes": float(stats.bytes_delivered),
                "arbitration_time": stats.arbitration_time,
            }
        return report

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        subs = ",".join(self._subsystems)
        return f"<NetAccessCore host={self.host.name} subsystems=[{subs}]>"


def netaccess_for(host: Host) -> NetAccessCore:
    """Return the host's NetAccess core, creating it on first use."""
    core = host.get_service(NETACCESS_SERVICE)
    if core is None:
        core = NetAccessCore(host)
    return core
