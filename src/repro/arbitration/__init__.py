"""NetAccess — the arbitration layer of the communication framework.

"Arbitration is performed by a layer which provides a consistent, reentrant
and multiplexed access to every networking resource" (§3.3).  In PadicoTM
this layer is called *NetAccess* and contains two subsystems plus a core:

* :class:`~repro.arbitration.netaccess.NetAccessCore` — manages the polling
  loops, enforces fairness between subsystems, exposes the user-tunable
  interleaving policy (§4.1, "NetAccess core").
* :class:`~repro.arbitration.madio.MadIO` — multiplexed access to
  high-performance (parallel-paradigm) networks on top of Madeleine, adding
  an arbitrary number of *logical* channels over the few hardware channels,
  with header combining so that multiplexing costs less than 0.1 µs.
* :class:`~repro.arbitration.sysio.SysIO` — callback-based access to system
  sockets (distributed-paradigm networks), replacing per-middleware polling
  or signal-driven I/O with a single receipt loop.

All arbitrated interfaces are callback-based ("à la Active Message").
"""

from repro.arbitration.netaccess import (
    NetAccessCore,
    ArbitrationError,
    SubsystemStats,
    NETACCESS_SERVICE,
)
from repro.arbitration.madio import MadIO, MadIOChannel, MADIO_SUBSYSTEM
from repro.arbitration.sysio import SysIO, SysSocket, SysListener, SYSIO_SUBSYSTEM

__all__ = [
    "NetAccessCore",
    "ArbitrationError",
    "SubsystemStats",
    "NETACCESS_SERVICE",
    "MadIO",
    "MadIOChannel",
    "MADIO_SUBSYSTEM",
    "SysIO",
    "SysSocket",
    "SysListener",
    "SYSIO_SUBSYSTEM",
]
