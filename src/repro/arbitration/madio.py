"""MadIO: multiplexed, arbitrated access to parallel-paradigm networks.

"Madeleine provides no more multiplexing channels than what is allowed by
the hardware (e.g. 2 over Myrinet, 1 over SCI).  MadIO adds a logical
multiplexing/demultiplexing facility which allows an arbitrary number of
communication channels.  Multiplexing on top of Madeleine adds a header to
all messages.  [...] We implement headers combining to aggregate headers
from several layers into a single packet.  Thus, multiplexing on top of
Madeleine adds virtually no overhead to middleware systems which send
headers anyway.  We actually measure that the overhead of MadIO over plain
Madeleine is less than 0.1 µs." (§4.1)

The reproduction keeps exactly that structure: MadIO opens *one* hardware
Madeleine channel per network and packs a small demultiplexing header in
front of the caller's own header.  With ``combine_headers=True`` (default)
both headers travel in the same express segment — one extra struct pack and
a few bytes; with header combining disabled (the ablation measured by
``benchmarks/test_madio_overhead.py``) the MadIO header becomes a separate
segment and costs an extra per-segment overhead on both sides.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.simnet.cost import Cost, MICROSECOND
from repro.simnet.host import HostGroup
from repro.simnet.network import Delivery, Network
from repro.madeleine import (
    MadChannel,
    MadIncoming,
    MadeleineDriver,
    MADELEINE_SERVICE,
    PackMode,
)
from repro.arbitration.netaccess import ArbitrationError, NetAccessCore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import SimEvent


MADIO_SUBSYSTEM = "madio"

#: demultiplexing header: logical-channel name length, user header length,
#: body length.
_MADIO_HEADER = struct.Struct("!HII")

#: software cost of the multiplexing / demultiplexing lookup, per side.
DEMUX_OVERHEAD = 0.03 * MICROSECOND


class MadIOChannel:
    """A logical channel multiplexed by MadIO over one hardware channel.

    Upper layers (the Circuit and VLink adapters) send ``(header, body)``
    pairs to a rank of the channel's group and receive them through a single
    registered callback — the callback-based style of the arbitrated
    interfaces.
    """

    def __init__(self, madio: "MadIO", name: str, network: Network, group: HostGroup):
        self.madio = madio
        self.name = name
        self.network = network
        self.group = group
        self._receive_callback: Optional[
            Callable[[int, bytes, bytes, Delivery], None]
        ] = None
        self._pending = []
        self.messages_sent = 0
        self.messages_received = 0

    @property
    def rank(self) -> int:
        return self.group.index_of(self.madio.host)

    @property
    def size(self) -> int:
        return len(self.group)

    def set_receive_callback(
        self, fn: Callable[[int, bytes, bytes, Delivery], None]
    ) -> None:
        """Install the consumer callback: ``fn(src_rank, header, body, delivery)``."""
        self._receive_callback = fn
        while self._pending and self._receive_callback is not None:
            args = self._pending.pop(0)
            self._receive_callback(*args)

    def send(
        self, dst_rank: int, header: bytes, body: bytes, extra_cost: Optional[Cost] = None
    ) -> "SimEvent":
        """Send one (header, body) message to ``dst_rank``.

        ``extra_cost`` lets the layer above (a VLink driver or Circuit
        adapter) charge its own send-side software cost onto the same
        operation, so that it delays the wire transmission exactly like the
        corresponding code path would.
        """
        return self.madio._send(self, dst_rank, header, body, extra_cost=extra_cost)

    def _deliver(self, src_rank: int, header: bytes, body: bytes, delivery: Delivery) -> None:
        self.messages_received += 1
        if self._receive_callback is None:
            self._pending.append((src_rank, header, body, delivery))
        else:
            self._receive_callback(src_rank, header, body, delivery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MadIOChannel {self.name!r} over {self.network.name} rank={self.rank}>"


class MadIO:
    """The parallel-paradigm subsystem of NetAccess on one host."""

    def __init__(
        self,
        core: NetAccessCore,
        driver: Optional[MadeleineDriver] = None,
        *,
        combine_headers: bool = True,
    ):
        self.core = core
        self.host = core.host
        self.sim = core.sim
        self.driver = (
            driver or self.host.get_service(MADELEINE_SERVICE) or MadeleineDriver(self.host)
        )
        self.combine_headers = combine_headers
        self._hw_channels: Dict[str, MadChannel] = {}
        self._hw_groups: Dict[str, HostGroup] = {}
        self._logical: Dict[Tuple[str, str], MadIOChannel] = {}
        core.register_subsystem(MADIO_SUBSYSTEM)
        self.host.register_service(MADIO_SUBSYSTEM, self, replace=True)

    # -- attachment -----------------------------------------------------------
    def attach(self, network: Network, group: HostGroup) -> None:
        """Open the single hardware channel MadIO uses on ``network``.

        Every host of ``group`` must attach with the same group (as for
        Madeleine channel configuration).
        """
        if network.name in self._hw_channels:
            return
        channel = self.driver.open_channel(f"madio:{network.name}", network, group)
        channel.set_receive_callback(self._on_madeleine_message)
        self._hw_channels[network.name] = channel
        self._hw_groups[network.name] = group

    def attached_networks(self):
        return list(self._hw_channels)

    def group_on(self, network: Network) -> HostGroup:
        try:
            return self._hw_groups[network.name]
        except KeyError:
            raise ArbitrationError(
                f"MadIO on {self.host.name} is not attached to {network.name!r}"
            ) from None

    # -- logical channels ---------------------------------------------------------
    def open_logical_channel(
        self, name: str, network: Network, group: Optional[HostGroup] = None
    ) -> MadIOChannel:
        """Create (or return) the logical channel ``name`` over ``network``."""
        if network.name not in self._hw_channels:
            if group is None:
                raise ArbitrationError(
                    f"MadIO.attach() has not been called for network {network.name!r}"
                )
            self.attach(network, group)
        key = (network.name, name)
        chan = self._logical.get(key)
        if chan is None:
            chan = MadIOChannel(self, name, network, group or self._hw_groups[network.name])
            self._logical[key] = chan
        return chan

    def logical_channels(self):
        return list(self._logical.values())

    # -- send path -------------------------------------------------------------------
    def _send(
        self,
        channel: MadIOChannel,
        dst_rank: int,
        header: bytes,
        body: bytes,
        extra_cost: Optional[Cost] = None,
    ) -> "SimEvent":
        hw = self._hw_channels.get(channel.network.name)
        if hw is None:
            raise ArbitrationError(
                f"MadIO not attached to network {channel.network.name!r} on host {self.host.name}"
            )
        name_bytes = channel.name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise ArbitrationError("logical channel name too long")
        madio_header = _MADIO_HEADER.pack(len(name_bytes), len(header), len(body)) + name_bytes

        cost = Cost()
        if extra_cost is not None:
            cost.merge(extra_cost)
        cost.charge(DEMUX_OVERHEAD, "madio.mux")

        # The logical channel's group may be a subset of the hardware
        # channel's group: translate the rank.
        dst_host = channel.group[dst_rank]
        hw_rank = hw.group.index_of(dst_host)
        msg = hw.begin_packing(hw_rank)
        if self.combine_headers:
            # Header combining: the MadIO header and the caller's header share
            # one express segment — a single extra struct pack, no extra
            # per-segment cost.
            msg.pack_express(madio_header + header)
        else:
            # Ablation: the MadIO header travels as its own segment, costing
            # one more per-segment overhead on each side.
            msg.pack_express(madio_header)
            msg.pack_express(header)
        if body:
            msg.pack_cheaper(body)
        channel.messages_sent += 1
        return hw.end_packing(msg, extra_cost=cost)

    # -- receive path ---------------------------------------------------------------------
    def _on_madeleine_message(self, incoming: MadIncoming, delivery: Delivery) -> None:
        delivery.traverse(MADIO_SUBSYSTEM)
        self.core.charge_dispatch(MADIO_SUBSYSTEM, delivery.cost, nbytes=incoming.payload_bytes)
        delivery.cost.charge(DEMUX_OVERHEAD, "madio.demux")

        first = incoming.unpack(PackMode.EXPRESS)
        name_len, header_len, body_len = _MADIO_HEADER.unpack_from(first, 0)
        offset = _MADIO_HEADER.size
        name = first[offset : offset + name_len].decode("utf-8")
        offset += name_len
        if offset < len(first):
            # combined headers: the caller's header follows in the same segment
            header = first[offset : offset + header_len]
        else:
            header = incoming.unpack(PackMode.EXPRESS) if header_len else b""
        body = incoming.unpack(PackMode.CHEAPER) if body_len else b""
        incoming.end_unpacking()

        network_name = delivery.frame.network.name
        chan = self._logical.get((network_name, name))
        if chan is None:
            delivery.frame.network.record_drop(delivery.frame, f"madio-unknown-channel:{name}")
            return
        # Translate the hardware-channel rank into the logical channel's group.
        hw_group = self._hw_groups[network_name]
        src_host = hw_group[incoming.src_rank]
        try:
            src_rank = chan.group.index_of(src_host)
        except ValueError:
            delivery.frame.network.record_drop(delivery.frame, f"madio-rank-outside-group:{name}")
            return
        chan._deliver(src_rank, header, body, delivery)
