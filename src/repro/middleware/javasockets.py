"""The JVM socket layer (Kaffe-style Java sockets over SysWrap).

§4.3: "A Java virtual machine (Kaffe 1.0.7) has been slightly modified for
use within PadicoTM".  What the paper measures (Figure 3, Table 1 "Java
socket") is the cost of ``java.net.Socket`` + ``DataInput/OutputStream``
traffic once the JVM's socket natives are redirected onto the framework: the
bandwidth stays near the wire plateau (≈238 MB/s) but each call pays a much
higher per-operation price (~40 µs one-way), coming from the JVM's socket
object machinery and JNI crossings.

This module reproduces that layer: :class:`JavaSocket` /
:class:`JavaServerSocket` mimic the java.net API surface;
:class:`DataOutputStream` / :class:`DataInputStream` provide the typed
read/write helpers used by the examples and benchmarks.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.simnet.cost import MB, MICROSECOND
from repro.personalities.syswrap import SysWrap, SysWrapSocket


@dataclass(frozen=True)
class JvmProfile:
    """Cost model of the JVM socket path (interpreter + JNI + stream objects)."""

    name: str = "Kaffe-1.0.7"
    #: per socket operation (read or write call), per side.
    per_call_overhead: float = 14.9 * MICROSECOND
    #: per-byte handling (stream buffer management, JNI array pinning).
    copy_bandwidth: float = 71_000.0 * MB


class JavaSocketError(OSError):
    """java.net.SocketException equivalent."""


class JavaSocket:
    """A ``java.net.Socket`` equivalent bound to the SysWrap personality."""

    def __init__(self, syswrap: SysWrap, profile: Optional[JvmProfile] = None,
                 _accepted: Optional[SysWrapSocket] = None):
        self.syswrap = syswrap
        self.sim = syswrap.sim
        self.profile = profile or JvmProfile()
        self._sock = _accepted if _accepted is not None else syswrap.socket()
        self.bytes_written = 0
        self.bytes_read = 0

    # -- connection management ----------------------------------------------------
    def connect(self, peer, port: int):
        """Connect to ``peer:port`` (generator completing with self)."""
        yield self.sim.timeout(self.profile.per_call_overhead)
        yield self._sock.connect((peer, port))
        return self

    def close(self) -> None:
        self._sock.close()

    # -- raw stream I/O --------------------------------------------------------------
    def write(self, data: bytes):
        """OutputStream.write: generator completing when the bytes are sent."""
        cost = self.profile.per_call_overhead + len(data) / self.profile.copy_bandwidth
        yield self.sim.timeout(cost)
        yield self._sock.send(bytes(data))
        self.bytes_written += len(data)
        return len(data)

    def read(self, nbytes: int):
        """InputStream.read (fully): generator returning exactly ``nbytes``."""
        data = yield self._sock.recv_exact(nbytes)
        cost = self.profile.per_call_overhead + len(data) / self.profile.copy_bandwidth
        yield self.sim.timeout(cost)
        self.bytes_read += len(data)
        return data

    @property
    def driver_name(self) -> Optional[str]:
        return self._sock.driver_name


class JavaServerSocket:
    """A ``java.net.ServerSocket`` equivalent."""

    def __init__(self, syswrap: SysWrap, port: int, profile: Optional[JvmProfile] = None):
        self.syswrap = syswrap
        self.sim = syswrap.sim
        self.port = port
        self.profile = profile or JvmProfile()
        self._sock = syswrap.socket()
        self._sock.bind((syswrap.host.name, port))
        self._sock.listen()

    def accept(self):
        """Generator completing with a connected :class:`JavaSocket`."""
        child, _peer = yield self._sock.accept()
        yield self.sim.timeout(self.profile.per_call_overhead)
        return JavaSocket(self.syswrap, self.profile, _accepted=child)


class DataOutputStream:
    """``java.io.DataOutputStream`` over a :class:`JavaSocket`."""

    def __init__(self, socket: JavaSocket):
        self.socket = socket

    def write_int(self, value: int):
        return self.socket.write(struct.pack("!i", value))

    def write_long(self, value: int):
        return self.socket.write(struct.pack("!q", value))

    def write_double(self, value: float):
        return self.socket.write(struct.pack("!d", value))

    def write_utf(self, value: str):
        raw = value.encode("utf-8")
        return self.socket.write(struct.pack("!H", len(raw)) + raw)

    def write_fully(self, data: bytes):
        return self.socket.write(data)


class DataInputStream:
    """``java.io.DataInputStream`` over a :class:`JavaSocket`."""

    def __init__(self, socket: JavaSocket):
        self.socket = socket
        self.sim = socket.sim

    def read_int(self):
        raw = yield from self.socket.read(4)
        return struct.unpack("!i", raw)[0]

    def read_long(self):
        raw = yield from self.socket.read(8)
        return struct.unpack("!q", raw)[0]

    def read_double(self):
        raw = yield from self.socket.read(8)
        return struct.unpack("!d", raw)[0]

    def read_utf(self):
        raw = yield from self.socket.read(2)
        (length,) = struct.unpack("!H", raw)
        data = yield from self.socket.read(length)
        return data.decode("utf-8")

    def read_fully(self, nbytes: int):
        data = yield from self.socket.read(nbytes)
        return data


class JavaSocketLayer:
    """The per-node entry point registered as the ``java-sockets`` middleware."""

    def __init__(
        self, node, profile: Optional[JvmProfile] = None, forced_method: Optional[str] = None
    ):
        self.node = node
        self.sim = node.sim
        self.profile = profile or JvmProfile()
        self.syswrap = SysWrap(node.vlink, forced_method=forced_method)

    def socket(self) -> JavaSocket:
        return JavaSocket(self.syswrap, self.profile)

    def server_socket(self, port: int) -> JavaServerSocket:
        return JavaServerSocket(self.syswrap, port, self.profile)
