"""A gSOAP-style SOAP/HTTP RPC middleware over SysWrap sockets.

§4.3 lists gSOAP 2.2 among the middleware systems ported unchanged onto
PadicoTM; §2.1 motivates it with "a SOAP-based monitoring system of a MPI
application".  SOAP is the extreme point of the distributed paradigm:
text-based XML encoding (expensive per byte, great interoperability),
HTTP-style framing, dynamic client/server connections.

The implementation really produces and parses XML envelopes (a small,
self-contained encoder/parser — no external libraries), frames them in
HTTP/1.1 POST requests, and charges an encoding cost per byte that reflects
text conversion overhead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.simnet.cost import MB, MICROSECOND
from repro.personalities.syswrap import SysWrap, SysWrapSocket

SoapValue = Union[int, float, str, bool, bytes, list]


@dataclass(frozen=True)
class SoapProfile:
    """Cost model for the SOAP engine (gSOAP is fast, for a SOAP stack)."""

    name: str = "gSOAP-2.2"
    per_call_overhead: float = 35.0 * MICROSECOND
    #: XML text encoding/decoding throughput.
    encode_bandwidth: float = 40.0 * MB


class SoapFault(RuntimeError):
    """A SOAP fault returned by the remote side."""


# ---------------------------------------------------------------------------
# XML encoding (deliberately small: elements, attributes-free, typed leaves)
# ---------------------------------------------------------------------------

_XS_TYPES = {int: "xsd:int", float: "xsd:double", str: "xsd:string", bool: "xsd:boolean"}


def _encode_value(name: str, value: SoapValue) -> str:
    if isinstance(value, bool):
        return f'<{name} xsi:type="xsd:boolean">{"true" if value else "false"}</{name}>'
    if isinstance(value, int):
        return f'<{name} xsi:type="xsd:int">{value}</{name}>'
    if isinstance(value, float):
        return f'<{name} xsi:type="xsd:double">{value!r}</{name}>'
    if isinstance(value, str):
        escaped = value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        return f'<{name} xsi:type="xsd:string">{escaped}</{name}>'
    if isinstance(value, bytes):
        import base64

        return f'<{name} xsi:type="xsd:base64Binary">{base64.b64encode(value).decode()}</{name}>'
    if isinstance(value, list):
        inner = "".join(_encode_value("item", item) for item in value)
        return f'<{name} xsi:type="soapenc:Array">{inner}</{name}>'
    raise TypeError(f"unsupported SOAP value type {type(value).__name__}")


_ELEMENT_RE = re.compile(
    r'<(?P<name>[\w:]+) xsi:type="(?P<type>[\w:]+)">(?P<body>.*?)</(?P=name)>', re.S
)


def _decode_body(body: str) -> List[Tuple[str, SoapValue]]:
    out: List[Tuple[str, SoapValue]] = []
    for match in _ELEMENT_RE.finditer(body):
        name, xsi_type, text = match.group("name"), match.group("type"), match.group("body")
        if xsi_type == "xsd:int":
            out.append((name, int(text)))
        elif xsi_type == "xsd:double":
            out.append((name, float(text)))
        elif xsi_type == "xsd:boolean":
            out.append((name, text == "true"))
        elif xsi_type == "xsd:string":
            out.append((name, text.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")))
        elif xsi_type == "xsd:base64Binary":
            import base64

            out.append((name, base64.b64decode(text)))
        elif xsi_type == "soapenc:Array":
            out.append((name, [v for _n, v in _decode_body(text)]))
    return out


def build_envelope(operation: str, params: Dict[str, SoapValue]) -> str:
    """Build a SOAP 1.1 request envelope for ``operation``."""
    body = "".join(_encode_value(k, v) for k, v in params.items())
    return (
        '<?xml version="1.0" encoding="UTF-8"?>'
        '<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/" '
        'xmlns:xsd="http://www.w3.org/2001/XMLSchema" '
        'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" '
        'xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/">'
        f"<SOAP-ENV:Body><m:{operation} xmlns:m=\"urn:repro\">{body}</m:{operation}>"
        "</SOAP-ENV:Body></SOAP-ENV:Envelope>"
    )


def parse_envelope(xml: str) -> Tuple[str, List[Tuple[str, SoapValue]]]:
    """Parse an envelope; returns ``(operation, [(param, value), ...])``."""
    match = re.search(
        r"<m:(?P<op>[\w]+) xmlns:m=\"urn:repro\">(?P<body>.*?)</m:(?P=op)>", xml, re.S
    )
    if match is None:
        fault = re.search(r"<faultstring>(?P<msg>.*?)</faultstring>", xml, re.S)
        if fault:
            raise SoapFault(fault.group("msg"))
        raise SoapFault("malformed SOAP envelope")
    return match.group("op"), _decode_body(match.group("body"))


def build_fault(message: str) -> str:
    return (
        '<?xml version="1.0" encoding="UTF-8"?>'
        '<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">'
        "<SOAP-ENV:Body><SOAP-ENV:Fault><faultcode>SOAP-ENV:Server</faultcode>"
        f"<faultstring>{message}</faultstring></SOAP-ENV:Fault></SOAP-ENV:Body></SOAP-ENV:Envelope>"
    )


# ---------------------------------------------------------------------------
# HTTP framing
# ---------------------------------------------------------------------------


def http_post(path: str, host: str, payload: bytes) -> bytes:
    headers = (
        f"POST {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: text/xml; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\nSOAPAction: \"\"\r\n\r\n"
    )
    return headers.encode("ascii") + payload


def http_response(payload: bytes, status: str = "200 OK") -> bytes:
    headers = (
        f"HTTP/1.1 {status}\r\nContent-Type: text/xml; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    return headers.encode("ascii") + payload


def parse_http(data: bytes) -> Tuple[Dict[str, str], bytes]:
    head, _, body = data.partition(b"\r\n\r\n")
    lines = head.decode("ascii", "replace").split("\r\n")
    headers = {"_start_line": lines[0]}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return headers, body


# ---------------------------------------------------------------------------
# Client / server engines
# ---------------------------------------------------------------------------


class SoapServer:
    """A SOAP RPC endpoint: registered handlers dispatched from HTTP POSTs."""

    def __init__(self, node, port: int, profile: Optional[SoapProfile] = None):
        self.node = node
        self.sim = node.sim
        self.port = port
        self.profile = profile or SoapProfile()
        self.syswrap = SysWrap(node.vlink)
        self._handlers: Dict[str, Callable] = {}
        self.requests_served = 0
        sock = self.syswrap.socket()
        sock.bind((node.host.name, port))
        sock.listen()
        self.sim.process(self._accept_loop(sock), name=f"soap-accept-{port}")

    def register(self, operation: str, handler: Callable) -> None:
        """Register ``handler(**params)`` for ``operation``."""
        self._handlers[operation] = handler

    def _accept_loop(self, listener: SysWrapSocket):
        while True:
            sock, _peer = yield listener.accept()
            self.sim.process(self._serve(sock), name="soap-server-conn")

    def _serve(self, sock: SysWrapSocket):
        while True:
            try:
                request = yield from _read_http_message(sock)
            except (ConnectionError, OSError):
                return
            headers, body = request
            yield self.sim.timeout(self._cost(len(body)))
            try:
                operation, params = parse_envelope(body.decode("utf-8"))
                handler = self._handlers.get(operation)
                if handler is None:
                    raise SoapFault(f"no such operation {operation!r}")
                result = handler(**dict(params))
                if hasattr(result, "send") and hasattr(result, "throw"):
                    result = yield from result
                reply_xml = build_envelope(f"{operation}Response", {"return": result})
                self.requests_served += 1
            except Exception as exc:  # noqa: BLE001 - surfaced as a SOAP fault
                reply_xml = build_fault(str(exc))
            payload = reply_xml.encode("utf-8")
            yield self.sim.timeout(self._cost(len(payload)))
            yield sock.send(http_response(payload))

    def _cost(self, nbytes: int) -> float:
        return self.profile.per_call_overhead + nbytes / self.profile.encode_bandwidth


class SoapClient:
    """A SOAP RPC client bound to one endpoint."""

    def __init__(self, node, server_host, port: int, profile: Optional[SoapProfile] = None):
        self.node = node
        self.sim = node.sim
        self.server_host = server_host
        self.port = port
        self.profile = profile or SoapProfile()
        self.syswrap = SysWrap(node.vlink)
        self._sock: Optional[SysWrapSocket] = None

    def call(self, operation: str, **params):
        """Invoke ``operation`` with keyword parameters (generator)."""
        envelope = build_envelope(operation, params).encode("utf-8")
        yield self.sim.timeout(
            self.profile.per_call_overhead + len(envelope) / self.profile.encode_bandwidth
        )
        if self._sock is None:
            sock = self.syswrap.socket()
            yield sock.connect((self.server_host, self.port))
            self._sock = sock
        yield self._sock.send(http_post("/soap", str(self.server_host), envelope))
        headers, body = yield from _read_http_message(self._sock)
        yield self.sim.timeout(
            self.profile.per_call_overhead + len(body) / self.profile.encode_bandwidth
        )
        operation_name, params_out = parse_envelope(body.decode("utf-8"))
        for name, value in params_out:
            if name == "return":
                return value
        return None


def _read_http_message(sock: SysWrapSocket):
    """Read one HTTP message (headers + exact content-length body)."""
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = yield sock.recv(4096)
        if not chunk:
            raise ConnectionError("peer closed during HTTP headers")
        buffer += chunk
    headers, body = parse_http(buffer)
    need = int(headers.get("content-length", "0"))
    while len(body) < need:
        chunk = yield sock.recv_exact(need - len(body))
        body += chunk
    return headers, body
