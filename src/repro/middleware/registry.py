"""Registration of the built-in middleware modules with the framework.

Mirrors PadicoTM's dynamically loadable modules: every middleware system is
declared with its paradigm and the personality it sits on, so a deployment
can load "any combination of them ... at the same time" (§4.3) through
:func:`repro.core.modules.global_registry`.
"""

from __future__ import annotations

from repro.core.modules import ModuleRegistry, global_registry


def register_builtin_modules(registry: ModuleRegistry = None) -> ModuleRegistry:
    """Register every built-in middleware factory (idempotent)."""
    registry = registry or global_registry()

    def _mpi_factory(node, group=None, **kwargs):
        from repro.middleware.mpi import MpiRuntime

        if group is None:
            raise ValueError("the mpi module needs a 'group' keyword (HostGroup)")
        return MpiRuntime(node, group, **kwargs)

    def _orb_factory(profile_name):
        def factory(node, **kwargs):
            from repro.middleware.corba import ORB, ORB_PROFILES

            return ORB(node, ORB_PROFILES[profile_name], **kwargs)

        return factory

    def _java_factory(node, **kwargs):
        from repro.middleware.javasockets import JavaSocketLayer

        return JavaSocketLayer(node, **kwargs)

    def _soap_server_factory(node, port=18000, **kwargs):
        from repro.middleware.soap import SoapServer

        return SoapServer(node, port, **kwargs)

    def _hla_factory(node, **kwargs):
        from repro.middleware.hla import RtiGateway

        return RtiGateway(node, **kwargs)

    def _pvm_factory(node, group=None, **kwargs):
        from repro.middleware.pvm import PvmTask

        if group is None:
            raise ValueError("the pvm module needs a 'group' keyword (HostGroup)")
        return PvmTask(node, group, **kwargs)

    def _dsm_factory(node, group=None, **kwargs):
        from repro.middleware.dsm import DsmNode

        if group is None:
            raise ValueError("the dsm module needs a 'group' keyword (HostGroup)")
        return DsmNode(node, group, **kwargs)

    registry.register(
        "mpi", paradigm="parallel", personality="madeleine",
        factory=_mpi_factory, description="MPICH/Madeleine-style MPI library",
    )
    registry.register(
        "pvm", paradigm="parallel", personality="circuit",
        factory=_pvm_factory, description="PVM-style task/message library",
    )
    registry.register(
        "dsm", paradigm="parallel", personality="circuit",
        factory=_dsm_factory, description="page-based distributed shared memory",
    )
    for orb_name in ("omniORB-3.0.2", "omniORB-4.0.0", "Mico-2.3.7", "ORBacus-4.0.5"):
        registry.register(
            f"corba:{orb_name}", paradigm="distributed", personality="syswrap",
            factory=_orb_factory(orb_name), description=f"CORBA ORB ({orb_name})",
        )
    registry.register(
        "java-sockets", paradigm="distributed", personality="syswrap",
        factory=_java_factory, description="Kaffe-style JVM socket layer",
    )
    registry.register(
        "soap", paradigm="distributed", personality="syswrap",
        factory=_soap_server_factory, description="gSOAP-style SOAP/HTTP RPC server",
    )
    registry.register(
        "hla", paradigm="distributed", personality="syswrap",
        factory=_hla_factory, description="HLA RTI gateway (Certi-style)",
    )
    return registry
