"""A PVM (Parallel Virtual Machine) style message-passing middleware.

PVM is listed throughout the paper as the "other" parallel middleware —
e.g. §2.1: "a MPI-based component could be connected to a PVM-based
component".  PVM's programming model differs from MPI: tasks are addressed
by *task identifiers* (tids), messages are built into an explicit send
buffer with typed packing calls (``pvm_pkint``, ``pvm_pkdouble``,
``pvm_pkbyte``), then sent with ``pvm_send`` and unpacked in order on the
receive side.

The implementation maps tids onto ranks of a Circuit group and reuses the
Circuit incremental-packing path — a second, independent client of the
parallel abstract interface, which the concurrency tests run next to MPI.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

import numpy as np

from repro.simnet.cost import MICROSECOND, MB, Cost
from repro.madeleine.message import PackMode
from repro.abstraction.circuit import Circuit, CircuitIncoming


class PvmError(RuntimeError):
    """PVM usage errors."""


_PVM_HEADER = struct.Struct("!iiI")  # src tid, message tag, item count
_ITEM_HEADER = struct.Struct("!BI")  # type code, byte length

_T_INT = 1
_T_DOUBLE = 2
_T_BYTES = 3
_T_STR = 4

#: per-message software cost of the PVM library (pvmd routing, buffers).
PVM_CALL_OVERHEAD = 5.0 * MICROSECOND
PVM_COPY_BANDWIDTH = 900.0 * MB


class _SendBuffer:
    """The active send buffer built by the pk* calls."""

    def __init__(self) -> None:
        self.items: List[Tuple[int, bytes]] = []

    def pack(self, type_code: int, raw: bytes) -> None:
        self.items.append((type_code, raw))

    def encode(self) -> bytes:
        out = bytearray()
        for type_code, raw in self.items:
            out += _ITEM_HEADER.pack(type_code, len(raw))
            out += raw
        return bytes(out)

    @property
    def nbytes(self) -> int:
        return sum(len(raw) for _, raw in self.items)


class _RecvBuffer:
    """The active receive buffer consumed by the upk* calls."""

    def __init__(self, src_tid: int, tag: int, raw: bytes):
        self.src_tid = src_tid
        self.tag = tag
        self._items: List[Tuple[int, bytes]] = []
        offset = 0
        while offset < len(raw):
            type_code, length = _ITEM_HEADER.unpack_from(raw, offset)
            offset += _ITEM_HEADER.size
            self._items.append((type_code, raw[offset : offset + length]))
            offset += length
        self._cursor = 0

    def next_item(self, expected: int) -> bytes:
        if self._cursor >= len(self._items):
            raise PvmError("unpack past the end of the message")
        type_code, raw = self._items[self._cursor]
        if type_code != expected:
            raise PvmError(f"unpack type mismatch: packed {type_code}, requested {expected}")
        self._cursor += 1
        return raw


class PvmTask:
    """One PVM task (the per-node library instance)."""

    def __init__(self, node, group, circuit_name: str = "pvm", adaptive: bool = False):
        self.node = node
        self.sim = node.sim
        self.group = group
        # adaptive=True rides migratable circuit legs (route-aware pinning +
        # per-leg migration under churn).
        self.circuit: Circuit = node.circuit(circuit_name, group, adaptive=adaptive)
        self.circuit.set_receive_callback(self._on_message)
        self._send_buffer: Optional[_SendBuffer] = None
        self._recv_buffer: Optional[_RecvBuffer] = None
        self._queue: List[Tuple[int, int, bytes]] = []
        self._waiters: List[Tuple[int, int, object]] = []

    # -- identity (tids are 0x40000 + rank, echoing real PVM tid encoding) --------------
    @property
    def mytid(self) -> int:
        return 0x40000 + self.circuit.rank

    def tid_of_rank(self, rank: int) -> int:
        return 0x40000 + rank

    @staticmethod
    def rank_of_tid(tid: int) -> int:
        return tid - 0x40000

    def siblings(self) -> List[int]:
        return [self.tid_of_rank(r) for r in range(self.circuit.size)]

    # -- send buffer management --------------------------------------------------------
    def initsend(self) -> None:
        """``pvm_initsend``: start a fresh send buffer."""
        self._send_buffer = _SendBuffer()

    def _buffer(self) -> _SendBuffer:
        if self._send_buffer is None:
            raise PvmError("pack call before pvm_initsend()")
        return self._send_buffer

    def pkint(self, values) -> None:
        arr = np.asarray(values, dtype="<i4")
        self._buffer().pack(_T_INT, arr.tobytes())

    def pkdouble(self, values) -> None:
        arr = np.asarray(values, dtype="<f8")
        self._buffer().pack(_T_DOUBLE, arr.tobytes())

    def pkbyte(self, raw: bytes) -> None:
        self._buffer().pack(_T_BYTES, bytes(raw))

    def pkstr(self, text: str) -> None:
        self._buffer().pack(_T_STR, text.encode("utf-8"))

    # -- send / receive --------------------------------------------------------------------
    def send(self, dest_tid: int, tag: int):
        """``pvm_send``: transmit the current send buffer to ``dest_tid``."""
        buf = self._buffer()
        self._send_buffer = None
        dst_rank = self.rank_of_tid(dest_tid)
        payload = buf.encode()
        header = _PVM_HEADER.pack(self.mytid, tag, len(buf.items))
        cost = Cost()
        cost.charge(PVM_CALL_OVERHEAD, "pvm.send")
        cost.charge_copy(len(payload), PVM_COPY_BANDWIDTH, "pvm.copy")
        msg = self.circuit.new_message(dst_rank)
        msg.pack_express(header)
        msg.pack_cheaper(payload)
        return self.circuit.post(msg, extra_cost=cost)

    def recv(self, src_tid: int = -1, tag: int = -1):
        """``pvm_recv``: generator blocking until a matching message arrives.

        Returns the source tid; the message becomes the active receive
        buffer consumed by the ``upk*`` calls.
        """
        for idx, (msg_src, msg_tag, payload) in enumerate(self._queue):
            if self._matches(src_tid, tag, msg_src, msg_tag):
                self._queue.pop(idx)
                self._recv_buffer = _RecvBuffer(msg_src, msg_tag, payload)
                return self._recv_buffer.src_tid
        ev = self.sim.event(name="pvm-recv")
        self._waiters.append((src_tid, tag, ev))
        src, msg_tag, payload = yield ev
        self._recv_buffer = _RecvBuffer(src, msg_tag, payload)
        return src

    def nrecv(self, src_tid: int = -1, tag: int = -1) -> bool:
        """``pvm_nrecv``: non-blocking receive; True when a message was consumed."""
        for idx, (msg_src, msg_tag, payload) in enumerate(self._queue):
            if self._matches(src_tid, tag, msg_src, msg_tag):
                self._queue.pop(idx)
                self._recv_buffer = _RecvBuffer(msg_src, msg_tag, payload)
                return True
        return False

    # -- unpacking -----------------------------------------------------------------------------
    def _active_recv(self) -> _RecvBuffer:
        if self._recv_buffer is None:
            raise PvmError("unpack call with no active receive buffer")
        return self._recv_buffer

    def upkint(self):
        return np.frombuffer(self._active_recv().next_item(_T_INT), dtype="<i4").copy()

    def upkdouble(self):
        return np.frombuffer(self._active_recv().next_item(_T_DOUBLE), dtype="<f8").copy()

    def upkbyte(self) -> bytes:
        return self._active_recv().next_item(_T_BYTES)

    def upkstr(self) -> str:
        return self._active_recv().next_item(_T_STR).decode("utf-8")

    # -- matching ----------------------------------------------------------------------------------
    @staticmethod
    def _matches(want_src: int, want_tag: int, src: int, tag: int) -> bool:
        return (want_src in (-1, src)) and (want_tag in (-1, tag))

    def _on_message(self, src_rank: int, incoming: CircuitIncoming, rx) -> None:
        header = incoming.unpack(PackMode.EXPRESS)
        payload = incoming.unpack() if incoming.remaining_segments else b""
        incoming.end_unpacking()
        src_tid, tag, _count = _PVM_HEADER.unpack(header)
        for idx, (want_src, want_tag, ev) in enumerate(self._waiters):
            if self._matches(want_src, want_tag, src_tid, tag):
                self._waiters.pop(idx)
                if not ev.triggered:
                    ev.succeed((src_tid, tag, payload), delay=PVM_CALL_OVERHEAD)
                return
        self._queue.append((src_tid, tag, payload))
