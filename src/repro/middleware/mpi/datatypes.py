"""MPI datatypes and reduction operations.

Buffers are numpy arrays or raw bytes; generic Python objects go through
pickle exactly as in mpi4py's lowercase API.  Datatypes matter for two
things here: knowing the element size (for counts and displacements) and
reconstructing typed arrays on the receive side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An MPI elementary or derived datatype."""

    name: str
    itemsize: int
    np_dtype: Optional[str] = None

    def to_bytes(self, values) -> bytes:
        """Serialise ``values`` (array-like) using this datatype."""
        if self.np_dtype is None:
            if isinstance(values, (bytes, bytearray, memoryview)):
                return bytes(values)
            raise TypeError(f"datatype {self.name} requires a bytes-like buffer")
        arr = np.asarray(values, dtype=self.np_dtype)
        return arr.tobytes()

    def from_bytes(self, raw: bytes):
        """Rebuild a numpy array (or bytes) from the wire representation."""
        if self.np_dtype is None:
            return bytes(raw)
        return np.frombuffer(raw, dtype=self.np_dtype).copy()

    def count_of(self, raw: bytes) -> int:
        """Number of elements encoded in ``raw``."""
        if len(raw) % self.itemsize:
            raise ValueError(
                f"buffer of {len(raw)} bytes is not a whole number of {self.name} elements"
            )
        return len(raw) // self.itemsize

    def contiguous(self, count: int) -> "Datatype":
        """Derived type: ``count`` contiguous elements (MPI_Type_contiguous)."""
        if count <= 0:
            raise ValueError("count must be positive")
        return Datatype(f"{self.name}[{count}]", self.itemsize * count, self.np_dtype)


MPI_BYTE = Datatype("MPI_BYTE", 1, None)
MPI_CHAR = Datatype("MPI_CHAR", 1, "S1")
MPI_INT = Datatype("MPI_INT", 4, "<i4")
MPI_LONG = Datatype("MPI_LONG", 8, "<i8")
MPI_FLOAT = Datatype("MPI_FLOAT", 4, "<f4")
MPI_DOUBLE = Datatype("MPI_DOUBLE", 8, "<f8")


@dataclass(frozen=True)
class ReduceOp:
    """An MPI reduction operation over numpy arrays / scalars."""

    name: str
    fn: Callable

    def __call__(self, a, b):
        return self.fn(a, b)


def _sum(a, b):
    return np.add(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a + b


def _prod(a, b):
    return np.multiply(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a * b


def _min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)


def _max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)


SUM = ReduceOp("MPI_SUM", _sum)
PROD = ReduceOp("MPI_PROD", _prod)
MIN = ReduceOp("MPI_MIN", _min)
MAX = ReduceOp("MPI_MAX", _max)
