"""MPI runtime, communicators and point-to-point messaging."""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.simnet.cost import Cost
from repro.simnet.host import HostGroup
from repro.madeleine.message import PackMode
from repro.personalities.madeleine_api import VirtualMadeleine
from repro.middleware.mpi.collectives import CollectiveMixin
from repro.middleware.mpi.datatypes import Datatype, MPI_BYTE
from repro.middleware.mpi.profiles import MpiProfile, MPICH_1_2_5
from repro.middleware.mpi.requests import Request, Status

ANY_SOURCE = -1
ANY_TAG = -1

#: context id, tag, source rank, flags
_MPI_HEADER = struct.Struct("!IiiB")
_FLAG_PICKLED = 0x01


class MpiError(RuntimeError):
    """MPI-level usage errors."""


class MpiRuntime:
    """One MPI library instance on one node (the "MPI process").

    ``channels`` selects what carries the traffic:

    * ``"vmad"`` (default) — the virtual-Madeleine personality over a
      statically bound Circuit, the historical configuration;
    * ``"circuit"`` — the same personality over a *route-aware adaptive*
      Circuit (``adaptive=True`` unless overridden): point-to-point and
      collective legs follow the selector's circuit-hop pinning, relay
      through gateways on routed groups, and migrate — preserving
      per-source order — when monitoring degrades a hop or kills a gateway.
      Every rank of the group must pick the same ``channels`` mode.

    ``adaptive`` overrides the adaptive flag for ``channels="circuit"``
    (``adaptive=False`` gives route-aware static legs).
    """

    def __init__(
        self,
        node,
        group: HostGroup,
        *,
        profile: MpiProfile = MPICH_1_2_5,
        channel=None,
        channel_name: str = "mpi",
        channels: str = "vmad",
        adaptive: Optional[bool] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.profile = profile
        self.group = group
        if channels not in ("vmad", "circuit"):
            raise MpiError(
                f"unknown channels mode {channels!r}; expected 'vmad' or 'circuit'"
            )
        if channel is not None and (channels != "vmad" or adaptive is not None):
            # an explicit channel is used as-is: silently dropping the
            # requested mode would hand the caller a transport they did not
            # ask for.
            raise MpiError(
                "channel= conflicts with channels=/adaptive=; pass one or the other"
            )
        if adaptive is not None and channels != "circuit":
            raise MpiError('adaptive= requires channels="circuit"')
        if channel is None:
            personality = VirtualMadeleine(node)
            if channels == "vmad":
                channel = personality.open_channel(channel_name, group)
            else:
                channel = personality.open_channel(
                    channel_name, group, adaptive=True if adaptive is None else adaptive
                )
        #: the (virtual or direct) Madeleine channel carrying all traffic.
        self.channel = channel
        self._communicators: Dict[int, "Communicator"] = {}
        self._next_context = 0
        self.comm_world = self.create_communicator()
        self._receiver = self.sim.process(self._receiver_loop(), name=f"mpi-recv-{node.host.name}")

    # -- communicator management -------------------------------------------------
    def create_communicator(self) -> "Communicator":
        """Create a new communicator spanning the whole group (MPI_Comm_dup)."""
        context = self._next_context
        self._next_context += 1
        comm = Communicator(self, context)
        self._communicators[context] = comm
        return comm

    # -- the progress engine -------------------------------------------------------
    def _receiver_loop(self):
        """Single progress loop: demultiplex incoming messages to communicators."""
        while True:
            src_rank, incoming = yield self.channel.begin_unpacking()
            header = incoming.unpack(PackMode.EXPRESS)
            payload = incoming.unpack() if incoming.remaining_segments else b""
            incoming.end_unpacking()
            context, tag, hdr_src, flags = _MPI_HEADER.unpack(header)
            comm = self._communicators.get(context)
            if comm is None:
                raise MpiError(f"message for unknown communicator context {context}")
            comm._on_message(hdr_src, tag, flags, payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiRuntime {self.profile.name} rank={self.comm_world.rank}/{self.comm_world.size}>"


class Communicator(CollectiveMixin):
    """An MPI communicator: a context id over the runtime's group."""

    def __init__(self, runtime: MpiRuntime, context: int):
        self.runtime = runtime
        self.sim = runtime.sim
        self.context = context
        self._posted: List[Tuple[int, int, Request]] = []
        self._unexpected: List[Tuple[int, int, int, bytes]] = []
        self._collective_seq = 0
        self.sends = 0
        self.receives = 0

    # -- identity ---------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.runtime.channel.rank

    @property
    def size(self) -> int:
        return self.runtime.channel.size

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- encoding -----------------------------------------------------------------
    @staticmethod
    def _encode(obj: Any) -> Tuple[bytes, int]:
        if isinstance(obj, (bytes, bytearray, memoryview)):
            return bytes(obj), 0
        if isinstance(obj, np.ndarray):
            return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), _FLAG_PICKLED
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), _FLAG_PICKLED

    @staticmethod
    def _decode(payload: bytes, flags: int) -> Any:
        if flags & _FLAG_PICKLED:
            return pickle.loads(payload)
        return payload

    # -- point to point: sends --------------------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send of a Python object or bytes buffer."""
        if not (0 <= dest < self.size):
            raise MpiError(f"invalid destination rank {dest}")
        payload, flags = self._encode(obj)
        return self._post_send(payload, flags, dest, tag)

    def Isend(self, buf, dest: int, tag: int = 0, datatype: Optional[Datatype] = None) -> Request:
        """Non-blocking buffer send (numpy array or bytes, no pickling)."""
        datatype = datatype or MPI_BYTE
        payload = datatype.to_bytes(buf) if not isinstance(buf, (bytes, bytearray)) else bytes(buf)
        return self._post_send(payload, 0, dest, tag)

    def _post_send(self, payload: bytes, flags: int, dest: int, tag: int) -> Request:
        profile = self.runtime.profile
        req = Request(self.sim, "send")
        header = _MPI_HEADER.pack(self.context, tag, self.rank, flags)
        cost = Cost()
        cost.charge(profile.per_call_overhead, "mpi.send")
        cost.charge_copy(len(payload), profile.copy_bandwidth, "mpi.copy")
        channel = self.runtime.channel
        msg = channel.begin_packing(dest)
        channel.pack(msg, header, PackMode.EXPRESS)
        channel.pack(msg, payload, PackMode.CHEAPER)
        channel.end_packing(msg, extra_cost=cost).chain(req.event)
        self.sends += 1
        return req

    def send(self, obj: Any, dest: int, tag: int = 0):
        """Blocking send (a generator: ``yield from comm.send(...)``)."""
        req = self.isend(obj, dest, tag)
        result = yield req.wait()
        return result

    def Send(self, buf, dest: int, tag: int = 0, datatype: Optional[Datatype] = None):
        req = self.Isend(buf, dest, tag, datatype)
        result = yield req.wait()
        return result

    # -- point to point: receives -------------------------------------------------------
    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive returning a :class:`Request`."""
        req = Request(self.sim, "recv")
        # Check the unexpected-message queue first (MPI ordering semantics).
        for idx, (src, msg_tag, flags, payload) in enumerate(self._unexpected):
            if self._matches(source, tag, src, msg_tag):
                self._unexpected.pop(idx)
                self._complete_recv(req, src, msg_tag, flags, payload)
                return req
        self._posted.append((source, tag, req))
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator); returns the decoded object."""
        req = self.irecv(source, tag)
        value = yield req.wait()
        return value

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None) -> Any:
        """Blocking buffer receive filling ``buf`` in place (generator)."""
        req = self.irecv(source, tag)
        raw = yield req.wait()
        datatype = datatype or MPI_BYTE
        if isinstance(buf, np.ndarray):
            flat = np.frombuffer(raw, dtype=buf.dtype)
            if flat.size != buf.size:
                raise MpiError(
                    f"receive buffer holds {buf.size} elements but message has {flat.size}"
                )
            buf.flat[:] = flat
        return req.status

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Combined send + receive (generator returning the received object)."""
        send_req = self.isend(obj, dest, sendtag)
        recv_req = self.irecv(source, recvtag)
        value = yield recv_req.wait()
        yield send_req.wait()
        return value

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe of the unexpected-message queue (MPI_Iprobe)."""
        for src, msg_tag, flags, payload in self._unexpected:
            if self._matches(source, tag, src, msg_tag):
                status = Status()
                status.source = src
                status.tag = msg_tag
                status.count_bytes = len(payload)
                return status
        return None

    # -- matching engine ------------------------------------------------------------------
    @staticmethod
    def _matches(want_src: int, want_tag: int, src: int, tag: int) -> bool:
        return (want_src in (ANY_SOURCE, src)) and (want_tag in (ANY_TAG, tag))

    def _on_message(self, src: int, tag: int, flags: int, payload: bytes) -> None:
        self.receives += 1
        for idx, (want_src, want_tag, req) in enumerate(self._posted):
            if req.cancelled:
                continue
            if self._matches(want_src, want_tag, src, tag):
                self._posted.pop(idx)
                self._complete_recv(req, src, tag, flags, payload)
                return
        self._unexpected.append((src, tag, flags, payload))

    def _complete_recv(self, req: Request, src: int, tag: int, flags: int, payload: bytes) -> None:
        profile = self.runtime.profile
        req.status.source = src
        req.status.tag = tag
        req.status.count_bytes = len(payload)
        delay = profile.per_call_overhead + len(payload) / profile.copy_bandwidth
        value = self._decode(payload, flags)
        req.event.succeed(value, delay=delay)

    # -- collective bookkeeping (used by CollectiveMixin) ------------------------------------
    def _next_collective_tag(self) -> int:
        self._collective_seq += 1
        return -1000 - self._collective_seq

    def pending_unexpected(self) -> int:
        return len(self._unexpected)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator ctx={self.context} rank={self.rank}/{self.size}>"
