"""Standalone MPICH/Madeleine: MPI bound directly to the Madeleine library.

§5 states: "PadicoTM overhead is negligible: MPICH in PadicoTM over
Myrinet-2000 gets roughly the same performance as a standalone
implementation of MPICH over Myrinet-2000."  To measure that, the benchmark
needs a *standalone* baseline — the same MPI library linked straight against
Madeleine, without the MadIO multiplexing, the NetAccess arbitration or the
Circuit abstraction in between.

:class:`DirectMadeleineChannel` exposes the virtual-Madeleine channel
interface over a raw :class:`repro.madeleine.driver.MadChannel`, so the very
same :class:`~repro.middleware.mpi.communicator.MpiRuntime` code runs in
both configurations and the measured difference is exactly the framework's
overhead.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.simnet.host import HostGroup
from repro.madeleine import MadChannel, MadIncoming, MadeleineDriver, PackMode
from repro.madeleine.message import MadMessage


class DirectMadeleineChannel:
    """The virtual-Madeleine channel interface over a raw Madeleine channel."""

    def __init__(self, channel: MadChannel):
        self.channel = channel
        self.sim = channel.sim
        self._recv_queue: List[Tuple[int, MadIncoming]] = []
        self._recv_waiters: List[Tuple[Optional[int], object]] = []
        channel.set_receive_callback(self._on_message)

    # -- identity -------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.channel.name

    @property
    def rank(self) -> int:
        return self.channel.rank

    @property
    def size(self) -> int:
        return self.channel.size

    # -- packing ---------------------------------------------------------------
    def begin_packing(self, dst_rank: int) -> MadMessage:
        return self.channel.begin_packing(dst_rank)

    @staticmethod
    def pack(message: MadMessage, data: bytes, mode: PackMode = PackMode.CHEAPER) -> MadMessage:
        return message.pack(data, mode)

    def end_packing(self, message: MadMessage, extra_cost=None):
        return self.channel.end_packing(message, extra_cost=extra_cost)

    # -- unpacking ----------------------------------------------------------------
    def begin_unpacking(self, src_rank: Optional[int] = None):
        ev = self.sim.event(name=f"direct-mad-unpack({self.name})")
        for idx, (rank, incoming) in enumerate(self._recv_queue):
            if src_rank is None or rank == src_rank:
                self._recv_queue.pop(idx)
                ev.succeed((rank, incoming))
                return ev
        self._recv_waiters.append((src_rank, ev))
        return ev

    @staticmethod
    def unpack(incoming: MadIncoming, mode: Optional[PackMode] = None) -> bytes:
        return incoming.unpack(mode)

    @staticmethod
    def end_unpacking(incoming: MadIncoming) -> None:
        incoming.end_unpacking()

    # -- internal -------------------------------------------------------------------
    def _on_message(self, incoming: MadIncoming, delivery) -> None:
        entry = (incoming.src_rank, incoming)
        ready = max(0.0, delivery.ready_time() - self.sim.now)
        self.sim.call_later(ready, self._enqueue, entry)

    def _enqueue(self, entry) -> None:
        src_rank, incoming = entry
        for idx, (want, ev) in enumerate(self._recv_waiters):
            if want is None or want == src_rank:
                self._recv_waiters.pop(idx)
                if not ev.triggered:
                    ev.succeed((src_rank, incoming))
                return
        self._recv_queue.append(entry)


def standalone_mpi_pair(
    network, group: HostGroup, profile=None, channel_name: str = "mpich-direct"
):
    """Build two standalone MPI runtimes bound straight to Madeleine.

    Returns ``[runtime_rank0, runtime_rank1, ...]`` for every host of the
    group.  Only used by the framework-overhead benchmark; regular users go
    through :class:`~repro.middleware.mpi.communicator.MpiRuntime` on a
    booted node.
    """
    from repro.middleware.mpi.communicator import MpiRuntime
    from repro.middleware.mpi.profiles import MPICH_1_2_5

    runtimes = []
    for host in group:
        driver = host.get_service("madeleine") or MadeleineDriver(host)
        channel = driver.open_channel(channel_name, network, group)
        direct = DirectMadeleineChannel(channel)

        class _BareNode:
            """Minimal node shim: standalone MPICH needs only sim + host."""

            def __init__(self, h):
                self.host = h
                self.sim = h.sim

        runtimes.append(
            MpiRuntime(_BareNode(host), group, profile=profile or MPICH_1_2_5, channel=direct)
        )
    return runtimes
