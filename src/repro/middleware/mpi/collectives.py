"""MPI collective operations.

Implemented on top of the communicator's point-to-point layer with the
classic algorithms of MPICH of that era: binomial trees for broadcast and
reduce, reduce+broadcast for allreduce, direct (rooted) exchanges for
gather/scatter, pairwise exchange for alltoall, a chain for scan.  Every
collective consumes one reserved tag from the communicator's collective
sequence so concurrent collectives and point-to-point traffic never
interfere.

All methods are generators (``yield from comm.bcast(...)``) since they block
until completion in virtual time.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.middleware.mpi.datatypes import ReduceOp, SUM


class CollectiveMixin:
    """Collective operations mixed into :class:`Communicator`."""

    # the mixin relies on: rank, size, isend, irecv, send, recv,
    # _next_collective_tag()  — all provided by Communicator.

    # -- barrier -----------------------------------------------------------------
    def barrier(self):
        """Block until every rank has entered the barrier (dissemination)."""
        tag = self._next_collective_tag()
        size = self.size
        if size == 1:
            return None
        distance = 1
        while distance < size:
            dest = (self.rank + distance) % size
            src = (self.rank - distance) % size
            send_req = self.isend(b"", dest, tag)
            yield self.irecv(src, tag).wait()
            yield send_req.wait()
            distance *= 2
        return None

    # -- broadcast ----------------------------------------------------------------
    def bcast(self, obj: Any = None, root: int = 0):
        """Binomial-tree broadcast; returns the object on every rank."""
        tag = self._next_collective_tag()
        size = self.size
        if size == 1:
            return obj
        relative = (self.rank - root) % size
        # Standard MPICH binomial tree on relative ranks: receive from the
        # parent (the rank with our lowest set bit cleared), then forward to
        # children at decreasing bit positions.
        mask = 1
        while mask < size:
            if relative & mask:
                src = ((relative - mask) + root) % size
                obj = yield self.irecv(src, tag).wait()
                break
            mask *= 2
        mask //= 2
        while mask > 0:
            if relative + mask < size:
                dest = ((relative + mask) + root) % size
                yield self.isend(obj, dest, tag).wait()
            mask //= 2
        return obj

    # -- reduce -------------------------------------------------------------------
    def reduce(self, sendobj: Any, op: ReduceOp = SUM, root: int = 0):
        """Rooted reduction; the root returns the combined value, others None."""
        tag = self._next_collective_tag()
        size = self.size
        value = sendobj
        if size == 1:
            return value if self.rank == root else None
        relative = (self.rank - root) % size
        mask = 1
        while mask < size:
            if relative & mask:
                dest = ((relative & ~mask) + root) % size
                yield self.isend(value, dest, tag).wait()
                break
            else:
                src_rel = relative | mask
                if src_rel < size:
                    other = yield self.irecv(((src_rel) + root) % size, tag).wait()
                    value = op(value, other)
            mask *= 2
        return value if self.rank == root else None

    def allreduce(self, sendobj: Any, op: ReduceOp = SUM):
        """Reduction whose result is available on every rank."""
        reduced = yield from self.reduce(sendobj, op, root=0)
        result = yield from self.bcast(reduced, root=0)
        return result

    def scan(self, sendobj: Any, op: ReduceOp = SUM):
        """Inclusive prefix reduction along rank order."""
        tag = self._next_collective_tag()
        value = sendobj
        if self.rank > 0:
            prefix = yield self.irecv(self.rank - 1, tag).wait()
            value = op(prefix, value)
        if self.rank < self.size - 1:
            yield self.isend(value, self.rank + 1, tag).wait()
        return value

    # -- gather / scatter -----------------------------------------------------------
    def gather(self, sendobj: Any, root: int = 0):
        """Root returns the list of every rank's contribution (rank order)."""
        tag = self._next_collective_tag()
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[self.rank] = sendobj
            requests = [
                (src, self.irecv(src, tag)) for src in range(self.size) if src != root
            ]
            for src, req in requests:
                out[src] = yield req.wait()
            return out
        yield self.isend(sendobj, root, tag).wait()
        return None

    def scatter(self, sendobjs: Optional[List[Any]] = None, root: int = 0):
        """Root distributes ``sendobjs[i]`` to rank ``i``; returns the local item."""
        tag = self._next_collective_tag()
        if self.rank == root:
            if sendobjs is None or len(sendobjs) != self.size:
                raise ValueError(f"scatter root needs a list of exactly {self.size} items")
            for dst in range(self.size):
                if dst != root:
                    self.isend(sendobjs[dst], dst, tag)
            return sendobjs[root]
        value = yield self.irecv(root, tag).wait()
        return value

    def allgather(self, sendobj: Any):
        """Every rank returns the list of every rank's contribution."""
        gathered = yield from self.gather(sendobj, root=0)
        result = yield from self.bcast(gathered, root=0)
        return result

    def alltoall(self, sendobjs: List[Any]):
        """Personalised all-to-all exchange: returns the list received."""
        tag = self._next_collective_tag()
        if len(sendobjs) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} items")
        out: List[Any] = [None] * self.size
        out[self.rank] = sendobjs[self.rank]
        requests = []
        for dst in range(self.size):
            if dst != self.rank:
                self.isend(sendobjs[dst], dst, tag)
                requests.append((dst, self.irecv(dst, tag)))
        for src, req in requests:
            out[src] = yield req.wait()
        return out
