"""MPI request and status objects."""

from __future__ import annotations

from typing import Any, Optional


class Status:
    """Receive status: who sent the message, with which tag, how many bytes."""

    def __init__(self) -> None:
        self.source: Optional[int] = None
        self.tag: Optional[int] = None
        self.count_bytes: int = 0

    def get_source(self) -> Optional[int]:
        return self.source

    def get_tag(self) -> Optional[int]:
        return self.tag

    def get_count(self, datatype=None) -> int:
        if datatype is None:
            return self.count_bytes
        return self.count_bytes // datatype.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Status src={self.source} tag={self.tag} bytes={self.count_bytes}>"


class Request:
    """A non-blocking operation handle (returned by isend / irecv)."""

    def __init__(self, sim, kind: str):
        self.sim = sim
        self.kind = kind
        self.event = sim.event(name=f"mpi-{kind}")
        self.status = Status()
        self.cancelled = False

    # -- completion management ------------------------------------------------
    def test(self) -> bool:
        """Non-blocking completion test."""
        return self.event.triggered

    def wait(self):
        """The event to ``yield`` on for completion; value is the received
        object (for receives) or the byte count (for sends)."""
        return self.event

    @property
    def value(self) -> Any:
        return self.event.value if self.event.triggered else None

    def cancel(self) -> None:
        """Mark the request cancelled (only honoured while still pending)."""
        if not self.event.triggered:
            self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.event.triggered else ("cancelled" if self.cancelled else "pending")
        return f"<Request {self.kind} {state}>"
