"""Cost profiles of the MPICH versions measured by the paper.

Table 1 reports MPICH-1.2.5 at 12.06 µs one-way latency and 238.7 MB/s over
Myrinet-2000 inside PadicoTM; Figure 3 plots MPICH-1.1.2.  The profile adds
the MPI library's own software work on top of the Circuit/Madeleine path
(request management, tag matching, datatype handling, ADI dispatch):

* ``per_call_overhead`` — per message, per side;
* ``copy_bandwidth`` — equivalent bandwidth of the library's per-byte
  handling on each side (MPICH/Madeleine is essentially zero-copy, so this
  is very high: it only accounts for the ~1 MB/s drop between the Circuit
  plateau and the MPICH plateau in Table 1);
* ``eager_threshold`` — messages above it use the rendezvous path (the
  underlying Madeleine layer adds its own rendezvous round-trip).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.cost import KB, MB, MICROSECOND


@dataclass(frozen=True)
class MpiProfile:
    """Software cost model of one MPI implementation."""

    name: str
    per_call_overhead: float
    copy_bandwidth: float
    eager_threshold: int = 32 * KB

    def describe(self) -> str:
        return (
            f"{self.name}: {self.per_call_overhead / MICROSECOND:.2f} us/call/side, "
            f"{self.copy_bandwidth / MB:.0f} MB/s handling"
        )


#: the version benchmarked in Table 1.
MPICH_1_2_5 = MpiProfile(
    name="MPICH-1.2.5",
    per_call_overhead=1.83 * MICROSECOND,
    copy_bandwidth=88_000.0 * MB,
)

#: the (slightly older) version plotted in Figure 3.
MPICH_1_1_2 = MpiProfile(
    name="MPICH-1.1.2",
    per_call_overhead=2.05 * MICROSECOND,
    copy_bandwidth=80_000.0 * MB,
)
