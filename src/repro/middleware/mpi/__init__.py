"""An MPI middleware in the MPICH/Madeleine mould.

The library is written against the *virtual Madeleine* personality
(:mod:`repro.personalities.madeleine_api`), exactly like the real
MPICH/Madeleine is linked against the Madeleine API inside PadicoTM; it
therefore runs unchanged whether the underlying Circuit is mapped onto MadIO
(Myrinet), SysIO (Ethernet / WAN) or an alternate VLink method.

Public surface (close to mpi4py's, which follows the MPI standard):

* :class:`~repro.middleware.mpi.communicator.MpiRuntime` — one per node,
  builds ``COMM_WORLD`` over a host group.
* :class:`~repro.middleware.mpi.communicator.Communicator` — point-to-point
  (``send/recv/isend/irecv/sendrecv``) with tag matching, plus the
  collectives (``bcast, reduce, allreduce, gather, allgather, scatter,
  alltoall, barrier, scan``).
* :mod:`~repro.middleware.mpi.datatypes` — MPI datatypes and reduction ops.
* :mod:`~repro.middleware.mpi.profiles` — cost profiles for MPICH 1.1.2 and
  1.2.5 (the two versions measured in the paper).
"""

from repro.middleware.mpi.datatypes import (
    Datatype,
    MPI_BYTE,
    MPI_CHAR,
    MPI_DOUBLE,
    MPI_FLOAT,
    MPI_INT,
    MPI_LONG,
    ReduceOp,
    SUM,
    PROD,
    MIN,
    MAX,
)
from repro.middleware.mpi.profiles import MpiProfile, MPICH_1_1_2, MPICH_1_2_5
from repro.middleware.mpi.requests import Request, Status
from repro.middleware.mpi.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MpiError,
    MpiRuntime,
)
from repro.middleware.mpi.direct import DirectMadeleineChannel, standalone_mpi_pair

__all__ = [
    "Datatype",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_DOUBLE",
    "MPI_FLOAT",
    "MPI_INT",
    "MPI_LONG",
    "ReduceOp",
    "SUM",
    "PROD",
    "MIN",
    "MAX",
    "MpiProfile",
    "MPICH_1_1_2",
    "MPICH_1_2_5",
    "Request",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MpiError",
    "MpiRuntime",
    "DirectMadeleineChannel",
    "standalone_mpi_pair",
]
