"""A page-based Distributed Shared Memory middleware.

DSM appears in the paper's middleware inventory ("MPI, various CORBA
implementations, HLA, SOAP, Java and a DSM", §7) as a parallel-paradigm
system that is *not* message-based, showing the classification has soft
boundaries.  This module implements a simple single-writer / multiple-reader
page-ownership protocol over a Circuit:

* the address space is split into fixed-size pages, each with a *home* node
  (round-robin by page number);
* reads fetch a copy of the page from its current owner and cache it;
* writes acquire ownership (invalidating other copies through the home) and
  then modify the local page.

It is intentionally a textbook protocol: the point is to exercise the
parallel abstract interface with a non-message programming model, and to
give the fault-injection tests a stateful protocol to stress.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.simnet.cost import KB, MICROSECOND
from repro.madeleine.message import PackMode
from repro.abstraction.circuit import Circuit, CircuitIncoming


class DsmError(RuntimeError):
    """DSM protocol / usage errors."""


_MSG = struct.Struct("!BIi")  # kind, page number, requester rank

_READ_REQ = 1
_READ_REPLY = 2
_OWN_REQ = 3
_OWN_REPLY = 4
_INVALIDATE = 5
_INV_ACK = 6

DSM_PROTOCOL_OVERHEAD = 3.0 * MICROSECOND


class DsmNode:
    """One node's view of the shared address space."""

    def __init__(self, node, group, *, pages: int = 64, page_size: int = 4 * KB,
                 circuit_name: str = "dsm", adaptive: bool = False):
        self.node = node
        self.sim = node.sim
        self.pages = pages
        self.page_size = page_size
        # adaptive=True rides migratable circuit legs: the shared address
        # space survives WAN degradation / gateway death under it.
        self.circuit: Circuit = node.circuit(circuit_name, group, adaptive=adaptive)
        self.circuit.set_receive_callback(self._on_message)
        self.rank = self.circuit.rank
        self.size = self.circuit.size
        #: pages this node currently owns (authoritative copy).
        self._owned: Dict[int, bytearray] = {}
        #: read-only cached copies.
        self._cache: Dict[int, bytes] = {}
        #: home-node directory: page -> current owner rank (only on the home).
        self._directory: Dict[int, int] = {}
        #: readers recorded by the home for invalidation.
        self._readers: Dict[int, set] = {}
        self._waiters: Dict[Tuple[int, int], List] = {}
        self.remote_reads = 0
        self.remote_acquires = 0
        self.invalidations = 0
        for page in range(pages):
            if self.home_of(page) == self.rank:
                self._owned[page] = bytearray(page_size)
                self._directory[page] = self.rank
                self._readers[page] = set()

    # -- layout ---------------------------------------------------------------------
    def home_of(self, page: int) -> int:
        if not (0 <= page < self.pages):
            raise DsmError(f"page {page} outside address space of {self.pages} pages")
        return page % self.size

    def is_cached(self, page: int) -> bool:
        return page in self._cache or page in self._owned

    # -- public API --------------------------------------------------------------------
    def read(self, page: int):
        """Generator returning the page contents (bytes of length page_size)."""
        if page in self._owned:
            return bytes(self._owned[page])
        if page in self._cache:
            return self._cache[page]
        self.remote_reads += 1
        home = self.home_of(page)
        # If we *are* the home but ownership has migrated, go straight to the
        # recorded owner rather than to ourselves.
        target = home if home != self.rank else self._directory.get(page, home)
        data = yield from self._rpc(target, _READ_REQ, page)
        self._cache[page] = data
        if home == self.rank:
            self._readers.setdefault(page, set()).add(self.rank)
        return data

    def write(self, page: int, data: bytes, offset: int = 0):
        """Generator acquiring write ownership of ``page`` then updating it."""
        if offset + len(data) > self.page_size:
            raise DsmError("write beyond page boundary")
        home = self.home_of(page)
        if page not in self._owned:
            self.remote_acquires += 1
            if home == self.rank:
                # we are the home but somebody else owns the page
                owner = self._directory.get(page, home)
                current = yield from self._rpc(owner, _OWN_REQ, page)
                self._directory[page] = self.rank
            else:
                current = yield from self._rpc(home, _OWN_REQ, page)
            self._owned[page] = bytearray(current)
            self._cache.pop(page, None)
        if home == self.rank:
            # single-writer protocol: writing at the home invalidates every
            # cached read copy recorded in the directory.
            for reader in self._readers.get(page, set()):
                if reader != self.rank:
                    self.invalidations_sent = getattr(self, "invalidations_sent", 0) + 1
                    self._send(reader, _INVALIDATE, page, b"")
            self._readers[page] = set()
        self._owned[page][offset : offset + len(data)] = data
        return None

    def owned_pages(self) -> List[int]:
        return sorted(self._owned)

    # -- protocol engine ------------------------------------------------------------------
    def _rpc(self, dst_rank: int, kind: int, page: int):
        key = (kind, page)
        ev = self.sim.event(name=f"dsm-rpc({kind},{page})")
        self._waiters.setdefault(key, []).append(ev)
        self._send(dst_rank, kind, page, b"")
        data = yield ev
        return data

    def _send(self, dst_rank: int, kind: int, page: int, payload: bytes) -> None:
        msg = self.circuit.new_message(dst_rank)
        msg.pack_express(_MSG.pack(kind, page, self.rank))
        msg.pack_cheaper(payload)
        from repro.simnet.cost import Cost

        cost = Cost().charge(DSM_PROTOCOL_OVERHEAD, "dsm.protocol")
        self.circuit.post(msg, extra_cost=cost)

    def _on_message(self, src_rank: int, incoming: CircuitIncoming, rx) -> None:
        header = incoming.unpack(PackMode.EXPRESS)
        payload = incoming.unpack() if incoming.remaining_segments else b""
        incoming.end_unpacking()
        kind, page, requester = _MSG.unpack(header)

        if kind == _READ_REQ:
            self._handle_read_request(page, requester)
        elif kind == _OWN_REQ:
            self._handle_own_request(page, requester)
        elif kind == _INVALIDATE:
            self._cache.pop(page, None)
            self._owned.pop(page, None)
            self.invalidations += 1
            self._send(src_rank, _INV_ACK, page, b"")
        elif kind in (_READ_REPLY, _OWN_REPLY, _INV_ACK):
            reply_key = {_READ_REPLY: _READ_REQ, _OWN_REPLY: _OWN_REQ, _INV_ACK: _INVALIDATE}[kind]
            waiters = self._waiters.get((reply_key, page))
            if waiters:
                ev = waiters.pop(0)
                if not ev.triggered:
                    ev.succeed(payload, delay=DSM_PROTOCOL_OVERHEAD)
        else:
            raise DsmError(f"unknown DSM message kind {kind}")

    def _handle_read_request(self, page: int, requester: int) -> None:
        if page in self._owned:
            self._readers.setdefault(page, set()).add(requester)
            self._send(requester, _READ_REPLY, page, bytes(self._owned[page]))
        else:
            # home without ownership: forward to the current owner recorded in
            # the directory (two-hop read).
            owner = self._directory.get(page, self.home_of(page))
            if owner == self.rank:
                raise DsmError(f"directory says rank {owner} owns page {page} but it does not")
            self._send(owner, _READ_REQ, page, _MSG.pack(_READ_REQ, page, requester))

    def _handle_own_request(self, page: int, requester: int) -> None:
        if self.home_of(page) == self.rank:
            # invalidate cached readers, transfer the authoritative copy
            current_owner = self._directory.get(page, self.rank)
            data = bytes(self._owned.get(page, bytearray(self.page_size)))
            for reader in self._readers.get(page, set()):
                if reader not in (requester, self.rank):
                    self._send(reader, _INVALIDATE, page, b"")
            self._readers[page] = set()
            self._directory[page] = requester
            if current_owner == self.rank:
                self._owned.pop(page, None)
            self._send(requester, _OWN_REPLY, page, data)
        else:
            # non-home owner handing off: reply with the data, drop ownership
            data = bytes(self._owned.pop(page, bytearray(self.page_size)))
            self._send(requester, _OWN_REPLY, page, data)
