"""Middleware systems hosted by the framework.

"The middleware systems likely to be used by grid-enabled applications are
various: MPI, CORBA, SOAP, HLA, JVM, PVM, etc." (§3.2) — PadicoTM reuses
existing implementations unchanged through the personalities.  Since no such
C/C++ implementation can run in this offline pure-Python environment, this
package re-implements a functional equivalent of each one *on top of the
same personalities*, with per-implementation cost profiles calibrated from
the paper's measurements (e.g. omniORB marshals without copies, Mico and
ORBacus copy during marshalling, the JVM socket layer pays a high per-call
cost):

* :mod:`repro.middleware.mpi` — an MPI library in the MPICH/Madeleine mould
  (communicators, point-to-point with tag matching, collectives, datatypes),
  over the virtual-Madeleine personality.
* :mod:`repro.middleware.corba` — a CORBA ORB with CDR marshalling, GIOP
  requests/replies and four implementation profiles (omniORB 3, omniORB 4,
  Mico 2.3, ORBacus 4.0), over SysWrap sockets.
* :mod:`repro.middleware.javasockets` — the Kaffe-style JVM socket + data
  stream layer, over SysWrap.
* :mod:`repro.middleware.soap` — a gSOAP-like XML/HTTP RPC stack.
* :mod:`repro.middleware.hla` — an HLA Run-Time Infrastructure (federations,
  publish/subscribe, attribute reflection), in the Certi mould.
* :mod:`repro.middleware.pvm` — a PVM-style message-passing library.
* :mod:`repro.middleware.dsm` — a page-based distributed shared memory.

Every module registers itself in :func:`repro.core.modules.global_registry`
so deployments can load "any combination of them at the same time".
"""

from repro.middleware.registry import register_builtin_modules

register_builtin_modules()

__all__ = ["register_builtin_modules"]
