"""Cost profiles of the four CORBA implementations measured by the paper.

The per-call overhead covers the client stub + GIOP machinery + POA dispatch
on each side of one GIOP message; the marshalling bandwidth models how the
implementation moves argument bytes into/out of the GIOP buffer:

* omniORB 3 / omniORB 4 marshal (nearly) without copies — "We notice the
  excellent performance for omniORB; as far as we know, omniORB in PadicoTM
  is the fastest existing CORBA implementation."
* Mico and ORBacus "always copy data for marshalling and unmarshalling",
  which caps them at 55 and 63 MB/s respectively on a 240 MB/s wire — the
  equivalent copy bandwidths below are obtained by inverting the
  serial-composition formula (see ``repro.simnet.cost.required_copy_bandwidth``).

Latency targets (Table 1 / §5): omniORB 3 → 20.3 µs, omniORB 4 → 18.4 µs,
Mico → 63 µs, ORBacus → 54 µs, all over a 10.2 µs VLink path, hence the
per-call overheads below (one-way ≈ VLink + 2 × per_call).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.simnet.cost import MB, MICROSECOND


@dataclass(frozen=True)
class OrbProfile:
    """Software cost model of one CORBA implementation."""

    name: str
    #: per GIOP message, per side (marshal or demarshal + dispatch).
    per_call_overhead: float
    #: equivalent bandwidth of per-byte marshalling work, per side.
    marshal_bandwidth: float
    #: whether the implementation marshals without copying payloads.
    zero_copy: bool
    giop_version: tuple = (1, 2)

    def describe(self) -> str:
        strategy = "zero-copy" if self.zero_copy else "copying"
        return (
            f"{self.name}: {self.per_call_overhead / MICROSECOND:.2f} us/call/side, "
            f"{strategy} marshalling at {self.marshal_bandwidth / MB:.0f} MB/s"
        )


OMNIORB_3 = OrbProfile(
    name="omniORB-3.0.2",
    per_call_overhead=5.05 * MICROSECOND,
    marshal_bandwidth=104_000.0 * MB,
    zero_copy=True,
    giop_version=(1, 0),
)

OMNIORB_4 = OrbProfile(
    name="omniORB-4.0.0",
    per_call_overhead=4.10 * MICROSECOND,
    marshal_bandwidth=30_500.0 * MB,
    zero_copy=True,
    giop_version=(1, 2),
)

MICO_2_3_7 = OrbProfile(
    name="Mico-2.3.7",
    per_call_overhead=26.4 * MICROSECOND,
    marshal_bandwidth=142.5 * MB,
    zero_copy=False,
    giop_version=(1, 2),
)

ORBACUS_4_0_5 = OrbProfile(
    name="ORBacus-4.0.5",
    per_call_overhead=21.9 * MICROSECOND,
    marshal_bandwidth=171.0 * MB,
    zero_copy=False,
    giop_version=(1, 2),
)

ORB_PROFILES: Dict[str, OrbProfile] = {
    p.name: p for p in (OMNIORB_3, OMNIORB_4, MICO_2_3_7, ORBACUS_4_0_5)
}
