"""CDR (Common Data Representation) marshalling.

A real, big-endian CDR encoder/decoder with the alignment rules of the OMG
specification (each primitive aligned on its natural boundary relative to
the start of the stream).  Supports the primitive types used by the
reproduction's IDL interfaces plus strings, octet/typed sequences and
structs.  Property-based tests round-trip arbitrary values through it.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np


class CdrError(RuntimeError):
    """Marshalling errors (truncated buffers, type mismatches, ...)."""


class CdrOutputStream:
    """Encoder: appends CDR-encoded values to a growing buffer."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def _align(self, boundary: int) -> None:
        pad = (-len(self._buf)) % boundary
        self._buf += b"\x00" * pad

    def _pack(self, fmt: str, boundary: int, value) -> None:
        self._align(boundary)
        self._buf += struct.pack(fmt, value)

    # primitives --------------------------------------------------------------
    def put_octet(self, value: int) -> None:
        self._pack("!B", 1, value)

    def put_boolean(self, value: bool) -> None:
        self._pack("!B", 1, 1 if value else 0)

    def put_short(self, value: int) -> None:
        self._pack("!h", 2, value)

    def put_long(self, value: int) -> None:
        self._pack("!i", 4, value)

    def put_ulong(self, value: int) -> None:
        self._pack("!I", 4, value)

    def put_longlong(self, value: int) -> None:
        self._pack("!q", 8, value)

    def put_float(self, value: float) -> None:
        self._pack("!f", 4, value)

    def put_double(self, value: float) -> None:
        self._pack("!d", 8, value)

    def put_string(self, value: str) -> None:
        raw = value.encode("utf-8") + b"\x00"
        self.put_ulong(len(raw))
        self._buf += raw

    def put_octet_sequence(self, value: bytes) -> None:
        self.put_ulong(len(value))
        self._buf += value

    def put_raw(self, value: bytes) -> None:
        self._buf += value

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class CdrInputStream:
    """Decoder: reads CDR-encoded values sequentially."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _align(self, boundary: int) -> None:
        self._pos += (-self._pos) % boundary

    def _unpack(self, fmt: str, boundary: int, size: int):
        self._align(boundary)
        if self._pos + size > len(self._data):
            raise CdrError(
                f"truncated CDR stream: need {size} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        (value,) = struct.unpack_from(fmt, self._data, self._pos)
        self._pos += size
        return value

    # primitives --------------------------------------------------------------
    def get_octet(self) -> int:
        return self._unpack("!B", 1, 1)

    def get_boolean(self) -> bool:
        return bool(self._unpack("!B", 1, 1))

    def get_short(self) -> int:
        return self._unpack("!h", 2, 2)

    def get_long(self) -> int:
        return self._unpack("!i", 4, 4)

    def get_ulong(self) -> int:
        return self._unpack("!I", 4, 4)

    def get_longlong(self) -> int:
        return self._unpack("!q", 8, 8)

    def get_float(self) -> float:
        return self._unpack("!f", 4, 4)

    def get_double(self) -> float:
        return self._unpack("!d", 8, 8)

    def get_string(self) -> str:
        length = self.get_ulong()
        raw = self.get_bytes(length)
        if not raw.endswith(b"\x00"):
            raise CdrError("CDR string is not NUL-terminated")
        return raw[:-1].decode("utf-8")

    def get_octet_sequence(self) -> bytes:
        length = self.get_ulong()
        return self.get_bytes(length)

    def get_bytes(self, length: int) -> bytes:
        if self._pos + length > len(self._data):
            raise CdrError("truncated CDR stream while reading raw bytes")
        out = self._data[self._pos : self._pos + length]
        self._pos += length
        return out

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


# ---------------------------------------------------------------------------
# TypeCodes: minimal reflective typing used by the IDL layer
# ---------------------------------------------------------------------------


class TypeCode:
    """A marshallable type: knows how to encode/decode one value."""

    name = "abstract"

    def encode(self, out: CdrOutputStream, value) -> None:
        raise NotImplementedError

    def decode(self, inp: CdrInputStream):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TypeCode {self.name}>"


class _Primitive(TypeCode):
    def __init__(self, name: str, putter: str, getter: str):
        self.name = name
        self._putter = putter
        self._getter = getter

    def encode(self, out: CdrOutputStream, value) -> None:
        getattr(out, self._putter)(value)

    def decode(self, inp: CdrInputStream):
        return getattr(inp, self._getter)()


class _Void(TypeCode):
    name = "void"

    def encode(self, out: CdrOutputStream, value) -> None:
        if value is not None:
            raise CdrError("void type cannot carry a value")

    def decode(self, inp: CdrInputStream):
        return None


class _OctetSeq(TypeCode):
    name = "sequence<octet>"

    def encode(self, out: CdrOutputStream, value) -> None:
        if isinstance(value, np.ndarray):
            value = value.tobytes()
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise CdrError(f"sequence<octet> requires bytes, got {type(value).__name__}")
        out.put_octet_sequence(bytes(value))

    def decode(self, inp: CdrInputStream):
        return inp.get_octet_sequence()


class _TypedSeq(TypeCode):
    """Sequence of a fixed-size numeric type, carried as a numpy array."""

    def __init__(self, name: str, np_dtype: str, itemsize: int, align: int):
        self.name = name
        self.np_dtype = np_dtype
        self.itemsize = itemsize
        self.align = align

    def encode(self, out: CdrOutputStream, value) -> None:
        arr = np.asarray(value, dtype=self.np_dtype)
        out.put_ulong(arr.size)
        out._align(self.align)
        out.put_raw(arr.astype(f">{self.np_dtype[1:]}").tobytes())

    def decode(self, inp: CdrInputStream):
        count = inp.get_ulong()
        inp._align(self.align)
        raw = inp.get_bytes(count * self.itemsize)
        return np.frombuffer(raw, dtype=f">{self.np_dtype[1:]}").astype(self.np_dtype)


class SequenceTC(TypeCode):
    """Sequence of an arbitrary element TypeCode (list on the Python side)."""

    def __init__(self, element: TypeCode):
        self.element = element
        self.name = f"sequence<{element.name}>"

    def encode(self, out: CdrOutputStream, value: Sequence) -> None:
        out.put_ulong(len(value))
        for item in value:
            self.element.encode(out, item)

    def decode(self, inp: CdrInputStream) -> List:
        count = inp.get_ulong()
        return [self.element.decode(inp) for _ in range(count)]


class StructTC(TypeCode):
    """A named struct: ordered (field, TypeCode) pairs, dict on the Python side."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, TypeCode]]):
        self.name = name
        self.fields = list(fields)

    def encode(self, out: CdrOutputStream, value: Dict[str, Any]) -> None:
        for field_name, tc in self.fields:
            if field_name not in value:
                raise CdrError(f"struct {self.name} missing field {field_name!r}")
            tc.encode(out, value[field_name])

    def decode(self, inp: CdrInputStream) -> Dict[str, Any]:
        return {field_name: tc.decode(inp) for field_name, tc in self.fields}


TC_VOID = _Void()
TC_OCTET = _Primitive("octet", "put_octet", "get_octet")
TC_BOOLEAN = _Primitive("boolean", "put_boolean", "get_boolean")
TC_SHORT = _Primitive("short", "put_short", "get_short")
TC_LONG = _Primitive("long", "put_long", "get_long")
TC_ULONG = _Primitive("unsigned long", "put_ulong", "get_ulong")
TC_LONGLONG = _Primitive("long long", "put_longlong", "get_longlong")
TC_FLOAT = _Primitive("float", "put_float", "get_float")
TC_DOUBLE = _Primitive("double", "put_double", "get_double")
TC_STRING = _Primitive("string", "put_string", "get_string")
TC_OCTET_SEQ = _OctetSeq()
TC_DOUBLE_SEQ = _TypedSeq("sequence<double>", "<f8", 8, 8)
TC_LONG_SEQ = _TypedSeq("sequence<long>", "<i4", 4, 4)
