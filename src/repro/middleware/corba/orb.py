"""The ORB engine: object adapter, client stubs, GIOP over SysWrap sockets.

One :class:`ORB` instance per node plays both roles:

* **server** (POA): servants are activated with an object key; the ORB
  listens on its port through the SysWrap personality and dispatches
  incoming GIOP Requests onto servant methods;
* **client**: :class:`Proxy` objects marshal invocations with CDR, frame
  them in GIOP and send them over a (cached) SysWrap connection.

The ORB never talks to the network directly: everything goes through the
SysWrap socket facade, so the same ORB code runs over Ethernet (SysIO
driver), Myrinet (MadIO driver) or any WAN method — the virtualisation claim
the paper makes for the real omniORB/Mico/ORBacus binaries.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.simnet.cost import Cost
from repro.personalities.syswrap import SysWrap, SysWrapSocket
from repro.middleware.corba.cdr import CdrInputStream, CdrOutputStream
from repro.middleware.corba.giop import (
    GIOP_HEADER_SIZE,
    GiopMessage,
    MSG_REPLY,
    MSG_REQUEST,
    REPLY_OK,
    REPLY_SYSTEM_EXCEPTION,
    make_reply,
    make_request,
)
from repro.middleware.corba.idl import Interface
from repro.middleware.corba.profiles import OrbProfile, OMNIORB_4


class CorbaError(RuntimeError):
    """ORB-level failures (unknown object key, system exceptions, ...)."""


class ObjectReference:
    """A stringifiable object reference (corbaloc-style IOR)."""

    def __init__(self, host_name: str, port: int, object_key: bytes, repo_id: str):
        self.host_name = host_name
        self.port = port
        self.object_key = object_key
        self.repo_id = repo_id

    def to_string(self) -> str:
        return f"corbaloc::{self.host_name}:{self.port}/{self.object_key.decode('utf-8')}#{self.repo_id}"

    @classmethod
    def from_string(cls, ior: str) -> "ObjectReference":
        if not ior.startswith("corbaloc::"):
            raise CorbaError(f"unsupported IOR format: {ior!r}")
        rest = ior[len("corbaloc::"):]
        addr, _, tail = rest.partition("/")
        host, _, port = addr.partition(":")
        key, _, repo_id = tail.partition("#")
        return cls(host, int(port), key.encode("utf-8"), repo_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObjectReference {self.to_string()}>"


class Servant:
    """Base class for object implementations: methods named after operations."""

    def _dispatch(self, operation: str, args):
        method = getattr(self, operation, None)
        if method is None:
            raise CorbaError(f"servant {type(self).__name__} does not implement {operation!r}")
        return method(*args)


class _ClientConnection:
    """One cached client-side GIOP connection with a reply-matching reader."""

    def __init__(self, orb: "ORB", sock: SysWrapSocket):
        self.orb = orb
        self.sim = orb.sim
        self.sock = sock
        self._pending: Dict[int, object] = {}
        self._reader = self.sim.process(self._read_loop(), name="giop-client-reader")

    def send_request(self, message: GiopMessage, expect_reply: bool):
        ev = self.sim.event(name=f"giop-reply({message.request_id})")
        if expect_reply:
            self._pending[message.request_id] = ev
        send_ev = self.sock.send(message.encode())
        if not expect_reply:
            send_ev.chain(ev)
        return ev

    def _read_loop(self):
        while True:
            try:
                header = yield self.sock.recv_exact(GIOP_HEADER_SIZE)
                _msg_type, size, _version = GiopMessage.parse_header(header)
                payload = (yield self.sock.recv_exact(size)) if size else b""
            except (ConnectionError, OSError):
                return
            reply = GiopMessage.decode(header, payload)
            if reply.msg_type != MSG_REPLY:
                continue
            ev = self._pending.pop(reply.request_id, None)
            if ev is None:
                continue
            # Demarshalling cost of the reply on the client side.
            cost = self.orb.message_cost(len(reply.body))
            ev.succeed(reply, delay=cost)


class Proxy:
    """Client stub for a remote object."""

    def __init__(self, orb: "ORB", reference: ObjectReference, interface: Interface):
        self.orb = orb
        self.sim = orb.sim
        self.reference = reference
        self.interface = interface
        self.invocations = 0

    def invoke(self, operation: str, *args):
        """Invoke ``operation(*args)`` on the remote object (generator)."""
        op = self.interface.operation(operation)
        out = CdrOutputStream()
        op.encode_args(out, args)
        body = out.getvalue()
        request = make_request(
            self.orb.next_request_id(), self.reference.object_key, operation, body
        )
        # Marshalling + stub cost on the client side delays the send.
        yield self.sim.timeout(self.orb.message_cost(len(body)))
        conn = yield from self.orb._client_connection(self.reference)
        reply_ev = conn.send_request(request, expect_reply=not op.oneway)
        self.invocations += 1
        if op.oneway:
            yield reply_ev
            return None
        reply: GiopMessage = yield reply_ev
        if reply.reply_status != REPLY_OK:
            raise CorbaError(
                f"system exception from {operation!r}: {reply.body.decode('utf-8', 'replace')}"
            )
        return op.decode_result(CdrInputStream(reply.body))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Proxy {self.interface.repo_id} @ {self.reference.to_string()}>"


class ORB:
    """One CORBA ORB instance (client + server roles) on a node."""

    _port_allocator = itertools.count(14000)

    def __init__(
        self,
        node,
        profile: OrbProfile = OMNIORB_4,
        *,
        port: Optional[int] = None,
        forced_method: Optional[str] = None,
    ):
        self.node = node
        self.sim = node.sim
        self.profile = profile
        self.port = port if port is not None else next(self._port_allocator)
        self.syswrap = SysWrap(node.vlink, forced_method=forced_method)
        self._servants: Dict[bytes, Tuple[Servant, Interface]] = {}
        self._request_ids = itertools.count(1)
        self._listening = False
        self._client_conns: Dict[Tuple[str, int], _ClientConnection] = {}
        self.requests_served = 0

    # -- cost model -------------------------------------------------------------
    def message_cost(self, body_bytes: int) -> float:
        """Software cost of producing or consuming one GIOP message side."""
        cost = Cost()
        cost.charge(self.profile.per_call_overhead, "orb.call")
        cost.charge_copy(body_bytes, self.profile.marshal_bandwidth, "orb.marshal")
        return cost.seconds

    def next_request_id(self) -> int:
        return next(self._request_ids)

    # -- server side (object adapter) -----------------------------------------------
    def activate_object(
        self, servant: Servant, interface: Interface, key: Optional[str] = None
    ) -> ObjectReference:
        """Register a servant and return its object reference."""
        object_key = (key or f"obj{len(self._servants)}").encode("utf-8")
        if object_key in self._servants:
            raise CorbaError(f"object key {object_key!r} already activated")
        self._servants[object_key] = (servant, interface)
        self._ensure_listening()
        return ObjectReference(self.node.host.name, self.port, object_key, interface.repo_id)

    def _ensure_listening(self) -> None:
        if self._listening:
            return
        self._listening = True
        listener_sock = self.syswrap.socket()
        listener_sock.bind((self.node.host.name, self.port))
        listener_sock.listen()
        self._listener_sock = listener_sock
        self.sim.process(self._accept_loop(listener_sock), name=f"giop-accept-{self.port}")

    def _accept_loop(self, listener_sock: SysWrapSocket):
        while True:
            sock, _peer = yield listener_sock.accept()
            self.sim.process(self._serve_connection(sock), name="giop-server-conn")

    def _serve_connection(self, sock: SysWrapSocket):
        while True:
            try:
                header = yield sock.recv_exact(GIOP_HEADER_SIZE)
                msg_type, size, _version = GiopMessage.parse_header(header)
                payload = (yield sock.recv_exact(size)) if size else b""
            except (ConnectionError, OSError):
                return
            if msg_type != MSG_REQUEST:
                continue
            request = GiopMessage.decode(header, payload)
            # Demarshalling + POA dispatch cost on the server side.
            yield self.sim.timeout(self.message_cost(len(request.body)))
            reply = yield from self._dispatch(request)
            if reply is None:
                continue  # oneway
            # Marshalling cost of the reply on the server side.
            yield self.sim.timeout(self.message_cost(len(reply.body)))
            yield sock.send(reply.encode())

    def _dispatch(self, request: GiopMessage):
        entry = self._servants.get(request.object_key)
        if entry is None:
            return make_reply(
                request.request_id,
                f"unknown object key {request.object_key!r}".encode("utf-8"),
                status=REPLY_SYSTEM_EXCEPTION,
            )
        servant, interface = entry
        try:
            op = interface.operation(request.operation)
            args = op.decode_args(CdrInputStream(request.body))
            result = servant._dispatch(request.operation, args)
            if hasattr(result, "send") and hasattr(result, "throw"):
                # servant method is itself a generator (it performs nested
                # communication); run it to completion inside this process.
                result = yield from result
            self.requests_served += 1
            if op.oneway:
                return None
            out = CdrOutputStream()
            op.encode_result(out, result)
            return make_reply(request.request_id, out.getvalue())
        except Exception as exc:  # noqa: BLE001 - converted to a GIOP system exception
            return make_reply(
                request.request_id, str(exc).encode("utf-8"), status=REPLY_SYSTEM_EXCEPTION
            )

    # -- client side --------------------------------------------------------------------
    def string_to_object(self, ior: str, interface: Interface) -> Proxy:
        return Proxy(self, ObjectReference.from_string(ior), interface)

    def object_to_proxy(self, reference: ObjectReference, interface: Interface) -> Proxy:
        return Proxy(self, reference, interface)

    def _client_connection(self, reference: ObjectReference):
        key = (reference.host_name, reference.port)
        conn = self._client_conns.get(key)
        if conn is not None:
            return conn
        sock = self.syswrap.socket()
        yield sock.connect((reference.host_name, reference.port))
        conn = _ClientConnection(self, sock)
        self._client_conns[key] = conn
        return conn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ORB {self.profile.name} on {self.node.host.name}:{self.port}>"
