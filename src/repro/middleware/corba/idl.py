"""A minimal IDL layer: interfaces and typed operations.

Real ORBs generate stubs and skeletons from IDL; here an
:class:`Interface` is declared programmatically with typed
:class:`Operation` signatures, and the ORB uses it to marshal arguments and
results (client stub role) and to dispatch onto servant methods (skeleton
role).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.middleware.corba.cdr import (
    CdrError,
    CdrInputStream,
    CdrOutputStream,
    TC_VOID,
    TypeCode,
)


@dataclass(frozen=True)
class Operation:
    """One IDL operation: name, typed in-parameters, result type."""

    name: str
    params: Tuple[Tuple[str, TypeCode], ...] = ()
    result: TypeCode = TC_VOID
    oneway: bool = False

    def encode_args(self, out: CdrOutputStream, args: Sequence) -> None:
        if len(args) != len(self.params):
            raise CdrError(
                f"operation {self.name!r} expects {len(self.params)} argument(s), got {len(args)}"
            )
        for (pname, tc), value in zip(self.params, args):
            tc.encode(out, value)

    def decode_args(self, inp: CdrInputStream) -> List:
        return [tc.decode(inp) for _pname, tc in self.params]

    def encode_result(self, out: CdrOutputStream, value) -> None:
        self.result.encode(out, value)

    def decode_result(self, inp: CdrInputStream):
        return self.result.decode(inp)


class Interface:
    """A named collection of operations (the IDL ``interface``)."""

    def __init__(self, repo_id: str, operations: Sequence[Operation] = ()):
        self.repo_id = repo_id
        self._operations: Dict[str, Operation] = {}
        for op in operations:
            self.add_operation(op)

    def add_operation(self, op: Operation) -> Operation:
        if op.name in self._operations:
            raise ValueError(f"operation {op.name!r} already declared on {self.repo_id}")
        self._operations[op.name] = op
        return op

    def operation(self, name: str) -> Operation:
        try:
            return self._operations[name]
        except KeyError:
            raise LookupError(
                f"interface {self.repo_id} has no operation {name!r}; "
                f"declared: {sorted(self._operations)}"
            ) from None

    def operation_names(self) -> List[str]:
        return sorted(self._operations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interface {self.repo_id} ops={self.operation_names()}>"
