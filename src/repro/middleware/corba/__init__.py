"""A CORBA middleware (ORB, CDR marshalling, GIOP) with per-implementation profiles.

The paper runs four unmodified ORBs inside PadicoTM through the SysWrap
personality: omniORB 3, omniORB 4, Mico 2.3.x and ORBacus 4.0.5.  Their very
different Figure-3 plateaus (≈238, ≈236, ≈55 and ≈63 MB/s) come from their
internal marshalling strategy — omniORB marshals without copying, Mico and
ORBacus "always copy data for marshalling and unmarshalling" (§5).

This package provides one ORB engine written against SysWrap sockets and an
:class:`~repro.middleware.corba.profiles.OrbProfile` per implementation that
sets the per-call overhead and the (possibly copying) marshalling bandwidth,
so the same mechanism reproduces all four curves.
"""

from repro.middleware.corba.cdr import (
    CdrError,
    CdrInputStream,
    CdrOutputStream,
    TypeCode,
    TC_BOOLEAN,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_OCTET_SEQ,
    TC_DOUBLE_SEQ,
    TC_LONG_SEQ,
    TC_STRING,
    TC_VOID,
    StructTC,
    SequenceTC,
)
from repro.middleware.corba.giop import GiopError, GiopMessage, MSG_REPLY, MSG_REQUEST
from repro.middleware.corba.idl import Interface, Operation
from repro.middleware.corba.profiles import (
    OrbProfile,
    OMNIORB_3,
    OMNIORB_4,
    MICO_2_3_7,
    ORBACUS_4_0_5,
    ORB_PROFILES,
)
from repro.middleware.corba.orb import ORB, CorbaError, ObjectReference, Proxy, Servant

__all__ = [
    "CdrError",
    "CdrInputStream",
    "CdrOutputStream",
    "TypeCode",
    "TC_BOOLEAN",
    "TC_DOUBLE",
    "TC_FLOAT",
    "TC_LONG",
    "TC_LONGLONG",
    "TC_OCTET",
    "TC_OCTET_SEQ",
    "TC_DOUBLE_SEQ",
    "TC_LONG_SEQ",
    "TC_STRING",
    "TC_VOID",
    "StructTC",
    "SequenceTC",
    "GiopError",
    "GiopMessage",
    "MSG_REQUEST",
    "MSG_REPLY",
    "Interface",
    "Operation",
    "OrbProfile",
    "OMNIORB_3",
    "OMNIORB_4",
    "MICO_2_3_7",
    "ORBACUS_4_0_5",
    "ORB_PROFILES",
    "ORB",
    "CorbaError",
    "ObjectReference",
    "Proxy",
    "Servant",
]
