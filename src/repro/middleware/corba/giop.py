"""GIOP (General Inter-ORB Protocol) message framing.

Only the two message types needed for synchronous invocations are
implemented — Request and Reply — with the standard 12-byte GIOP header
(magic, version, flags, message type, body size) so the framing survives a
byte-stream transport and interoperates across ORB profiles (the paper's
interoperability requirement: CORBA stays IIOP-compatible on the wire).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Tuple

_GIOP_HEADER = struct.Struct("!4sBBBBI")  # magic, major, minor, flags, msg type, body size
GIOP_MAGIC = b"GIOP"
GIOP_HEADER_SIZE = _GIOP_HEADER.size

MSG_REQUEST = 0
MSG_REPLY = 1

REPLY_OK = 0
REPLY_USER_EXCEPTION = 1
REPLY_SYSTEM_EXCEPTION = 2

_REQUEST_PREFIX = struct.Struct("!IIH")   # request id, key length, operation length
_REPLY_PREFIX = struct.Struct("!II")      # request id, reply status


class GiopError(RuntimeError):
    """Malformed GIOP traffic."""


@dataclass
class GiopMessage:
    """One parsed GIOP message."""

    msg_type: int
    request_id: int
    body: bytes
    object_key: bytes = b""
    operation: str = ""
    reply_status: int = REPLY_OK
    version: Tuple[int, int] = (1, 2)
    flags: int = 0
    meta: dict = field(default_factory=dict)

    # -- encoding -----------------------------------------------------------------
    def encode(self) -> bytes:
        if self.msg_type == MSG_REQUEST:
            op = self.operation.encode("utf-8")
            payload = (
                _REQUEST_PREFIX.pack(self.request_id, len(self.object_key), len(op))
                + self.object_key
                + op
                + self.body
            )
        elif self.msg_type == MSG_REPLY:
            payload = _REPLY_PREFIX.pack(self.request_id, self.reply_status) + self.body
        else:
            raise GiopError(f"unsupported GIOP message type {self.msg_type}")
        header = _GIOP_HEADER.pack(
            GIOP_MAGIC, self.version[0], self.version[1], self.flags, self.msg_type, len(payload)
        )
        return header + payload

    # -- decoding -------------------------------------------------------------------
    @staticmethod
    def parse_header(header: bytes) -> Tuple[int, int, Tuple[int, int]]:
        """Return ``(msg_type, body_size, version)`` from a 12-byte header."""
        if len(header) != GIOP_HEADER_SIZE:
            raise GiopError(f"GIOP header must be {GIOP_HEADER_SIZE} bytes, got {len(header)}")
        magic, major, minor, _flags, msg_type, size = _GIOP_HEADER.unpack(header)
        if magic != GIOP_MAGIC:
            raise GiopError(f"bad GIOP magic {magic!r}")
        return msg_type, size, (major, minor)

    @classmethod
    def decode(cls, header: bytes, payload: bytes) -> "GiopMessage":
        msg_type, size, version = cls.parse_header(header)
        if len(payload) != size:
            raise GiopError(f"GIOP body size mismatch: header says {size}, got {len(payload)}")
        if msg_type == MSG_REQUEST:
            request_id, key_len, op_len = _REQUEST_PREFIX.unpack_from(payload, 0)
            offset = _REQUEST_PREFIX.size
            object_key = payload[offset : offset + key_len]
            offset += key_len
            operation = payload[offset : offset + op_len].decode("utf-8")
            offset += op_len
            return cls(
                msg_type=MSG_REQUEST,
                request_id=request_id,
                object_key=object_key,
                operation=operation,
                body=payload[offset:],
                version=version,
            )
        if msg_type == MSG_REPLY:
            request_id, status = _REPLY_PREFIX.unpack_from(payload, 0)
            return cls(
                msg_type=MSG_REPLY,
                request_id=request_id,
                reply_status=status,
                body=payload[_REPLY_PREFIX.size :],
                version=version,
            )
        raise GiopError(f"unsupported GIOP message type {msg_type}")

    @property
    def total_bytes(self) -> int:
        """Size of the encoded message including the GIOP header."""
        return GIOP_HEADER_SIZE + len(self.body) + (
            _REQUEST_PREFIX.size + len(self.object_key) + len(self.operation.encode("utf-8"))
            if self.msg_type == MSG_REQUEST
            else _REPLY_PREFIX.size
        )


def make_request(request_id: int, object_key: bytes, operation: str, body: bytes) -> GiopMessage:
    return GiopMessage(
        msg_type=MSG_REQUEST,
        request_id=request_id,
        object_key=object_key,
        operation=operation,
        body=body,
    )


def make_reply(request_id: int, body: bytes, status: int = REPLY_OK) -> GiopMessage:
    return GiopMessage(msg_type=MSG_REPLY, request_id=request_id, reply_status=status, body=body)
