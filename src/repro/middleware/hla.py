"""An HLA Run-Time Infrastructure (RTI) in the Certi mould.

§4.3: "an HLA implementation (Certi from the Onera)" is among the middleware
ported onto PadicoTM through SysWrap.  HLA (IEEE 1516) structures a
distributed simulation as a *federation* of *federates* that publish and
subscribe object-class attributes and exchange interactions; the RTI routes
attribute updates to subscribers and manages federation membership.

This module implements a central-RTIG architecture (like Certi): one node
runs the RTI gateway (:class:`RtiGateway`); each federate connects to it
through a :class:`FederateAmbassador`-carrying :class:`RtiAmbassador`.
Transport is SysWrap sockets with length-prefixed pickled control messages —
HLA traffic is control-plane-ish, so unlike the CORBA path no cost profile
calibration is attempted beyond a fixed per-message overhead.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.simnet.cost import MICROSECOND
from repro.personalities.syswrap import SysWrap, SysWrapSocket

_FRAME = struct.Struct("!I")
RTI_MESSAGE_OVERHEAD = 20.0 * MICROSECOND


class RtiError(RuntimeError):
    """Federation management errors."""


@dataclass
class _Federate:
    name: str
    sock: SysWrapSocket
    subscriptions: Set[str] = field(default_factory=set)
    published: Set[str] = field(default_factory=set)


class RtiGateway:
    """The central RTI process (RTIG): federation state + update routing."""

    def __init__(self, node, port: int = 17000):
        self.node = node
        self.sim = node.sim
        self.port = port
        self.syswrap = SysWrap(node.vlink)
        self._federations: Dict[str, Dict[str, _Federate]] = {}
        self._objects: Dict[Tuple[str, int], Tuple[str, str]] = {}  # (fed, id) -> (class, owner)
        self._next_object_id = 1
        self.updates_routed = 0
        sock = self.syswrap.socket()
        sock.bind((node.host.name, port))
        sock.listen()
        self.sim.process(self._accept_loop(sock), name=f"rtig-accept-{port}")

    # -- wire helpers ------------------------------------------------------------
    @staticmethod
    def _encode(msg: dict) -> bytes:
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        return _FRAME.pack(len(payload)) + payload

    def _accept_loop(self, listener: SysWrapSocket):
        while True:
            sock, _peer = yield listener.accept()
            self.sim.process(self._serve(sock), name="rtig-conn")

    def _serve(self, sock: SysWrapSocket):
        federate: Optional[_Federate] = None
        federation: Optional[str] = None
        while True:
            try:
                header = yield sock.recv_exact(_FRAME.size)
                (size,) = _FRAME.unpack(header)
                payload = yield sock.recv_exact(size)
            except (ConnectionError, OSError):
                if federate is not None and federation is not None:
                    self._federations.get(federation, {}).pop(federate.name, None)
                return
            yield self.sim.timeout(RTI_MESSAGE_OVERHEAD)
            msg = pickle.loads(payload)
            kind = msg["kind"]
            if kind == "create_federation":
                self._federations.setdefault(msg["federation"], {})
                yield sock.send(self._encode({"kind": "ack"}))
            elif kind == "join":
                federation = msg["federation"]
                if federation not in self._federations:
                    yield sock.send(
                        self._encode({"kind": "error", "message": "no such federation"})
                    )
                    continue
                federate = _Federate(msg["federate"], sock)
                self._federations[federation][federate.name] = federate
                yield sock.send(self._encode({"kind": "joined", "federate": federate.name}))
            elif kind == "publish":
                federate.published.add(msg["object_class"])
                yield sock.send(self._encode({"kind": "ack"}))
            elif kind == "subscribe":
                federate.subscriptions.add(msg["object_class"])
                yield sock.send(self._encode({"kind": "ack"}))
            elif kind == "register_object":
                object_id = self._next_object_id
                self._next_object_id += 1
                self._objects[(federation, object_id)] = (msg["object_class"], federate.name)
                yield sock.send(self._encode({"kind": "object_registered", "object_id": object_id}))
            elif kind == "update":
                object_class, _owner = self._objects.get(
                    (federation, msg["object_id"]), (msg.get("object_class", ""), "")
                )
                notification = self._encode(
                    {
                        "kind": "reflect",
                        "object_id": msg["object_id"],
                        "object_class": object_class,
                        "attributes": msg["attributes"],
                        "sender": federate.name,
                        "timestamp": msg.get("timestamp"),
                    }
                )
                for other in self._federations.get(federation, {}).values():
                    if other.name != federate.name and object_class in other.subscriptions:
                        self.updates_routed += 1
                        other.sock.send(notification)
                yield sock.send(self._encode({"kind": "ack"}))
            else:
                yield sock.send(self._encode({"kind": "error", "message": f"unknown {kind!r}"}))


class FederateAmbassador:
    """Callback interface implemented by the federate application."""

    def reflect_attribute_values(self, object_id: int, object_class: str,
                                 attributes: Dict[str, object], sender: str,
                                 timestamp: Optional[float]) -> None:
        """Called when a subscribed object's attributes are updated."""


class RtiAmbassador:
    """The federate-side API (a small subset of the IEEE 1516 services)."""

    def __init__(self, node, rtig_host, port: int = 17000,
                 federate_ambassador: Optional[FederateAmbassador] = None):
        self.node = node
        self.sim = node.sim
        self.rtig_host = rtig_host
        self.port = port
        self.syswrap = SysWrap(node.vlink)
        self.federate_ambassador = federate_ambassador or FederateAmbassador()
        self._sock: Optional[SysWrapSocket] = None
        self._replies: List = []
        self._reply_waiters: List = []
        self.reflections_received = 0

    # -- connection and request/response plumbing ----------------------------------
    def _ensure_connected(self):
        if self._sock is not None:
            return
        sock = self.syswrap.socket()
        yield sock.connect((self.rtig_host, self.port))
        self._sock = sock
        self.sim.process(self._reader(), name="federate-reader")

    def _reader(self):
        while True:
            try:
                header = yield self._sock.recv_exact(_FRAME.size)
                (size,) = _FRAME.unpack(header)
                payload = yield self._sock.recv_exact(size)
            except (ConnectionError, OSError):
                return
            msg = pickle.loads(payload)
            if msg["kind"] == "reflect":
                self.reflections_received += 1
                self.federate_ambassador.reflect_attribute_values(
                    msg["object_id"], msg["object_class"], msg["attributes"],
                    msg["sender"], msg.get("timestamp"),
                )
            else:
                if self._reply_waiters:
                    ev = self._reply_waiters.pop(0)
                    if not ev.triggered:
                        ev.succeed(msg)
                else:
                    self._replies.append(msg)

    def _request(self, msg: dict):
        yield from self._ensure_connected()
        yield self.sim.timeout(RTI_MESSAGE_OVERHEAD)
        yield self._sock.send(RtiGateway._encode(msg))
        if self._replies:
            return self._replies.pop(0)
        ev = self.sim.event(name="rti-reply")
        self._reply_waiters.append(ev)
        reply = yield ev
        if reply.get("kind") == "error":
            raise RtiError(reply.get("message", "RTI error"))
        return reply

    # -- federation management services ---------------------------------------------------
    def create_federation_execution(self, federation: str):
        yield from self._request({"kind": "create_federation", "federation": federation})

    def join_federation_execution(self, federate: str, federation: str):
        reply = yield from self._request(
            {"kind": "join", "federate": federate, "federation": federation}
        )
        return reply["federate"]

    # -- declaration management --------------------------------------------------------------
    def publish_object_class(self, object_class: str):
        yield from self._request({"kind": "publish", "object_class": object_class})

    def subscribe_object_class(self, object_class: str):
        yield from self._request({"kind": "subscribe", "object_class": object_class})

    # -- object management ---------------------------------------------------------------------
    def register_object_instance(self, object_class: str):
        reply = yield from self._request(
            {"kind": "register_object", "object_class": object_class}
        )
        return reply["object_id"]

    def update_attribute_values(self, object_id: int, attributes: Dict[str, object],
                                timestamp: Optional[float] = None):
        yield from self._request(
            {
                "kind": "update",
                "object_id": object_id,
                "attributes": attributes,
                "timestamp": timestamp,
            }
        )
