"""The dynamic-topology subsystem: monitoring, churn and feedback.

The paper's abstraction layer chooses adapters from a topology knowledge
base; this package is what keeps that knowledge base *true* while the grid
changes underneath it, and what makes change survivable:

* :mod:`repro.monitoring.probes` — passive per-link observers fed by real
  traffic, plus seeded active ping probes run as simulator processes;
* :mod:`repro.monitoring.estimators` — EWMA and sliding-window smoothing of
  raw samples into measured link profiles;
* :mod:`repro.monitoring.feedback` — the :class:`TopologyMonitor` pushing
  measured profiles into the :class:`~repro.abstraction.topology.TopologyKB`
  (generation bump → cache invalidation → adaptive re-selection) and
  marking dead links down after a run of lost probes;
* :mod:`repro.monitoring.churn` — a deterministic, seeded fault injector
  (link degradation/failure/recovery, gateway death) with inhomogeneous
  Poisson arrival schedules via thinning.

The reaction side — live VLinks migrating to new adapters or gateway
routes without losing or reordering bytes — lives in
:mod:`repro.abstraction.adaptive`.
"""

from repro.monitoring.estimators import (
    EwmaEstimator,
    LinkEstimator,
    LinkSample,
    MeasuredLink,
    SlidingWindowEstimator,
)
from repro.monitoring.probes import ActivePingProbe, PassiveLinkProbe
from repro.monitoring.feedback import LinkWatch, TopologyMonitor
from repro.monitoring.churn import FaultEvent, FaultInjector, poisson_thinning_times

__all__ = [
    "ActivePingProbe",
    "EwmaEstimator",
    "FaultEvent",
    "FaultInjector",
    "LinkEstimator",
    "LinkSample",
    "LinkWatch",
    "MeasuredLink",
    "PassiveLinkProbe",
    "SlidingWindowEstimator",
    "TopologyMonitor",
    "poisson_thinning_times",
]
