"""Link probes: passive traffic observers and active ping processes.

Two complementary observation channels feed the estimators:

* :class:`PassiveLinkProbe` — hangs off a network's instrumentation hook
  (:meth:`repro.simnet.network.Network.add_observer`) and converts every
  real frame crossing the wire into latency/bandwidth samples, and every
  datagram loss or blackholed frame into a loss sample.  Free (no traffic
  of its own) but blind when the link is idle.
* :class:`ActivePingProbe` — a fixed-rate simulator process
  (:class:`repro.simnet.engine.PeriodicTask`) emulating a tiny echo probe
  between two hosts of the network: each tick it draws the probe's fate
  from its own *seeded* generator against the link's current physical
  parameters.  Catches silent degradation and death on idle links, and a
  run of lost probes is the failure-detector signal.

TCP's internal loss model never drops frames (the window model absorbs the
loss and retransmits), so TCP losses reach the passive probe through a
dedicated ``"tcp-burst"`` observation emitted per congestion-window burst:
it carries the burst's packet count and loss draw, and the probe turns it
into a per-burst loss *fraction* sample.  The matching TCP data frame skips
the implicit zero-loss update (``count_loss=False``) so the rate is not
halved.  Active probes remain the only failure-detection signal and the
only observation channel on idle links.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.simnet.host import Host
from repro.simnet.network import Network
from repro.monitoring.estimators import LinkSample


class PassiveLinkProbe:
    """Per-link observer recording achieved metrics from real traffic."""

    def __init__(self, network: Network, on_sample: Callable[[LinkSample], None]):
        self.network = network
        self.on_sample = on_sample
        self.frames = 0
        self.losses = 0
        self._hook = network.add_observer(self._observe)

    def _observe(self, network: Network, kind: str, info: Dict) -> None:
        if kind == "frame":
            frame = info["frame"]
            meta = frame.meta
            tx_begin = meta.get("tx_begin")
            tx_end = meta.get("tx_end")
            arrival = meta.get("arrival")
            latency = None
            bandwidth = None
            if tx_end is not None and arrival is not None:
                latency = arrival - tx_end
            if tx_begin is not None and tx_end is not None and tx_end > tx_begin:
                bandwidth = network.wire_bytes(frame.nbytes) / (tx_end - tx_begin)
            self.frames += 1
            # the TCP layer tags its data segments: their loss verdict
            # arrives in the burst's "tcp-burst" observation instead
            is_tcp_data = bool(meta.get("tcp_data"))
            self.on_sample(
                LinkSample(
                    at=network.sim.now,
                    kind="frame",
                    latency=latency,
                    bandwidth=bandwidth,
                    nbytes=frame.nbytes,
                    # a TCP data frame's loss verdict arrives with its
                    # burst's "tcp-burst" observation; counting the frame as
                    # a zero-loss sample too would halve the measured rate
                    count_loss=not is_tcp_data,
                )
            )
        elif kind == "tcp-burst":
            npkts = info.get("npkts", 0)
            if npkts <= 0:
                return
            lost_pkts = info.get("lost_pkts", 0)
            # a fluid-mode flow batches several bursts into one observation
            # (always zero-loss: a loss draw ends fluid mode first); the
            # weight keeps estimator sample counts equal to the packet run
            bursts = info.get("bursts", 1)
            if lost_pkts:
                self.losses += 1
            self.on_sample(
                LinkSample(
                    at=network.sim.now,
                    kind="tcp",
                    nbytes=info.get("nbytes", 0),
                    loss_fraction=lost_pkts / npkts,
                    bursts=bursts,
                )
            )
            if info.get("fluid"):
                # Fluid bursts ride no real frames, so synthesize the
                # latency/bandwidth samples the per-burst data frames would
                # have produced (a stable flow's frames observe the link's
                # nominal parameters exactly; see the "frame" branch above).
                self.frames += bursts
                self.on_sample(
                    LinkSample(
                        at=network.sim.now,
                        kind="frame",
                        latency=info.get("latency"),
                        bandwidth=info.get("bandwidth"),
                        nbytes=info.get("nbytes", 0),
                        count_loss=False,
                        bursts=bursts,
                    )
                )
        elif kind in ("datagram-lost", "blackhole"):
            self.losses += 1
            nbytes = info.get("nbytes", 0)
            frame = info.get("frame")
            if frame is not None:
                nbytes = frame.nbytes
            self.on_sample(
                LinkSample(at=network.sim.now, kind="frame", nbytes=nbytes, lost=True)
            )

    def detach(self) -> None:
        self.network.remove_observer(self._hook)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PassiveLinkProbe {self.network.name} frames={self.frames} losses={self.losses}>"


class ActivePingProbe:
    """Seeded periodic ping across one network, run as a simulator process.

    Models a minimal echo probe between two attached hosts without pushing
    frames through the full protocol stack: each tick the probe's fate is
    drawn against the link's *current* physical loss rate (seeded generator,
    fully reproducible), and on success the achieved round-trip derives from
    the current latency/bandwidth — so churn-mutated parameters become
    visible even on otherwise idle links.  A probe across a down wire or a
    dead endpoint is always lost.
    """

    def __init__(
        self,
        network: Network,
        on_sample: Callable[[LinkSample], None],
        *,
        interval: float = 0.05,
        payload: int = 64,
        seed: int = 0x9806,
        src: Optional[Host] = None,
        dst: Optional[Host] = None,
    ):
        self.network = network
        self.sim = network.sim
        self.on_sample = on_sample
        self.interval = interval
        self.payload = payload
        self.rng = random.Random(seed)
        # explicit endpoints make this a *pair* probe; the default watches
        # the wire itself: any two live attached hosts can still exchange
        # probes, so one dead member must not read as a dead network.
        self.src = src
        self.dst = dst
        self.sent = 0
        self.lost = 0
        self._task = self.sim.every(interval, self._tick)

    def _tick(self) -> None:
        network = self.network
        self.sent += 1
        if self.src is not None and self.dst is not None:
            alive = network.link_alive(self.src, self.dst)
        else:
            live_members = [h for h in network.hosts() if h.up]
            alive = network.up and len(live_members) >= 2
        # two one-way crossings; each MTU-sized leg faces the loss rate once
        dropped = not alive or (
            network.loss_rate > 0.0
            and (
                self.rng.random() < network.loss_rate
                or self.rng.random() < network.loss_rate
            )
        )
        if dropped:
            self.lost += 1
            self.on_sample(LinkSample(at=self.sim.now, kind="ping", lost=True))
            return
        one_way = network.latency + network.serialization_time(self.payload)
        self.on_sample(
            LinkSample(
                at=self.sim.now,
                kind="ping",
                latency=one_way,
                bandwidth=network.bandwidth,
                nbytes=self.payload,
            )
        )

    def cancel(self) -> None:
        self._task.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ActivePingProbe {self.network.name} every {self.interval * 1e3:.0f}ms "
            f"sent={self.sent} lost={self.lost}>"
        )
