"""Deterministic, seeded churn and fault injection.

A :class:`FaultInjector` schedules link degradation, link failure/recovery
and host (gateway) death on the :class:`~repro.simnet.engine.Simulator`.
Faults act on the *physical* layer (``Network``/``Host`` parameters and
``up`` flags); whether the knowledge base learns about them is a separate
question:

* ``announce=True`` (oracle mode, the default): the injector also mutates
  the :class:`~repro.abstraction.topology.TopologyKB` — generation bump,
  subscriber notification — as if detection were instantaneous.  Right for
  deterministic tests of the reaction machinery.
* ``announce=False``: the KB only learns through the monitoring feedback
  loop (probes → estimators → :class:`~repro.monitoring.feedback.TopologyMonitor`),
  reproducing the real fault-to-detection gap.

Churn *arrival times* can be drawn as an inhomogeneous Poisson process via
Lewis–Shedler thinning (:func:`poisson_thinning_times`), so rate-varying
fault schedules (quiet nights, stormy peaks) stay reproducible under one
seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.network import Network
from repro.abstraction.routing import GATEWAY_RELAY_SERVICE
from repro.abstraction.topology import TopologyKB


def poisson_thinning_times(
    rng: random.Random,
    rate_fn: Callable[[float], float],
    horizon: float,
    rate_max: float,
) -> List[float]:
    """Arrival times of an inhomogeneous Poisson process on ``[0, horizon)``.

    Lewis–Shedler thinning: draw a homogeneous process at ``rate_max`` and
    keep each arrival ``t`` with probability ``rate_fn(t) / rate_max``.
    ``rate_fn`` must never exceed ``rate_max`` (checked per draw).
    """
    if rate_max <= 0:
        raise ValueError(f"rate_max must be positive, got {rate_max!r}")
    times: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_max)
        if t >= horizon:
            return times
        rate = rate_fn(t)
        if rate > rate_max:
            raise ValueError(f"rate_fn({t:.3f}) = {rate!r} exceeds rate_max = {rate_max!r}")
        if rng.random() <= rate / rate_max:
            times.append(t)


@dataclass
class FaultEvent:
    """One executed fault, recorded in the injector's log."""

    at: float
    kind: str
    target: str
    detail: str = ""


@dataclass
class _SavedParams:
    latency: float
    bandwidth: float
    loss_rate: float


class FaultInjector:
    """Schedules seeded faults on the simulator and records what it did."""

    def __init__(
        self,
        sim: Simulator,
        topology: TopologyKB,
        *,
        seed: int = 0xC0FFEE,
        announce: bool = True,
    ):
        self.sim = sim
        self.topology = topology
        self.seed = seed
        self.rng = random.Random(seed)
        self.announce = announce
        # flight-recorder hook (wired by PadicoFramework.enable_telemetry)
        self.telemetry = None
        self.log: List[FaultEvent] = []
        self._saved: Dict[Network, _SavedParams] = {}

    # -- link degradation ---------------------------------------------------------
    def degrade_link_at(
        self,
        at: float,
        network: Network,
        *,
        latency: Optional[float] = None,
        bandwidth: Optional[float] = None,
        loss_rate: Optional[float] = None,
    ) -> None:
        """At ``at``, mutate the network's physical parameters in place.

        On a partitioned kernel, churn on a *boundary* link is applied at
        the next window edge (a barrier-synchronized hook) rather than
        mid-window: the conservative windows are sized from boundary
        latencies per window, so an in-window latency drop below the
        in-flight window would make later same-window sends raise
        :class:`~repro.simnet.partition.LookaheadViolation`, and a
        mid-window mutation is a cross-shard data race under the thread
        executor.  Applying at the edge means the next window is already
        sized from the degraded latency.  Shard-local links mutate at
        ``at`` exactly, as before."""
        self._schedule_link_fault(
            at, network, self._degrade, network, latency, bandwidth, loss_rate
        )

    def _schedule_link_fault(self, at: float, network: Network, fn, *args) -> None:
        """Route a link mutation to where it can run safely: barrier hook
        for boundary links on a partitioned kernel, the owning partition's
        loop otherwise."""
        if self.sim.is_boundary(network):
            self.sim.call_at_barrier(at, fn, *args)
        else:
            self.sim.call_at_partition(network.owning_partition(), at, fn, *args)

    def _degrade(self, network, latency, bandwidth, loss_rate) -> None:
        self._save(network)
        changes = []
        if latency is not None:
            network.latency = latency
            changes.append(f"latency={latency:g}")
        if bandwidth is not None:
            network.bandwidth = bandwidth
            changes.append(f"bandwidth={bandwidth:g}")
        if loss_rate is not None:
            network.loss_rate = loss_rate
            changes.append(f"loss_rate={loss_rate:g}")
        detail = ", ".join(changes)
        network.invalidate_fluid("degrade")
        self._record("degrade-link", network.name, detail)
        if self.announce:
            self.topology.touch_network(network, detail=f"degraded: {detail}")

    # -- link failure / recovery -----------------------------------------------------
    def fail_link_at(self, at: float, network: Network) -> None:
        """At ``at``, take the wire down: every frame blackholes."""
        self._schedule_link_fault(at, network, self._fail_link, network)

    def _fail_link(self, network: Network) -> None:
        network.up = False
        network.invalidate_fluid("link-down")
        self._record("fail-link", network.name)
        if self.announce:
            self.topology.mark_link_down(network, detail="fault injected")

    def recover_link_at(self, at: float, network: Network) -> None:
        """At ``at``, bring the wire back with its original parameters."""
        self._schedule_link_fault(at, network, self._recover_link, network)

    def _recover_link(self, network: Network) -> None:
        network.up = True
        saved = self._saved.pop(network, None)
        if saved is not None:
            network.latency = saved.latency
            network.bandwidth = saved.bandwidth
            network.loss_rate = saved.loss_rate
        network.invalidate_fluid("recover")
        self._record("recover-link", network.name)
        if self.announce:
            self.topology.clear_measurement(network, detail="recovered")
            self.topology.mark_link_up(network, detail="recovered")
            self.topology.touch_network(network, detail="recovered")

    # -- host / gateway death ----------------------------------------------------------
    def kill_host_at(self, at: float, host: Host) -> None:
        """At ``at``, kill the host: it stops sending and receiving, and a
        gateway relay running there tears down every spliced session."""
        self.sim.call_at_partition(host.partition, at, self._kill_host, host)

    def _kill_host(self, host: Host) -> None:
        host.up = False
        for network in host.networks():
            network.invalidate_fluid("host-down")
        relay = host.get_service(GATEWAY_RELAY_SERVICE)
        if relay is not None:
            relay.shutdown(reason=f"host {host.name} died")
        self._record("kill-host", host.name)
        if self.announce:
            self.topology.mark_host_down(host, detail="fault injected")

    def revive_host_at(self, at: float, host: Host) -> None:
        self.sim.call_at_partition(host.partition, at, self._revive_host, host)

    def _revive_host(self, host: Host) -> None:
        host.up = True
        for network in host.networks():
            network.invalidate_fluid("host-up")
        relay = host.get_service(GATEWAY_RELAY_SERVICE)
        if relay is not None:
            relay.restart()
        self._record("revive-host", host.name)
        if self.announce:
            self.topology.mark_host_up(host, detail="revived")

    # -- rate-varying flap schedules -----------------------------------------------------
    def flap_link(
        self,
        network: Network,
        *,
        horizon: float,
        down_time: float,
        rate: Optional[float] = None,
        rate_fn: Optional[Callable[[float], float]] = None,
        rate_max: Optional[float] = None,
        start: float = 0.0,
    ) -> List[Tuple[float, float]]:
        """Schedule a flapping link: failures arrive as a (possibly
        inhomogeneous) Poisson process, each followed by recovery after
        ``down_time``.  Returns the ``(down_at, up_at)`` windows scheduled.
        """
        if rate_fn is None:
            if rate is None:
                raise ValueError("flap_link needs rate= or rate_fn=")
            constant = float(rate)
            rate_fn = lambda _t: constant  # noqa: E731 - tiny closure
            rate_max = constant
        if rate_max is None:
            raise ValueError("rate_fn= requires rate_max=")
        windows: List[Tuple[float, float]] = []
        last_up = start
        for arrival in poisson_thinning_times(self.rng, rate_fn, horizon, rate_max):
            down_at = start + arrival
            if down_at < last_up:
                continue  # still inside the previous outage window
            up_at = down_at + down_time
            self.fail_link_at(down_at, network)
            self.recover_link_at(up_at, network)
            windows.append((down_at, up_at))
            last_up = up_at
        return windows

    # -- bookkeeping ------------------------------------------------------------------------
    def _save(self, network: Network) -> None:
        if network not in self._saved:
            self._saved[network] = _SavedParams(
                latency=network.latency,
                bandwidth=network.bandwidth,
                loss_rate=network.loss_rate,
            )

    def _record(self, kind: str, target: str, detail: str = "") -> None:
        self.log.append(FaultEvent(at=self.sim.now, kind=kind, target=target, detail=detail))
        if self.telemetry is not None:
            self.telemetry.emit("churn.fault", fault=kind, target=target, detail=detail)

    def describe(self) -> Dict[str, object]:
        return {
            "events": len(self.log),
            "announce": self.announce,
            "log": [(e.at, e.kind, e.target) for e in self.log],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector events={len(self.log)} announce={self.announce}>"
