"""The feedback loop: measured link profiles flow back into the topology KB.

A :class:`TopologyMonitor` owns, per watched network, a passive probe, an
optional active ping probe and a :class:`~repro.monitoring.estimators.LinkEstimator`.
Whenever the estimate moves materially — the link *reclassifies* (e.g. a WAN
whose measured loss crossed ``LOSSY_THRESHOLD`` flips to ``LOSSY_WAN``) or a
metric drifts beyond ``push_threshold`` — the monitor pushes the measured
profile into the :class:`~repro.abstraction.topology.TopologyKB`, which
bumps the generation (invalidating the RoutingEngine/Selector caches) and
notifies subscribers (triggering adaptive VLink re-selection).

A run of ``dead_after`` consecutive lost active probes is the failure
detector: the link is marked down in the KB; the first successful probe
afterwards marks it back up.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.abstraction.topology import (
    LOSSY_THRESHOLD,
    WAN_LATENCY_THRESHOLD,
    LinkClass,
    TopologyKB,
)
from repro.monitoring.estimators import LinkEstimator, LinkSample, MeasuredLink
from repro.monitoring.probes import ActivePingProbe, PassiveLinkProbe


class LinkWatch:
    """Probes + estimator + push bookkeeping for one watched network."""

    def __init__(
        self,
        monitor: "TopologyMonitor",
        network: Network,
        *,
        interval: float,
        seed: int,
        alpha: float,
        window: int,
        min_samples: int,
        active: bool,
        coalesce: int = 1,
    ):
        self.monitor = monitor
        self.network = network
        self.estimator = LinkEstimator(
            alpha=alpha, window=window, min_samples=min_samples, batch=coalesce
        )
        # A passive probe on a *boundary* link observes traffic from both
        # endpoints' shards (the observer fires in the transmitting shard),
        # which under parallel executors would mutate estimator state
        # mid-window from two threads/processes.  Boundary watches therefore
        # route every sample over the barrier sample bus: shard-local
        # buffers, drained at the window edge in a deterministic merge, so
        # estimator updates happen in barrier context only — identical
        # across the round-robin, thread and process executors.
        sim = monitor.sim
        self._bus_key: Optional[str] = None
        on_sample = self._on_sample
        if sim.partition_count > 1 and sim.is_boundary(network):
            self._bus_key = f"linkwatch:{network.name}"
            sim.register_barrier_channel(self._bus_key, self._apply_batch)
            on_sample = self._publish_sample
        self.passive = PassiveLinkProbe(network, on_sample)
        self.active: Optional[ActivePingProbe] = None
        if active:
            self.active = ActivePingProbe(
                network, on_sample, interval=interval, seed=seed
            )
        self.pushed: Optional[MeasuredLink] = None
        self.marked_down = False
        # what the KB believed when the watch started: the baseline the
        # estimates are compared against (the live network attributes are
        # the *physical* truth churn mutates — the KB must not read the
        # answer off them, it must measure it).
        topology = monitor.topology
        self.believed = MeasuredLink(
            latency=topology.effective_latency(network),
            bandwidth=topology.effective_bandwidth(network),
            loss_rate=topology.effective_loss_rate(network),
            samples=0,
            updated_at=monitor.sim.now,
        )
        self.believed_class = topology.classify_network(network)

    def _publish_sample(self, sample: LinkSample) -> None:
        self.monitor.sim.publish_at_barrier(self._bus_key, sample)

    def _apply_batch(self, batch) -> None:
        """Barrier-bus consumer: apply one window's boundary samples.

        ``batch`` arrives as ``(src_partition, publish_index, sample)`` in
        (partition, index) order; re-sort by observation time first so the
        estimator consumes samples in virtual-time order regardless of
        which endpoint's shard observed them."""
        for _p, _i, sample in sorted(batch, key=lambda e: (e[2].at, e[0], e[1])):
            self._on_sample(sample)

    def _on_sample(self, sample: LinkSample) -> None:
        # update() returns False when the sample was coalesced into a
        # pending run (estimator batch > 1): the estimate cannot have moved,
        # so the per-sample evaluation — the dominant monitoring cost on
        # probe-heavy runs — is skipped entirely.
        if self.estimator.update(sample):
            self.monitor._evaluate(self)

    def stop(self) -> None:
        self.passive.detach()
        if self.active is not None:
            self.active.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkWatch {self.network.name} samples={self.estimator.samples}>"


class TopologyMonitor:
    """Owns the monitoring feedback loop of one deployment.

    Exposed as ``framework.monitoring``; call :meth:`watch` per network of
    interest (or :meth:`watch_all`), and the measured world starts replacing
    the nominal one for every selection decision.
    """

    def __init__(
        self,
        topology: TopologyKB,
        sim: Simulator,
        *,
        push_threshold: float = 0.2,
        dead_after: int = 5,
    ):
        self.topology = topology
        self.sim = sim
        # flight-recorder hook (wired by PadicoFramework.enable_telemetry)
        self.telemetry = None
        self.push_threshold = push_threshold
        self.dead_after = dead_after
        self._watches: Dict[Network, LinkWatch] = {}
        self.pushes = 0
        self.reclassifications = 0
        self.links_marked_down = 0
        self.links_marked_up = 0

    # -- watch management --------------------------------------------------------
    def watch(
        self,
        network: Network,
        *,
        interval: float = 0.05,
        seed: int = 0x9806,
        alpha: float = 0.25,
        window: int = 32,
        min_samples: int = 4,
        active: bool = True,
        coalesce: int = 1,
    ) -> LinkWatch:
        """Start monitoring ``network``; idempotent per network.

        The watch (its active probe's periodic task in particular) runs in
        the event-loop partition that owns the link, so a partitioned kernel
        keeps probe execution next to the link it measures.

        ``coalesce > 1`` batches runs of identical probe samples into
        closed-form estimator updates and skips the per-sample evaluation
        in between (see :class:`~repro.monitoring.estimators.LinkEstimator`
        ``batch``) — the probe-tick cost reduction for steady links; loss
        and changed samples still apply and evaluate immediately."""
        if network in self._watches:
            return self._watches[network]
        with self.sim.in_partition(network.owning_partition()):
            watch = LinkWatch(
                self,
                network,
                interval=interval,
                # stable per-network tweak (never Python's salted hash(): the
                # probe schedule must reproduce across processes)
                seed=seed ^ (zlib.crc32(network.name.encode("utf-8")) & 0xFFFF),
                alpha=alpha,
                window=window,
                min_samples=min_samples,
                active=active,
                coalesce=coalesce,
            )
        self._watches[network] = watch
        return watch

    def watch_all(self, networks: Optional[Iterable[Network]] = None, **kwargs) -> List[LinkWatch]:
        targets = list(networks) if networks is not None else self.topology.networks()
        return [self.watch(n, **kwargs) for n in targets]

    def unwatch(self, network: Network) -> None:
        watch = self._watches.pop(network, None)
        if watch is not None:
            watch.stop()

    def stop(self) -> None:
        """Cancel every probe (leaves pushed measurements in the KB)."""
        for watch in list(self._watches.values()):
            watch.stop()
        self._watches.clear()

    def watches(self) -> List[LinkWatch]:
        return list(self._watches.values())

    # -- the feedback step ---------------------------------------------------------
    def _evaluate(self, watch: LinkWatch) -> None:
        estimator = watch.estimator
        network = watch.network
        # Failure detection first: a run of lost probes is death, not loss.
        if estimator.consecutive_lost >= self.dead_after:
            if not watch.marked_down:
                watch.marked_down = True
                self.links_marked_down += 1
                self.topology.mark_link_down(network, detail="probe timeout")
                if self.telemetry is not None:
                    self.telemetry.emit("monitor.link_down", net=network.name)
            return
        if watch.marked_down and estimator.consecutive_lost == 0:
            watch.marked_down = False
            self.links_marked_up += 1
            self.topology.mark_link_up(network, detail="probe recovered")
            if self.telemetry is not None:
                self.telemetry.emit("monitor.link_up", net=network.name)
        estimate = estimator.estimate()
        if estimate is None:
            return
        if self._should_push(watch, estimate):
            self._push(watch, estimate)

    def _should_push(self, watch: LinkWatch, estimate: MeasuredLink) -> bool:
        """Push on a class flip or a material drift vs the current belief."""
        believed = watch.believed_class
        if self._classify(estimate, watch.network, believed) is not believed:
            return True
        return self._changed(watch.believed, estimate)

    def _changed(self, believed: MeasuredLink, estimate: MeasuredLink) -> bool:
        pairs = [
            (believed.latency, estimate.latency),
            (believed.bandwidth, estimate.bandwidth),
        ]
        for old, new in pairs:
            if old is None or new is None or old <= 0:
                continue
            if abs(new - old) / old > self.push_threshold:
                return True
        return abs(estimate.loss_rate - believed.loss_rate) > max(
            self.push_threshold * believed.loss_rate, 0.005
        )

    def _classify(
        self,
        estimate: MeasuredLink,
        network: Network,
        current: Optional[LinkClass] = None,
    ) -> LinkClass:
        """What the KB would say with this estimate applied.

        With ``current`` given, the lossy verdict is hysteretic: a link
        already believed lossy only flips back once its measured loss drops
        well below the threshold, so window noise cannot flap the class
        (and with it the adapter choice) sample by sample.
        """
        if network.is_parallel:
            return LinkClass.SAN
        latency = estimate.latency if estimate.latency is not None else network.latency
        if latency >= WAN_LATENCY_THRESHOLD:
            threshold = LOSSY_THRESHOLD
            if current is LinkClass.LOSSY_WAN:
                threshold = LOSSY_THRESHOLD / 4.0
            if estimate.loss_rate >= threshold:
                return LinkClass.LOSSY_WAN
            return LinkClass.WAN
        return LinkClass.LAN

    def _push(self, watch: LinkWatch, estimate: MeasuredLink) -> None:
        network = watch.network
        self.topology.apply_measurement(
            network,
            latency=estimate.latency,
            bandwidth=estimate.bandwidth,
            loss_rate=estimate.loss_rate,
            detail=f"measured over {estimate.samples} samples",
        )
        watch.pushed = estimate
        watch.believed = estimate
        self.pushes += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "monitor.push",
                net=network.name,
                latency=estimate.latency,
                bandwidth=estimate.bandwidth,
                loss_rate=estimate.loss_rate,
                samples=estimate.samples,
            )
        after = self._classify(estimate, network, watch.believed_class)
        if after is not watch.believed_class:
            self.reclassifications += 1
            watch.believed_class = after

    # -- reporting ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "watched": sorted(n.name for n in self._watches),
            "pushes": self.pushes,
            "reclassifications": self.reclassifications,
            "links_marked_down": self.links_marked_down,
            "links_marked_up": self.links_marked_up,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TopologyMonitor watching {len(self._watches)} links pushes={self.pushes}>"
