"""Link-metric estimators: EWMA and sliding-window smoothing of samples.

Probes (:mod:`repro.monitoring.probes`) emit raw :class:`LinkSample`
observations; a :class:`LinkEstimator` combines per-metric smoothers into a
*measured* link profile (:class:`MeasuredLink`) suitable for pushing into
the :class:`~repro.abstraction.topology.TopologyKB`.  Everything here is
purely deterministic — the seeds live in the probes that feed it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional


@dataclass
class LinkSample:
    """One raw observation of a link, emitted by a probe."""

    at: float                           # virtual time of the observation
    kind: str                           # "frame" (passive), "ping" (active),
                                        # "tcp" (surfaced window-model burst)
    latency: Optional[float] = None     # achieved one-way latency, seconds
    bandwidth: Optional[float] = None   # achieved wire rate, bytes/s
    nbytes: int = 0
    lost: bool = False
    #: per-burst packet-loss fraction (TCP window-model bursts report
    #: ``lost_pkts / npkts`` here — the honest per-packet rate for traffic
    #: whose losses never surface as dropped frames).  None for ordinary
    #: hit/miss samples.
    loss_fraction: Optional[float] = None
    #: False for samples whose loss outcome is reported through a sibling
    #: sample (a TCP data frame: its burst's ``loss_fraction`` sample
    #: carries the verdict, counting the frame too would halve the rate).
    count_loss: bool = True
    #: batching weight: this sample stands in for ``bursts`` identical
    #: per-burst observations (the fluid fast path emits one synthesized
    #: sample per epoch instead of one per congestion-window burst).  The
    #: estimators apply the equivalent of ``bursts`` sequential updates in
    #: closed form, so sample counts — and the readiness gating derived
    #: from them — match the unbatched packet run.
    bursts: int = 1


@dataclass
class MeasuredLink:
    """The estimators' current belief about a link."""

    latency: Optional[float]
    bandwidth: Optional[float]
    loss_rate: float
    samples: int
    updated_at: float


class EwmaEstimator:
    """Exponentially weighted moving average of a scalar metric."""

    def __init__(self, alpha: float = 0.25):
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self.value: Optional[float] = None
        self.samples = 0

    def update(self, x: float) -> float:
        if self.value is None:
            self.value = float(x)
        else:
            self.value = self.alpha * float(x) + (1.0 - self.alpha) * self.value
        self.samples += 1
        return self.value

    def update_many(self, x: float, n: int) -> float:
        """Apply ``n`` consecutive updates with the same value in closed form:
        ``v' = x + (1-alpha)^n * (v - x)`` (equal to ``n`` sequential blends
        up to float rounding)."""
        if n <= 1:
            return self.update(x)
        x = float(x)
        if self.value is None:
            self.value = x
        else:
            self.value = x + (1.0 - self.alpha) ** n * (self.value - x)
        self.samples += n
        return self.value

    def reset(self) -> None:
        self.value = None
        self.samples = 0


class SlidingWindowEstimator:
    """Mean over the last ``window`` samples of a scalar metric."""

    def __init__(self, window: int = 32):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)
        self.samples = 0

    def update(self, x: float) -> float:
        self._values.append(float(x))
        self.samples += 1
        return self.mean()

    def update_many(self, x: float, n: int) -> float:
        """Apply ``n`` consecutive updates with the same value.  The window
        contents afterwards are exactly what ``n`` sequential updates would
        leave, so the windowed mean is bit-identical."""
        if n <= 1:
            return self.update(x)
        fill = n if n < self.window else self.window
        self._values.extend([float(x)] * fill)
        self.samples += n
        return self.mean()

    def mean(self) -> Optional[float]:
        if not self._values:
            return None
        return sum(self._values) / len(self._values)

    def maximum(self) -> Optional[float]:
        return max(self._values) if self._values else None

    def reset(self) -> None:
        self._values.clear()
        self.samples = 0


@dataclass
class LinkEstimator:
    """Combined per-link estimators fed by probe samples.

    Latency and bandwidth are EWMA-smoothed (they drift); loss is a sliding
    window of hit/miss outcomes (it is a rate).  ``consecutive_lost`` is the
    failure-detector input: a run of lost active probes means the link is
    dead, not merely lossy.
    """

    alpha: float = 0.25
    window: int = 32
    min_samples: int = 4
    #: coalescing factor: with ``batch > 1``, runs of *identical* successful
    #: samples (same kind/latency/bandwidth/loss verdict — the shape of
    #: steady active-probe ticks, which dominate hybrid runs) are buffered
    #: and folded in via the estimators' closed-form ``update_many`` once
    #: ``batch`` accumulate, on any differing sample, or on read
    #: (:meth:`estimate`/:attr:`samples` flush first).  Sample counts match
    #: the sequential result exactly; EWMA values up to float rounding.
    #: Loss samples and loss-recovery transitions always apply immediately,
    #: so failure-detection latency is unchanged.  Default 1: bit-exact
    #: sequential behaviour.
    batch: int = 1
    latency: EwmaEstimator = field(init=False)
    bandwidth: EwmaEstimator = field(init=False)
    loss: SlidingWindowEstimator = field(init=False)
    consecutive_lost: int = field(init=False, default=0)
    last_sample_at: float = field(init=False, default=0.0)
    _run_sample: Optional[LinkSample] = field(init=False, default=None, repr=False)
    _run_pending: int = field(init=False, default=0, repr=False)
    _run_last_at: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        self.latency = EwmaEstimator(self.alpha)
        self.bandwidth = EwmaEstimator(self.alpha)
        self.loss = SlidingWindowEstimator(self.window)

    @property
    def samples(self) -> int:
        self._flush_run()
        return self.loss.samples

    def update(self, sample: LinkSample) -> bool:
        """Fold one sample in.

        Returns True when the estimator state advanced (callers re-evaluate
        their downstream consumers then), False when the sample was merely
        buffered into a pending coalescing run (``batch > 1``)."""
        if (
            self.batch > 1
            and not sample.lost
            and sample.bursts == 1
            and self.consecutive_lost == 0
        ):
            run = self._run_sample
            if (
                run is not None
                and sample.kind == run.kind
                and sample.latency == run.latency
                and sample.bandwidth == run.bandwidth
                and sample.loss_fraction == run.loss_fraction
                and sample.count_loss == run.count_loss
            ):
                self._run_pending += 1
                self._run_last_at = sample.at
                if self._run_pending >= self.batch:
                    self._flush_run()
                    return True
                return False
            # run boundary: flush the old run, apply this sample now and
            # remember it as the new run head
            self._flush_run()
            self._run_sample = sample
            self._apply(sample)
            return True
        self._flush_run()
        self._run_sample = None
        self._apply(sample)
        return True

    def _flush_run(self) -> None:
        """Apply a pending coalesced run in closed form (``update_many``)."""
        n = self._run_pending
        if not n:
            return
        self._run_pending = 0
        run = self._run_sample
        self.last_sample_at = self._run_last_at
        if run.loss_fraction is not None:
            self.loss.update_many(run.loss_fraction, n)
            return
        if run.count_loss:
            self.loss.update_many(0.0, n)
        if run.latency is not None:
            self.latency.update_many(run.latency, n)
        if run.bandwidth is not None:
            self.bandwidth.update_many(run.bandwidth, n)

    def _apply(self, sample: LinkSample) -> None:
        self.last_sample_at = sample.at
        bursts = sample.bursts
        if sample.lost:
            self.loss.update(1.0)
            # Only lost *active probes* argue for link death: passive loss
            # samples are the ordinary loss model at work (a lossy WAN drops
            # datagrams all day without being down).
            if sample.kind == "ping":
                self.consecutive_lost += 1
            return
        if sample.loss_fraction is not None:
            # A surfaced TCP burst: the fraction is the per-packet rate.
            # The draw happens sender-side *before* the wire is consulted,
            # so it proves nothing about delivery — a blackholed link keeps
            # producing 0.0-fraction bursts — and must never refute (or
            # argue) link death.  Liveness refutation rides the "frame"
            # samples, which only exist when the wire accepted the frame.
            if bursts != 1:
                self.loss.update_many(sample.loss_fraction, bursts)
            else:
                self.loss.update(sample.loss_fraction)
            return
        if sample.count_loss:
            if bursts != 1:
                self.loss.update_many(0.0, bursts)
            else:
                self.loss.update(0.0)
        # any successful crossing — active or passive — refutes death
        self.consecutive_lost = 0
        if sample.latency is not None:
            if bursts != 1:
                self.latency.update_many(sample.latency, bursts)
            else:
                self.latency.update(sample.latency)
        if sample.bandwidth is not None:
            if bursts != 1:
                self.bandwidth.update_many(sample.bandwidth, bursts)
            else:
                self.bandwidth.update(sample.bandwidth)

    def estimate(self) -> Optional[MeasuredLink]:
        """The current measured profile, or None until enough samples exist."""
        self._flush_run()
        if self.samples < self.min_samples:
            return None
        return MeasuredLink(
            latency=self.latency.value,
            bandwidth=self.bandwidth.value,
            loss_rate=self.loss.mean() or 0.0,
            samples=self.samples,
            updated_at=self.last_sample_at,
        )

    def reset(self) -> None:
        self.latency.reset()
        self.bandwidth.reset()
        self.loss.reset()
        self.consecutive_lost = 0
        self._run_sample = None
        self._run_pending = 0
