"""VLink drivers: incarnations of the distributed abstract interface.

"VLink drivers have been implemented on top of: MadIO, SysIO, Parallel
Streams for WAN, AdOC, loopback." (§4.2)

This module provides the three core drivers:

* :class:`SysIOVLinkDriver` — the *straight* adapter: a distributed
  abstraction over a distributed network, delegating to the SysIO arbitrated
  sockets.
* :class:`MadIOVLinkDriver` — the *cross-paradigm* adapter: a client/server
  byte stream built over the message-based MadIO logical channels, which is
  what lets an unmodified CORBA ORB run over Myrinet.
* :class:`LoopbackVLinkDriver` — intra-host links between two middleware
  systems living in the same process.

The WAN-specific method drivers (parallel streams, AdOC compression, VRP)
live in :mod:`repro.methods` and register themselves under their own names.
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.simnet.buffers import ByteRing
from repro.simnet.cost import Cost
from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.simnet.network import Delivery, Network
from repro.arbitration.madio import MadIO, MadIOChannel
from repro.arbitration.sysio import SysIO
from repro.abstraction.common import (
    AbstractionError,
    CROSS_PARADIGM_STREAM_OVERHEAD,
    RxPath,
    SoftDelivery,
    VLINK_LAYER_OVERHEAD,
)


class StreamBuffer:
    """Reusable receive-side byte buffer with exact/partial read events.

    Bytes live in a zero-copy :class:`~repro.simnet.buffers.ByteRing`:
    ``append`` aliases the incoming chunk and reads slice each byte out at
    most once (the seed ``bytearray`` implementation memmoved the whole
    remainder on every read).
    """

    def __init__(self, sim):
        self.sim = sim
        self._buffer = ByteRing()
        self._pending: Deque[Tuple[Optional[int], bool, SimEvent]] = deque()
        self._data_callback: Optional[Callable[[], None]] = None
        self._close_callback: Optional[Callable[[], None]] = None
        self.closed = False

    def append(self, data: bytes) -> None:
        self._buffer.append(data)
        self._satisfy()
        if self._data_callback is not None and self._buffer:
            self._data_callback()

    def available(self) -> int:
        return len(self._buffer)

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self._buffer.take(limit)

    def recv(self, nbytes: Optional[int] = None) -> SimEvent:
        return self._queue(nbytes, exact=False)

    def recv_exact(self, nbytes: int) -> SimEvent:
        buffer = self._buffer
        if buffer._size >= nbytes and not self._pending and not self.closed:
            # fast path: satisfiable immediately — trigger without touching
            # the pending queue (the event still completes through the loop)
            ev = SimEvent(self.sim, "stream-read")
            ev.succeed(buffer.take(nbytes))
            return ev
        return self._queue(nbytes, exact=True)

    def set_data_callback(self, fn: Optional[Callable[[], None]]) -> None:
        self._data_callback = fn
        if fn is not None and self._buffer:
            fn()

    def set_close_callback(self, fn: Optional[Callable[[], None]]) -> None:
        """Called once when the stream closes (either end)."""
        self._close_callback = fn
        if fn is not None and self.closed:
            fn()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        pending, self._pending = self._pending, deque()
        for _, _, ev in pending:
            if not ev.triggered:
                if self._buffer:
                    ev.succeed(self.read_available())
                else:
                    ev.fail(ConnectionError("stream closed"))
        if self._close_callback is not None:
            self._close_callback()

    def _queue(self, nbytes: Optional[int], exact: bool) -> SimEvent:
        ev = self.sim.event(name="stream-read")
        if self.closed and not self._buffer:
            ev.fail(ConnectionError("stream closed"))
            return ev
        self._pending.append((nbytes, exact, ev))
        self._satisfy()
        return ev

    def _satisfy(self) -> None:
        buffer = self._buffer
        pending = self._pending
        while pending and buffer._size:
            nbytes, exact, ev = pending[0]
            if exact and nbytes is not None and buffer._size < nbytes:
                return
            pending.popleft()
            chunk = buffer.take(nbytes)
            if not ev._triggered:
                ev.succeed(chunk)


class VLinkDriver:
    """Base class: one incarnation of the VLink abstract interface."""

    #: registry name ("sysio", "madio", "loopback", "parallel_streams", ...)
    name = "abstract"

    def __init__(self, host: Host):
        self.host = host
        self.sim = host.sim

    def listen(self, port: int, on_incoming: Callable) -> None:
        """Start accepting connections on ``port``; ``on_incoming(conn, peer_host)``."""
        raise NotImplementedError

    def connect(self, dst_host: Host, port: int) -> SimEvent:
        """Open a connection; the event succeeds with a driver connection."""
        raise NotImplementedError

    def connect_with_params(
        self, dst_host: Host, port: int, params: Optional[Dict[str, float]] = None
    ) -> SimEvent:
        """Open a connection with per-connection method parameters.

        The selector derives parameters (stream fan-out, loss tolerance)
        from the monitoring subsystem's measured link metrics; drivers that
        support tuning override this.  The base class ignores the
        parameters, so pinning a parameter on a driver that cannot honour
        it degrades to the driver's registered configuration.
        """
        return self.connect(dst_host, port)

    def reaches(self, dst_host: Host) -> bool:
        """Can this driver reach ``dst_host`` at all?"""
        return True


# ---------------------------------------------------------------------------
# SysIO driver (straight: distributed abstraction over distributed network)
# ---------------------------------------------------------------------------


class SysIOVLinkDriver(VLinkDriver):
    """Delegates the five VLink primitives to SysIO arbitrated sockets."""

    name = "sysio"

    def __init__(self, sysio: SysIO, network: Optional[Network] = None):
        super().__init__(sysio.host)
        self.sysio = sysio
        self.network = network

    def listen(self, port: int, on_incoming: Callable) -> None:
        self.sysio.listen(port, lambda sock: on_incoming(sock, sock.conn.peer_host))

    def connect(self, dst_host: Host, port: int) -> SimEvent:
        return self.sysio.connect(dst_host, port, network=self.network)

    def reaches(self, dst_host: Host) -> bool:
        return any(
            net.paradigm == "distributed" for net in self.host.shares_network_with(dst_host)
        )


# ---------------------------------------------------------------------------
# MadIO driver (cross-paradigm: distributed abstraction over a SAN)
# ---------------------------------------------------------------------------

_CTL = struct.Struct("!BHII")  # type, port, conn_a, conn_b
_DATA_HEADER = struct.Struct("!IB")  # destination conn id, flags

_CTL_CONNECT = 1
_CTL_ACCEPT = 2
_CTL_REFUSE = 3
_CTL_CLOSE = 4


class MadVLinkConnection:
    """A byte-stream endpoint emulated over MadIO messages."""

    def __init__(self, driver: "MadIOVLinkDriver", conn_id: int, peer_host: Host, peer_rank: int):
        self.driver = driver
        self.sim = driver.sim
        self.conn_id = conn_id
        self.peer_host = peer_host
        self.peer_rank = peer_rank
        self.peer_conn_id: Optional[int] = None
        self.buffer = StreamBuffer(driver.sim)
        self.closed = False
        self.bytes_sent = 0
        self._last_ready = 0.0

    # -- the driver-connection interface used by VLink -------------------------
    @property
    def peer_name(self) -> str:
        return self.peer_host.name

    def write(self, data: bytes) -> SimEvent:
        if self.closed:
            raise AbstractionError("write() on closed MadIO VLink connection")
        if self.peer_conn_id is None:
            raise AbstractionError("write() before the MadIO VLink connection is established")
        cost = Cost()
        cost.charge(VLINK_LAYER_OVERHEAD, "vlink.layer")
        cost.charge(CROSS_PARADIGM_STREAM_OVERHEAD, "vlink.cross-paradigm")
        header = _DATA_HEADER.pack(self.peer_conn_id, 0)
        self.bytes_sent += len(data)
        return self.driver.data_channel.send(self.peer_rank, header, data, extra_cost=cost)

    def recv(self, nbytes: Optional[int] = None) -> SimEvent:
        return self.buffer.recv(nbytes)

    def recv_exact(self, nbytes: int) -> SimEvent:
        return self.buffer.recv_exact(nbytes)

    def available(self) -> int:
        return self.buffer.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self.buffer.read_available(limit)

    def set_data_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_data_callback(None)
        else:
            self.buffer.set_data_callback(lambda: fn(self))

    def set_close_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_close_callback(None)
        else:
            self.buffer.set_close_callback(lambda: fn(self))

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.peer_conn_id is not None:
            ctl = _CTL.pack(_CTL_CLOSE, 0, self.peer_conn_id, self.conn_id)
            self.driver.ctl_channel.send(self.peer_rank, ctl, b"")
        self.driver._forget(self)
        self.buffer.close()

    # -- receive path (called by the driver) --------------------------------------
    def _on_data(self, body: bytes, rx: RxPath) -> None:
        rx.cost.charge(VLINK_LAYER_OVERHEAD, "vlink.layer")
        rx.cost.charge(CROSS_PARADIGM_STREAM_OVERHEAD, "vlink.cross-paradigm")
        # Appends are serialized per connection: a small message's lower
        # receive-side cost must not let its bytes overtake an earlier large
        # message's — this is a byte stream, not a message interface.
        ready = max(rx.ready_time(), self._last_ready)
        self._last_ready = ready
        self.sim.call_later(max(0.0, ready - self.sim.now), self.buffer.append, body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MadVLinkConnection #{self.conn_id} -> {self.peer_host.name}>"


class MadIOVLinkDriver(VLinkDriver):
    """Client/server byte streams over MadIO logical channels (cross-paradigm)."""

    name = "madio"

    def __init__(self, madio: MadIO, network: Network):
        super().__init__(madio.host)
        self.madio = madio
        self.network = network
        self.group = madio.group_on(network)
        self.ctl_channel: MadIOChannel = madio.open_logical_channel("vlink:ctl", network)
        self.data_channel: MadIOChannel = madio.open_logical_channel("vlink:data", network)
        self.ctl_channel.set_receive_callback(self._on_ctl)
        self.data_channel.set_receive_callback(self._on_data)
        self._conn_ids = itertools.count(1)
        self._conns: Dict[int, MadVLinkConnection] = {}
        self._listeners: Dict[int, Callable] = {}
        self._pending_connects: Dict[int, SimEvent] = {}

    # -- VLinkDriver interface -----------------------------------------------------
    def listen(self, port: int, on_incoming: Callable) -> None:
        self._listeners[port] = on_incoming

    def connect(self, dst_host: Host, port: int) -> SimEvent:
        if not self.group.contains(dst_host):
            raise AbstractionError(
                f"host {dst_host.name!r} is not reachable over {self.network.name!r}"
            )
        peer_rank = self.group.index_of(dst_host)
        conn = MadVLinkConnection(self, next(self._conn_ids), dst_host, peer_rank)
        self._conns[conn.conn_id] = conn
        done = self.sim.event(name=f"madio-vlink-connect({dst_host.name}:{port})")
        self._pending_connects[conn.conn_id] = done
        ctl = _CTL.pack(_CTL_CONNECT, port, conn.conn_id, 0)
        cost = Cost().charge(VLINK_LAYER_OVERHEAD, "vlink.layer")
        self.ctl_channel.send(peer_rank, ctl, b"", extra_cost=cost)
        return done

    def reaches(self, dst_host: Host) -> bool:
        return self.group.contains(dst_host) and dst_host is not self.host

    # -- MadIO callbacks ----------------------------------------------------------------
    def _on_ctl(self, src_rank: int, header: bytes, body: bytes, delivery: Delivery) -> None:
        delivery.traverse("vlink-madio-ctl")
        kind, port, conn_a, conn_b = _CTL.unpack(header)
        peer_host = self.group[src_rank]
        if kind == _CTL_CONNECT:
            on_incoming = self._listeners.get(port)
            if on_incoming is None:
                refuse = _CTL.pack(_CTL_REFUSE, port, conn_a, 0)
                self.ctl_channel.send(src_rank, refuse, b"")
                return
            conn = MadVLinkConnection(self, next(self._conn_ids), peer_host, src_rank)
            conn.peer_conn_id = conn_a
            self._conns[conn.conn_id] = conn
            accept = _CTL.pack(_CTL_ACCEPT, port, conn_a, conn.conn_id)
            self.ctl_channel.send(src_rank, accept, b"")
            self.sim.call_later(
                max(0.0, delivery.ready_time() - self.sim.now), on_incoming, conn, peer_host
            )
        elif kind == _CTL_ACCEPT:
            conn = self._conns.get(conn_a)
            done = self._pending_connects.pop(conn_a, None)
            if conn is None or done is None:
                return
            conn.peer_conn_id = conn_b
            delivery.complete_into(done, conn)
        elif kind == _CTL_REFUSE:
            done = self._pending_connects.pop(conn_a, None)
            self._conns.pop(conn_a, None)
            if done is not None and not done.triggered:
                done.fail(ConnectionRefusedError(f"no VLink listener on port {port}"))
        elif kind == _CTL_CLOSE:
            conn = self._conns.get(conn_a)
            if conn is not None:
                conn.closed = True
                conn.buffer.close()
                self._conns.pop(conn_a, None)

    def _on_data(self, src_rank: int, header: bytes, body: bytes, delivery: Delivery) -> None:
        delivery.traverse("vlink-madio-data")
        conn_id, _flags = _DATA_HEADER.unpack(header)
        conn = self._conns.get(conn_id)
        if conn is None:
            delivery.frame.network.record_drop(delivery.frame, "vlink-madio-no-conn")
            return
        conn._on_data(body, delivery)

    def _forget(self, conn: MadVLinkConnection) -> None:
        self._conns.pop(conn.conn_id, None)


# ---------------------------------------------------------------------------
# Loopback driver (intra-host)
# ---------------------------------------------------------------------------


class LoopbackPipe:
    """One end of an in-process byte pipe with a memcpy-level cost model."""

    def __init__(self, driver: "LoopbackVLinkDriver", label: str):
        self.driver = driver
        self.sim = driver.sim
        self.label = label
        self.peer: Optional["LoopbackPipe"] = None
        self.buffer = StreamBuffer(driver.sim)
        self.closed = False
        self.peer_name = driver.host.name

    def write(self, data: bytes) -> SimEvent:
        if self.closed or self.peer is None:
            raise AbstractionError("write() on closed loopback pipe")
        rx = SoftDelivery(self.sim)
        rx.cost.charge(self.driver.per_message_overhead, "loopback.msg")
        rx.cost.charge_copy(len(data), self.driver.host.cpu.memcpy_bandwidth, "loopback.copy")
        done = self.sim.event(name=f"loopback-write({len(data)}B)")
        peer = self.peer
        self.sim.call_later(rx.cost.seconds, peer.buffer.append, bytes(data))
        done.succeed(len(data), delay=rx.cost.seconds)
        return done

    def recv(self, nbytes: Optional[int] = None) -> SimEvent:
        return self.buffer.recv(nbytes)

    def recv_exact(self, nbytes: int) -> SimEvent:
        return self.buffer.recv_exact(nbytes)

    def available(self) -> int:
        return self.buffer.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        return self.buffer.read_available(limit)

    def set_data_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_data_callback(None)
        else:
            self.buffer.set_data_callback(lambda: fn(self))

    def set_close_callback(self, fn) -> None:
        if fn is None:
            self.buffer.set_close_callback(None)
        else:
            self.buffer.set_close_callback(lambda: fn(self))

    def close(self) -> None:
        self.closed = True
        self.buffer.close()
        if self.peer is not None and not self.peer.closed:
            self.peer.closed = True
            self.peer.buffer.close()


class LoopbackVLinkDriver(VLinkDriver):
    """Intra-host VLink driver (two middleware systems in the same process)."""

    name = "loopback"

    def __init__(self, host: Host, per_message_overhead: float = 0.4e-6):
        super().__init__(host)
        self.per_message_overhead = per_message_overhead
        self._listeners: Dict[int, Callable] = {}

    def listen(self, port: int, on_incoming: Callable) -> None:
        self._listeners[port] = on_incoming

    def connect(self, dst_host: Host, port: int) -> SimEvent:
        done = self.sim.event(name=f"loopback-connect(:{port})")
        if dst_host is not self.host:
            done.fail(AbstractionError("loopback driver only connects within the local host"))
            return done
        on_incoming = self._listeners.get(port)
        if on_incoming is None:
            done.fail(ConnectionRefusedError(f"no loopback listener on port {port}"))
            return done
        client = LoopbackPipe(self, f"lo-client:{port}")
        server = LoopbackPipe(self, f"lo-server:{port}")
        client.peer, server.peer = server, client
        self.sim.call_later(self.per_message_overhead, on_incoming, server, self.host)
        done.succeed(client, delay=self.per_message_overhead)
        return done

    def reaches(self, dst_host: Host) -> bool:
        return dst_host is self.host
