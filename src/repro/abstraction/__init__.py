"""The abstraction layer: dual parallel + distributed abstract interfaces.

This is the heart of the paper's contribution (§3): rather than forcing a
single abstract interface (parallel-only, distributed-only or "unified"),
the framework provides **two** abstract interfaces —

* :class:`~repro.abstraction.vlink.VLink` for the distributed paradigm
  (client/server, dynamic connections, streaming, asynchronous
  ``connect/accept/read/write/close`` primitives), and
* :class:`~repro.abstraction.circuit.Circuit` for the parallel paradigm
  (communication inside a fixed *group* of nodes, incremental packing with
  explicit semantics)

— each instantiated on every kind of network through *adapters* that are
either **straight** (same paradigm at system and abstract level) or
**cross-paradigm** (e.g. VLink over MadIO to run a CORBA ORB on Myrinet).
A :class:`~repro.abstraction.selector.Selector` automatically picks the
best adapter per link from a :class:`~repro.abstraction.topology.TopologyKB`
plus user preferences.
"""

from repro.abstraction.common import AbstractionError, SoftDelivery, RxPath
from repro.abstraction.topology import TopologyKB, TopologyChange, LinkClass, LinkProfile
from repro.abstraction.routing import (
    GATEWAY_RELAY_PORT,
    GATEWAY_RELAY_SERVICE,
    GatewayRelay,
    Hop,
    Route,
    RouteChoice,
    RoutingEngine,
)
from repro.abstraction.selector import Selector, Preferences
from repro.abstraction.vlink import (
    VLink,
    VLinkManager,
    VLinkListener,
    VLinkOperation,
    VLinkState,
    VLINK_SERVICE,
)
from repro.abstraction.circuit import (
    Circuit,
    CircuitManager,
    CircuitMessage,
    CircuitIncoming,
    CIRCUIT_SERVICE,
)
from repro.abstraction.adaptive import (
    AdaptiveListener,
    AdaptiveVLink,
    route_signature,
)
from repro.abstraction.adaptive_circuit import (
    AdaptiveCircuitAdapter,
    AdaptiveCircuitSession,
)
from repro.abstraction.drivers import (
    VLinkDriver,
    SysIOVLinkDriver,
    MadIOVLinkDriver,
    LoopbackVLinkDriver,
)
from repro.abstraction.adapters import (
    CircuitAdapter,
    MadIOCircuitAdapter,
    SysIOCircuitAdapter,
    VLinkCircuitAdapter,
    LoopbackCircuitAdapter,
)

__all__ = [
    "AbstractionError",
    "AdaptiveCircuitAdapter",
    "AdaptiveCircuitSession",
    "AdaptiveListener",
    "AdaptiveVLink",
    "route_signature",
    "SoftDelivery",
    "RxPath",
    "TopologyKB",
    "TopologyChange",
    "LinkClass",
    "LinkProfile",
    "Selector",
    "RouteChoice",
    "Route",
    "Hop",
    "RoutingEngine",
    "GatewayRelay",
    "GATEWAY_RELAY_PORT",
    "GATEWAY_RELAY_SERVICE",
    "Preferences",
    "VLink",
    "VLinkManager",
    "VLinkListener",
    "VLinkOperation",
    "VLinkState",
    "VLINK_SERVICE",
    "Circuit",
    "CircuitManager",
    "CircuitMessage",
    "CircuitIncoming",
    "CIRCUIT_SERVICE",
    "VLinkDriver",
    "SysIOVLinkDriver",
    "MadIOVLinkDriver",
    "LoopbackVLinkDriver",
    "CircuitAdapter",
    "MadIOCircuitAdapter",
    "SysIOCircuitAdapter",
    "VLinkCircuitAdapter",
    "LoopbackCircuitAdapter",
]
