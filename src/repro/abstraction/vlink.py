"""VLink: the distributed-paradigm abstract interface.

"The VLink interface is designed for distributed computing.  It is
client/server-oriented, supports dynamic connections, and streaming.  In
order to easily allow several personalities — both synchronous and
asynchronous personalities —, VLink is based on a flexible asynchronous
API.  This API consists in five primitive operations — read, write,
connect, accept, close.  These functions are asynchronous: when they are
invoked, they initiate (post) the operation and may return before
completion.  Their completion may be tested by polling the VLink
descriptor; a handler may be set which will be called upon operation
completion." (§4.2)

The five primitives map onto :class:`VLinkOperation` objects: posting
returns the operation immediately, ``op.poll()`` tests completion,
``op.set_handler(fn)`` installs a completion handler, and — because a
:class:`VLinkOperation` *is* a simulation event — synchronous personalities
simply ``yield`` it.

Drivers (the incarnations of the interface on actual resources) are
registered with the per-host :class:`VLinkManager`; the paper's list —
MadIO, SysIO, Parallel Streams for WAN, AdOC, loopback — corresponds to
:mod:`repro.abstraction.drivers` plus the method drivers in
:mod:`repro.methods`.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.abstraction.common import AbstractionError
from repro.abstraction.routing import (
    GATEWAY_RELAY_PORT,
    GATEWAY_RELAY_SERVICE,
    MAX_RELAY_TTL,
    Route,
    RouteChoice,
    encode_pinned_hops,
    pack_relay_hello,
)
from repro.abstraction.selector import Selector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.abstraction.drivers import VLinkDriver


VLINK_SERVICE = "vlink"

#: minimum dwell (virtual seconds) on the current rail after a successful
#: migration before another *preference-driven* migration is allowed.
#: Passive probes on a loaded backup WAN depress its measured bandwidth
#: enough to flip the route weights back and forth; without a dwell every
#: flip migrates every open session (the circuits benchmark showed ~20
#: migrations where ~8 do the work).  Dead rails and routes through
#: down links/hosts migrate immediately regardless.
ROUTE_MIN_DWELL = 0.4


class VLinkState(enum.Enum):
    IDLE = "idle"
    CONNECTING = "connecting"
    ESTABLISHED = "established"
    CLOSED = "closed"


class VLinkOperation(SimEvent):
    """An asynchronous VLink operation (post / poll / handler)."""

    __slots__ = ("kind", "vlink", "posted_at")

    def __init__(self, sim, kind: str, vlink: Optional["VLink"] = None):
        super().__init__(sim, name=kind)
        self.kind = kind
        self.vlink = vlink
        self.posted_at = sim.now

    def poll(self) -> bool:
        """Non-blocking completion test."""
        return self.triggered

    def set_handler(self, fn: Callable[["VLinkOperation"], None]) -> None:
        """Install a completion handler called with the operation itself."""
        self.add_callback(lambda _ev: fn(self))

    @property
    def result(self):
        """Value of the completed operation (None while pending)."""
        return self.value if self.triggered else None


class VLink:
    """A VLink descriptor: one established (or in-progress) connection."""

    def __init__(
        self,
        manager: "VLinkManager",
        driver_name: str,
        conn,
        route: "Optional[RouteChoice | Route]" = None,
    ):
        self.manager = manager
        self.sim = manager.sim
        self.driver_name = driver_name
        self.conn = conn
        self.route = route
        self.state = VLinkState.ESTABLISHED if conn is not None else VLinkState.IDLE
        self.bytes_written = 0
        self.bytes_read = 0
        manager._links.append(self)

    # -- primitives -----------------------------------------------------------
    def write(self, data: bytes) -> VLinkOperation:
        """Post a write of ``data``; completes when the peer holds the bytes."""
        self._check_established("write")
        op = VLinkOperation(self.sim, "write", self)
        self.bytes_written += len(data)
        if type(data) is not bytes:
            data = bytes(data)  # drivers may alias the buffer; snapshot mutables
        self.conn.write(data).chain(op)
        return op

    def read(self, nbytes: int, exact: bool = True) -> VLinkOperation:
        """Post a read; completes with the bytes (exactly ``nbytes`` when
        ``exact``, otherwise whatever is available up to ``nbytes``)."""
        self._check_established("read")
        op = VLinkOperation(self.sim, "read", self)

        def _done(ev):
            if ev.ok:
                self.bytes_read += len(ev.value)
                if not op.triggered:
                    op.succeed(ev.value)
            elif not op.triggered:
                op.fail(ev.value)

        if exact:
            self.conn.recv_exact(nbytes).add_callback(_done)
        else:
            self.conn.recv(nbytes).add_callback(_done)
        return op

    def close(self) -> VLinkOperation:
        """Post a close of the link."""
        op = VLinkOperation(self.sim, "close", self)
        if self.state is VLinkState.CLOSED:
            op.succeed(None)
            return op
        self.state = VLinkState.CLOSED
        self.conn.close()
        op.succeed(None)
        return op

    # -- non-blocking helpers --------------------------------------------------
    def available(self) -> int:
        """Bytes readable without waiting."""
        return self.conn.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        data = self.conn.read_available(limit)
        self.bytes_read += len(data)
        return data

    def set_data_handler(self, fn: Optional[Callable[["VLink"], None]]) -> None:
        """Handler called whenever new bytes become readable (asynchronous
        personalities and the SOAP/CORBA server loops use this)."""
        if fn is None:
            self.conn.set_data_callback(None)
        else:
            self.conn.set_data_callback(lambda _c: fn(self))

    def set_close_handler(self, fn: Optional[Callable[["VLink"], None]]) -> None:
        """Handler called when the underlying connection closes.

        Used by gateway relays (teardown propagation across the splice) and
        adaptive links (rail-death detection).  Every driver connection
        either exposes ``set_close_callback`` directly or owns a
        :class:`~repro.abstraction.drivers.StreamBuffer` that does.
        """
        callback = None if fn is None else (lambda *_args: fn(self))
        conn = self.conn
        if hasattr(conn, "set_close_callback"):
            conn.set_close_callback(callback)
        elif hasattr(conn, "buffer"):
            conn.buffer.set_close_callback(callback)

    # -- internals ----------------------------------------------------------------
    def _check_established(self, opname: str) -> None:
        if self.state is not VLinkState.ESTABLISHED:
            raise AbstractionError(f"VLink.{opname}() on a link in state {self.state.value}")

    @property
    def peer_name(self) -> str:
        return getattr(self.conn, "peer_name", "?")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VLink via {self.driver_name} to {self.peer_name} state={self.state.value}>"


class VLinkListener:
    """Server side of VLink: accepts incoming links from any registered driver."""

    def __init__(self, manager: "VLinkManager", port: int):
        self.manager = manager
        self.sim = manager.sim
        self.port = port
        self._accept_callback: Optional[Callable[[VLink], None]] = None
        self._ready: List[VLink] = []
        self._waiters: List[VLinkOperation] = []
        self.accepted = 0

    def accept(self) -> VLinkOperation:
        """Post an accept; completes with the next incoming :class:`VLink`."""
        op = VLinkOperation(self.sim, "accept")
        if self._ready:
            op.succeed(self._ready.pop(0))
        else:
            self._waiters.append(op)
        return op

    def set_accept_callback(self, fn: Callable[[VLink], None]) -> None:
        """Callback mode: every incoming link is handed to ``fn``."""
        self._accept_callback = fn
        while self._ready:
            fn(self._ready.pop(0))

    def _incoming(self, driver_name: str, conn, peer_host: Optional[Host]) -> None:
        link = VLink(self.manager, driver_name, conn)
        self.accepted += 1
        if self._waiters:
            self._waiters.pop(0).succeed(link)
        elif self._accept_callback is not None:
            self._accept_callback(link)
        else:
            self._ready.append(link)

    def close(self) -> None:
        self.manager._listeners.pop(self.port, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VLinkListener :{self.port} accepted={self.accepted}>"


class VLinkManager:
    """Per-host VLink factory: driver registry + connect/listen entry points."""

    def __init__(self, host: Host, selector: Optional[Selector] = None):
        self.host = host
        self.sim = host.sim
        self.selector = selector
        # flight-recorder hook (wired by PadicoFramework.enable_telemetry)
        self.telemetry = None
        self._drivers: Dict[str, "VLinkDriver"] = {}
        self._listeners: Dict[int, VLinkListener] = {}
        self._links: List[VLink] = []
        #: open adaptive sessions originated here (migration candidates).
        self._adaptive_links: List = []
        self._topology_subscribed = False
        self._reroute_scheduled = False
        #: route-flap hysteresis: minimum virtual time between
        #: preference-driven migrations of one session (see ROUTE_MIN_DWELL).
        self.route_dwell = ROUTE_MIN_DWELL
        #: optional hook run before re-routing towards a destination; the
        #: framework points it at ``ensure_gateways`` so migrations can land
        #: on relay routes whose gateways are booted on demand.
        self.gateway_provisioner: Optional[Callable[[Host], None]] = None
        host.register_service(VLINK_SERVICE, self, replace=True)

    # -- drivers -------------------------------------------------------------------
    def register_driver(self, driver: "VLinkDriver") -> "VLinkDriver":
        """Register a VLink driver (an incarnation of the abstract interface)."""
        if driver.name in self._drivers:
            return self._drivers[driver.name]
        self._drivers[driver.name] = driver
        # Late registration (e.g. WAN method drivers enabled on a gateway
        # after boot) must serve the ports the manager already listens on.
        for port, listener in self._listeners.items():
            driver.listen(
                port, lambda conn, peer, n=driver.name, l=listener: l._incoming(n, conn, peer)
            )
        return driver

    def driver(self, name: str) -> "VLinkDriver":
        try:
            return self._drivers[name]
        except KeyError:
            raise AbstractionError(
                f"no VLink driver {name!r} on host {self.host.name}; "
                f"registered: {sorted(self._drivers)}"
            ) from None

    def driver_names(self) -> List[str]:
        return sorted(self._drivers)

    def reliable_driver_names(self) -> List[str]:
        """Drivers that never surrender bytes (adaptive rails require this:
        a VRP driver with a non-zero tolerance would hole the framed stream)."""
        return sorted(
            name for name, driver in self._drivers.items() if getattr(driver, "reliable", True)
        )

    def links(self) -> List[VLink]:
        return list(self._links)

    # -- server side -----------------------------------------------------------------
    def listen(self, port: int) -> VLinkListener:
        """Listen on ``port`` with every registered driver."""
        if port in self._listeners:
            raise AbstractionError(f"VLink port {port} already in use on {self.host.name}")
        listener = VLinkListener(self, port)
        self._listeners[port] = listener
        for name, driver in self._drivers.items():
            driver.listen(port, lambda conn, peer, n=name: listener._incoming(n, conn, peer))
        return listener

    # -- client side -----------------------------------------------------------------
    def connect(
        self,
        dst_host: Host,
        port: int,
        method: Optional[str] = None,
        relay_ttl: int = MAX_RELAY_TTL,
        reliable_only: bool = False,
        route: Optional[Route] = None,
        params: Optional[Dict[str, float]] = None,
    ) -> VLinkOperation:
        """Post a connect to ``dst_host:port``.

        The driver is chosen by (in decreasing priority) the explicit
        ``method`` argument, a pre-pinned ``route`` (route-aware Circuits,
        adaptive route providers and relay continuations pass one), the
        selector's route for the link, or — with none available — a plain
        preference for straight drivers.  For a multi-hop route the
        connection is opened to the first gateway's relay service, which
        store-and-forwards towards the destination (``relay_ttl`` bounds the
        remaining chain length) honouring the route's pinned per-hop methods
        when given.  ``reliable_only`` restricts selection to drivers that
        never give up bytes (adaptive rails need that guarantee); ``params``
        carries per-connection method parameters (e.g. ``streams``,
        ``tolerance``) for drivers that support tuning.
        """
        op = VLinkOperation(self.sim, "connect")
        chosen: Optional[RouteChoice | Route] = None
        if method is None and route is not None and route.hops:
            first = route.first
            if not route.is_direct:
                # relay legs always require reliability; the first hop's
                # driver (and the gateway's relay) must be usable here —
                # otherwise the pinning is stale and live selection takes
                # over.
                if (
                    first.dst is not None
                    and self._pinned_usable(first, first.dst, True)
                    and first.dst.has_service(GATEWAY_RELAY_SERVICE)
                ):
                    self._connect_via_relay(route, dst_host, port, relay_ttl, op)
                    return op
            elif self._pinned_usable(first, dst_host, reliable_only):
                chosen = route
                method = first.method
                if params is None and first.params:
                    params = dict(first.params)
            # else: the pinned decision is gone/unreachable — fall back to
            # live selection below.
        if method is None:
            if self.selector is not None:
                available = (
                    self.reliable_driver_names() if reliable_only else self.driver_names()
                )
                full_route = self.selector.choose_vlink_route(
                    self.host, dst_host, available, reliable_only=reliable_only
                )
                if not full_route.is_direct:
                    self._connect_via_relay(full_route, dst_host, port, relay_ttl, op)
                    return op
                chosen = full_route.first
                method = chosen.method
                if params is None and chosen.params:
                    params = dict(chosen.params)
            else:
                method = self._fallback_method(dst_host)
        driver = self.resolve_driver(method, dst_host)

        def _connected(ev):
            if ev.ok:
                link = VLink(self, driver.name, ev.value, chosen)
                if not op.triggered:
                    op.succeed(link)
            elif not op.triggered:
                op.fail(ev.value)

        self._driver_connect(driver, dst_host, port, params, reliable_only).add_callback(
            _connected
        )
        return op

    def _pinned_usable(self, choice: RouteChoice, dst_host: Host, reliable_only: bool) -> bool:
        """Can a pinned hop decision still be executed here right now?"""
        try:
            driver = self.resolve_driver(choice.method, dst_host)
        except AbstractionError:
            return False
        if not driver.reaches(dst_host):
            return False
        if reliable_only and not getattr(driver, "reliable", True):
            return False
        return True

    @staticmethod
    def _driver_connect(driver, dst_host: Host, port: int, params, reliable_only: bool):
        """Open the driver connection, applying per-connection parameters.

        A reliable-only leg must never loosen reliability: a pinned
        ``tolerance`` is forced to zero on such legs whatever the route
        said (belt and braces — selection already derives zero there).
        """
        if params:
            if reliable_only and params.get("tolerance"):
                params = dict(params)
                params["tolerance"] = 0.0
            return driver.connect_with_params(dst_host, port, params)
        return driver.connect(dst_host, port)

    def _connect_via_relay(
        self,
        route: Route,
        dst_host: Host,
        port: int,
        relay_ttl: int,
        op: VLinkOperation,
    ) -> None:
        """Open the first leg to a gateway relay and handshake the rest.

        The relay hello carries the route's remaining hop decisions, so the
        chain executes the client's per-hop pinning (each relay still falls
        back to autonomous selection when a pinned driver is unusable).
        """
        first = route.first
        gateway = first.dst
        if not gateway.has_service(GATEWAY_RELAY_SERVICE):
            op.fail(
                AbstractionError(
                    f"route {route.describe()} needs gateway {gateway.name!r}, "
                    f"but no relay runs there; boot it first "
                    f"(PadicoFramework.boot() starts one on every node)"
                )
            )
            return
        driver = self.resolve_driver(first.method, gateway)
        hello = pack_relay_hello(
            dst_host.name, port, relay_ttl, pinned=encode_pinned_hops(route.hops[1:])
        )

        def _leg_open(ev):
            if not ev.ok:
                if not op.triggered:
                    op.fail(ev.value)
                return
            conn = ev.value
            conn.write(hello)

            def _acked(ack_ev):
                if op.triggered:
                    return
                if ack_ev.ok and ack_ev.value == b"\x01":
                    op.succeed(VLink(self, driver.name, conn, route))
                else:
                    relay = gateway.get_service(GATEWAY_RELAY_SERVICE)
                    detail = getattr(relay, "last_error", "") or "relay refused"
                    op.fail(
                        ConnectionRefusedError(
                            f"gateway {gateway.name} could not reach "
                            f"{dst_host.name}:{port}: {detail}"
                        )
                    )

            conn.recv_exact(1).add_callback(_acked)

        self._driver_connect(
            driver, gateway, GATEWAY_RELAY_PORT, dict(first.params) or None, True
        ).add_callback(_leg_open)

    def resolve_driver(self, method: str, dst_host: Host) -> "VLinkDriver":
        """The driver for ``method`` that actually reaches ``dst_host``.

        Multi-rail hosts register one driver per SAN ("madio" for the primary
        rail, "madio:<network>" for the others); when the policy names the
        bare method but the primary rail does not reach the destination, the
        matching secondary-rail driver is substituted.
        """
        driver = self.driver(method)
        if driver.reaches(dst_host):
            return driver
        prefix = f"{method}:"
        for name in sorted(self._drivers):
            if name.startswith(prefix) and self._drivers[name].reaches(dst_host):
                return self._drivers[name]
        return driver

    # -- adaptive sessions -------------------------------------------------------
    def listen_adaptive(self, port: int):
        """Listen for *adaptive* sessions on ``port`` (see
        :mod:`repro.abstraction.adaptive`): migratable, exactly-once ordered
        byte streams that survive topology changes under them."""
        from repro.abstraction.adaptive import AdaptiveListener

        return AdaptiveListener(self, port)

    def connect_adaptive(
        self, dst_host: Host, port: int, route_provider=None
    ) -> VLinkOperation:
        """Open an adaptive session to ``dst_host:port``.

        The returned operation completes with an
        :class:`~repro.abstraction.adaptive.AdaptiveVLink`; its rail is
        re-selected (and the stream migrated without losing or reordering
        bytes) whenever the topology knowledge base changes under it.
        ``route_provider`` (a callable returning a pinned
        :class:`~repro.abstraction.routing.Route` or ``None``) overrides the
        rail selection — adaptive circuit legs pass the selector's
        circuit-hop pinning here.
        """
        from repro.abstraction.adaptive import adaptive_connect

        return adaptive_connect(self, dst_host, port, route_provider=route_provider)

    def adaptive_links(self) -> List:
        return list(self._adaptive_links)

    def _register_adaptive(self, link) -> None:
        self._adaptive_links.append(link)
        if not self._topology_subscribed and self.selector is not None:
            self.selector.topology.subscribe(self._on_topology_change)
            self._topology_subscribed = True

    def _unregister_adaptive(self, link) -> None:
        if link in self._adaptive_links:
            self._adaptive_links.remove(link)

    def _on_topology_change(self, change) -> None:
        """Topology mutated: re-run selection for open adaptive links.

        Deferred by one event-loop turn so the re-evaluation happens after
        the mutation (and any sibling notifications) fully settled.
        """
        if self._reroute_scheduled or not self._adaptive_links:
            return
        self._reroute_scheduled = True
        self.sim.call_later(0.0, self._reroute_adaptive_links)

    def _reroute_adaptive_links(self) -> None:
        self._reroute_scheduled = False
        if self.selector is None:
            return
        from repro.abstraction.adaptive import route_signature

        for link in list(self._adaptive_links):
            if link.state is not VLinkState.ESTABLISHED or link.role != "client":
                continue
            if self.gateway_provisioner is not None:
                self.gateway_provisioner(link.dst_host)
            route = None
            if link.route_provider is not None:
                route = link._provided_route()
            if route is None:
                try:
                    route = self.selector.choose_vlink_route(
                        self.host, link.dst_host, self.reliable_driver_names(), reliable_only=True
                    )
                except AbstractionError:
                    continue  # destination unreachable right now: keep the rail
            rail_dead = getattr(link, "_rail_dead", False) or (
                link.rail is not None and link.rail.state is not VLinkState.ESTABLISHED
            )
            if rail_dead or route_signature(route) != link.rail_signature:
                if not rail_dead and self._dwell_blocks(link):
                    # recently migrated and the current route still works:
                    # hold the route (flap damping) and re-evaluate when the
                    # dwell expires.
                    if self.telemetry is not None:
                        self.telemetry.emit(
                            "route.dwell_veto",
                            session=f"{link.session_id:#x}",
                            peer=link.peer_name,
                        )
                    self._defer_reroute(link)
                    continue
                link.migrate(reason=f"topology change: {route.describe()}")

    def _dwell_blocks(self, link) -> bool:
        """True when the minimum-dwell hysteresis vetoes a preference-driven
        migration: the session migrated less than ``route_dwell`` ago and
        its current rail's route is still viable (no down link/host)."""
        if self.route_dwell <= 0.0 or link.last_migration_at is None:
            return False
        # the deadline must be the *same float expression* `_defer_reroute`
        # schedules its recheck for, or rounding can strand the recheck in a
        # zero-delay loop at the expiry timestamp
        if self.sim.now >= link.last_migration_at + self.route_dwell:
            return False
        return self._route_viable(link)

    def _route_viable(self, link) -> bool:
        """Is the route the current rail rides still physically usable
        according to the knowledge base?  A route through a down link or a
        dead host is not — hysteresis must never pin a session to it."""
        rail = link.rail
        if rail is None or rail.state is not VLinkState.ESTABLISHED:
            return False
        if self.selector is None:
            return True
        route = rail.route
        hops = getattr(route, "hops", None)
        if hops is None:
            hops = [route] if route is not None else []
        topology = self.selector.topology
        for hop in hops:
            if hop.network is not None and not topology.is_link_up(hop.network):
                return False
            if hop.dst is not None and not topology.is_host_up(hop.dst):
                return False
        return True

    def _defer_reroute(self, link) -> None:
        """Schedule one re-evaluation at the link's dwell expiry."""
        if link._dwell_recheck:
            return
        link._dwell_recheck = True
        remaining = link.last_migration_at + self.route_dwell - self.sim.now
        self.sim.call_later(max(remaining, 0.0), self._dwell_expired, link)

    def _dwell_expired(self, link) -> None:
        link._dwell_recheck = False
        if link.state is VLinkState.ESTABLISHED and link in self._adaptive_links:
            self._reroute_adaptive_links()

    def _fallback_method(self, dst_host: Host) -> str:
        order = ["loopback"] if dst_host is self.host else []
        order += ["madio", "sysio"]
        for name in order:
            if name in self._drivers:
                if name == "madio" and not self._drivers[name].reaches(dst_host):
                    continue
                if name == "loopback" and dst_host is not self.host:
                    continue
                return name
        if self._drivers:
            return next(iter(sorted(self._drivers)))
        raise AbstractionError(f"no VLink drivers registered on host {self.host.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VLinkManager host={self.host.name} drivers={self.driver_names()}>"
