"""Adaptive Circuits: group endpoints that survive topology changes.

The PR 2 adaptive machinery stopped at point-to-point VLinks: a Circuit
bound its adapters once at creation, so the monitoring subsystem's verdicts
(degraded WANs, dead links, killed gateways) were invisible to group
communication — a member behind a dying hop simply froze.  This module
closes that gap by generalizing the offset-framed, cumulative-ack sessions
of :mod:`repro.abstraction.adaptive` to the Circuit layer:

* every remote leg of an adaptive circuit is an
  :class:`~repro.abstraction.adaptive.AdaptiveVLink` session instead of a
  bare driver stream.  The stream-mesh framing (``src_rank``-tagged,
  length-prefixed messages) rides the session unchanged;
* each leg carries a *route provider* pointing at
  :meth:`~repro.abstraction.selector.Selector.pin_circuit_route`, so rails
  follow the circuit-hop policy (parallel streams / AdOC / zero-tolerance
  VRP on WAN hops, MadIO on SAN hops, monitoring-derived parameters) both
  at creation and on every migration;
* when a hop degrades or a gateway dies, **only the affected leg
  migrates** — the VLink manager's topology subscription re-runs pinning
  per session, the session resumes on the new rail via the offset
  handshake, and per-source byte order across the group is preserved by
  the cumulative-ack retransmission exactly as for point-to-point adaptive
  VLinks.  Unaffected legs never notice.

The :class:`AdaptiveCircuitSession` object is the per-circuit bookkeeping
surface (``circuit.adaptive``): live legs, migration counts, per-leg route
descriptions — what benchmarks and operators introspect.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.abstraction.adaptive import AdaptiveListener, AdaptiveVLink
from repro.abstraction.adapters import StreamMeshCircuitAdapter
from repro.abstraction.circuit import Circuit
from repro.abstraction.common import AbstractionError
from repro.abstraction.routing import Route
from repro.abstraction.selector import RouteChoice
from repro.abstraction.vlink import VLinkManager


class AdaptiveCircuitAdapter(StreamMeshCircuitAdapter):
    """Circuit legs as migratable adaptive sessions (one per remote rank).

    The lazily built stream mesh of :class:`StreamMeshCircuitAdapter` is
    reused verbatim — only the transport factory changes: ``_listen`` opens
    an :class:`~repro.abstraction.adaptive.AdaptiveListener` and
    ``_connect`` opens adaptive sessions whose rails are pinned through the
    selector's circuit-hop policy.
    """

    name = "adaptive"

    def __init__(
        self,
        circuit: Circuit,
        route: RouteChoice,
        vlink_manager: Optional[VLinkManager] = None,
    ):
        super().__init__(circuit, route)
        self.vlink_manager = vlink_manager or self.host.require_service("vlink")
        self.listener: Optional[AdaptiveListener] = None

    # -- stream-mesh transport hooks ---------------------------------------------
    def _listen(self, port: int, on_incoming: Callable) -> None:
        self.listener = self.vlink_manager.listen_adaptive(port)
        self.listener.set_accept_callback(lambda link: on_incoming(link, None))

    def _connect(self, dst_host: Host, port: int) -> SimEvent:
        return self.vlink_manager.connect_adaptive(
            dst_host, port, route_provider=self._route_provider_for(dst_host)
        )

    def _route_provider_for(self, dst_host: Host) -> Optional[Callable[[], Optional[Route]]]:
        """Rails follow circuit-hop pinning, re-evaluated per migration."""
        selector = self.vlink_manager.selector
        if selector is None:
            return None
        manager = self.vlink_manager

        def provide() -> Optional[Route]:
            try:
                return selector.pin_circuit_route(
                    manager.host, dst_host, manager.reliable_driver_names()
                )
            except AbstractionError:
                return None  # unreachable right now: let live selection try

        return provide

    # -- introspection ------------------------------------------------------------
    def legs(self) -> Dict[int, AdaptiveVLink]:
        """The live outgoing adaptive sessions, keyed by destination rank."""
        return {
            rank: stream
            for rank, stream in self._out_streams.items()
            if isinstance(stream, AdaptiveVLink)
        }


class AdaptiveCircuitSession:
    """Per-circuit adaptive bookkeeping: the surface behind ``circuit.adaptive``.

    One instance wraps the circuit's :class:`AdaptiveCircuitAdapter` and
    aggregates what the group endpoint wants to know: which legs are live,
    how often each migrated, and what route every leg currently rides.
    """

    def __init__(self, circuit: Circuit, adapter: AdaptiveCircuitAdapter):
        self.circuit = circuit
        self.adapter = adapter

    def legs(self) -> Dict[int, AdaptiveVLink]:
        return self.adapter.legs()

    def migrations(self) -> int:
        """Total leg migrations this member performed so far."""
        return sum(leg.migrations for leg in self.legs().values())

    def unacked(self) -> int:
        """Bytes written to the group the peers have not yet delivered."""
        return sum(leg.unacked for leg in self.legs().values())

    def leg_routes(self) -> Dict[int, str]:
        """Human-readable current route per destination rank."""
        out: Dict[int, str] = {}
        for rank, leg in self.legs().items():
            route = leg.route
            if route is None:
                out[rank] = "?"
            elif isinstance(route, Route):
                out[rank] = route.describe()
            else:
                out[rank] = f"{leg.driver_name} ({route.method})"
        return out

    def describe(self) -> Dict[str, object]:
        legs = self.legs()
        return {
            "legs": len(legs),
            "migrations": self.migrations(),
            "unacked": self.unacked(),
            "routes": {rank: desc for rank, desc in sorted(self.leg_routes().items())},
            "drivers": {rank: leg.driver_name for rank, leg in sorted(legs.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdaptiveCircuitSession {self.circuit.name!r} "
            f"legs={len(self.legs())} migrations={self.migrations()}>"
        )


__all__: List[str] = ["AdaptiveCircuitAdapter", "AdaptiveCircuitSession"]
