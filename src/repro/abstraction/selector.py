"""The adapter/method selector.

The abstraction layer "is responsible for automatically and dynamically
choosing the best available interface from the arbitration layer according
to the available hardware; then it should map it onto the right abstract
interface through the right adapter" (§3.3).  Besides straight and
cross-paradigm adapters, alternate *methods* (parallel streams on WANs,
online compression on slow links, a loss-tolerant protocol on lossy links,
ciphering between administrative sites) can be preferred per link class.

The default policy implemented here:

========== =========================== ===========================
link class VLink (distributed) adapter Circuit (parallel) adapter
========== =========================== ===========================
LOCAL      loopback                    loopback
SAN        madio  (cross-paradigm)     madio  (straight)
LAN        sysio  (straight)           sysio  (cross-paradigm)
WAN        parallel_streams*           vlink:parallel_streams*
LOSSY_WAN  vrp* / sysio                vlink:vrp* / sysio
========== =========================== ===========================

Entries marked ``*`` require the corresponding method driver to be
registered on the host; otherwise the selector falls back to plain sysio.
User preferences override the defaults per link class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simnet.host import Host
from repro.simnet.network import Network
from repro.abstraction.common import AbstractionError
from repro.abstraction.topology import LinkClass, LinkProfile, TopologyKB
from repro.abstraction.routing import Route, RouteChoice, RoutingEngine

__all__ = ["Selector", "Preferences", "Route", "RouteChoice"]

#: bounds for the monitoring-driven parallel-streams fan-out.
MIN_STREAMS, MAX_STREAMS = 2, 8
#: bandwidth-delay product above which a WAN profits from the full base
#: fan-out (below it, connection setup dominates and two members suffice).
STREAMS_BDP_THRESHOLD = 32 * 1024
#: cap for the derived VRP tolerance (never surrender more than this).
MAX_VRP_TOLERANCE = 0.20


@dataclass
class Preferences:
    """User-defined preferences, overriding the default policy per link class.

    ``vlink_methods`` / ``circuit_methods`` map a :class:`LinkClass` to an
    ordered list of method names; the first method that is actually available
    on the host wins.
    """

    vlink_methods: Dict[LinkClass, List[str]] = field(default_factory=dict)
    circuit_methods: Dict[LinkClass, List[str]] = field(default_factory=dict)
    #: per-hop method preference for *routed* Circuit legs (the hops ride
    #: VLink rails, so these are VLink driver names, not adapter names).
    circuit_hop_methods: Dict[LinkClass, List[str]] = field(default_factory=dict)
    #: force ciphering on links that cross administrative sites.
    require_security_cross_site: bool = False

    def prefer_vlink(self, link_class: LinkClass, *methods: str) -> "Preferences":
        self.vlink_methods[link_class] = list(methods)
        return self

    def prefer_circuit(self, link_class: LinkClass, *methods: str) -> "Preferences":
        self.circuit_methods[link_class] = list(methods)
        return self

    def prefer_circuit_hop(self, link_class: LinkClass, *methods: str) -> "Preferences":
        self.circuit_hop_methods[link_class] = list(methods)
        return self


_DEFAULT_VLINK = {
    LinkClass.LOCAL: ["loopback", "sysio"],
    LinkClass.SAN: ["madio"],
    LinkClass.LAN: ["sysio"],
    LinkClass.WAN: ["parallel_streams", "sysio"],
    LinkClass.LOSSY_WAN: ["vrp", "adoc", "sysio"],
}

_DEFAULT_CIRCUIT = {
    LinkClass.LOCAL: ["loopback", "sysio"],
    LinkClass.SAN: ["madio"],
    LinkClass.LAN: ["sysio"],
    LinkClass.WAN: ["vlink:parallel_streams", "sysio"],
    LinkClass.LOSSY_WAN: ["vlink:vrp", "sysio"],
    # pairs with no common network but a gateway route: ride routed VLinks.
    LinkClass.ROUTED: ["vlink"],
}

#: per-hop method preference for routed Circuit legs.  Every hop carries a
#: framed stream-mesh byte stream (somebody's message boundaries live in
#: it), so hops are restricted to drivers that never surrender bytes and a
#: VRP hop is always pinned at zero tolerance.
_DEFAULT_CIRCUIT_HOP = {
    LinkClass.LOCAL: ["loopback", "sysio"],
    LinkClass.SAN: ["madio", "sysio"],
    LinkClass.LAN: ["sysio"],
    LinkClass.WAN: ["parallel_streams", "adoc", "sysio"],
    LinkClass.LOSSY_WAN: ["vrp", "adoc", "sysio"],
}

#: methods that translate between paradigms when used for each interface.
_CROSS_PARADIGM_VLINK = {"madio", "loopback"}
_CROSS_PARADIGM_CIRCUIT = {"sysio", "vlink", "vlink:parallel_streams", "vlink:vrp", "vlink:adoc"}


class Selector:
    """Chooses adapters/methods per link from the topology KB and preferences.

    Directly connected pairs keep the seed policy table above; pairs with no
    common network are resolved through the :class:`RoutingEngine` into
    multi-hop :class:`Route` objects relayed by gateways.
    """

    def __init__(
        self,
        topology: TopologyKB,
        preferences: Optional[Preferences] = None,
        routing: Optional[RoutingEngine] = None,
    ):
        self.topology = topology
        self.preferences = preferences or Preferences()
        self.routing = routing or RoutingEngine(topology)

    # -- generic machinery -------------------------------------------------------
    def _candidates(
        self,
        link_class: LinkClass,
        table: Dict[LinkClass, List[str]],
        overrides: Dict[LinkClass, List[str]],
    ) -> List[str]:
        if link_class in overrides:
            return list(overrides[link_class]) + list(table.get(link_class, []))
        return list(table.get(link_class, []))

    def _pick(
        self,
        src: Host,
        dst: Host,
        available: List[str],
        table: Dict[LinkClass, List[str]],
        overrides: Dict[LinkClass, List[str]],
        cross_set,
        interface: str,
        reliable: bool = False,
    ) -> RouteChoice:
        profile: LinkProfile = self.topology.link_profile(src, dst)
        if profile.link_class is LinkClass.NONE:
            raise AbstractionError(
                f"no common network between {src.name} and {dst.name}: cannot route"
            )
        candidates = self._candidates(profile.link_class, table, overrides)
        for method in candidates:
            if method in available:
                network = self._network_for(method, profile)
                return RouteChoice(
                    method=method,
                    network=network,
                    link_class=profile.link_class,
                    cross_paradigm=method in cross_set,
                    reason=(
                        f"{interface} on {profile.link_class.value} link "
                        f"{src.name}->{dst.name}: picked {method!r} from {candidates}"
                    ),
                    src=src,
                    dst=dst,
                    params=self.derive_method_params(method, network, reliable=reliable),
                )
        raise AbstractionError(
            f"no available {interface} method for {profile.link_class.value} link "
            f"{src.name}->{dst.name}; candidates={candidates}, available={sorted(available)}"
        )

    def derive_method_params(
        self, method: str, network: Optional[Network], reliable: bool = False
    ) -> Dict[str, float]:
        """Monitoring-driven method *parameters* for a chosen hop.

        The selector used to feed measurements only into the method
        *choice*; the parameters of the method stayed at their registration
        defaults.  This derives them from the knowledge base's effective
        (measured-override-aware) metrics of the hop's network:

        * ``parallel_streams``: the member-socket fan-out grows with the
          measured loss (each member shields the others from a loss event)
          on top of a base set by the bandwidth-delay product —
          ``base + round(loss * 100)`` clamped to [2, 8], where base is 4
          for long fat pipes and 2 below :data:`STREAMS_BDP_THRESHOLD`.
        * ``vrp``: the tolerated loss follows the measured loss
          (``1.5 x loss`` capped at :data:`MAX_VRP_TOLERANCE`) — give up
          roughly what the wire is dropping anyway, keep the bandwidth.
          On ``reliable`` legs (gateway relays, adaptive rails: somebody
          else's framed stream) the tolerance is pinned at zero instead.
        """
        if network is None:
            return {}
        topology = self.topology
        base_method = method.rsplit(":", 1)[-1]
        if base_method == "parallel_streams":
            loss = topology.effective_loss_rate(network)
            bdp = topology.effective_latency(network) * topology.effective_bandwidth(network)
            base = 4 if bdp >= STREAMS_BDP_THRESHOLD else 2
            streams = base + int(round(loss * 100))
            return {"streams": max(MIN_STREAMS, min(MAX_STREAMS, streams))}
        if base_method == "vrp":
            if reliable:
                return {"tolerance": 0.0}
            loss = topology.effective_loss_rate(network)
            if loss > 0.0:
                return {"tolerance": round(min(MAX_VRP_TOLERANCE, 1.5 * loss), 4)}
        return {}

    @staticmethod
    def _network_for(method: str, profile: LinkProfile) -> Optional[Network]:
        if method in ("loopback",):
            return None
        if method == "madio":
            nets = profile.parallel_networks()
            return nets[0] if nets else profile.best_network
        # every other method runs over an IP network
        nets = profile.distributed_networks()
        if nets:
            # fastest distributed network
            return sorted(nets, key=lambda n: (-n.bandwidth, n.latency))[0]
        return profile.best_network

    def mutually_available(
        self, available: List[str], dst: Host, reliable_only: bool = False
    ) -> List[str]:
        """Restrict ``available`` to methods the destination also serves.

        A driver only registered on one side cannot complete a connection
        (the method's listener is not there); when the intersection is empty
        the original list is kept so error messages stay meaningful.  With
        ``reliable_only`` the *remote* driver must also be reliable — a VRP
        receiver with non-zero tolerance zero-fills holes no matter how
        strict the sender is.  The connect path and relay hops use this;
        ``choose_vlink`` itself keeps treating the caller's list as
        authoritative.
        """
        remote = set(self.vlink_methods_on(dst, reliable_only=reliable_only))
        usable = [m for m in available if m in remote]
        return usable or list(available)

    # -- public API ---------------------------------------------------------------
    def choose_vlink(self, src: Host, dst: Host, available: List[str]) -> RouteChoice:
        """Pick the VLink driver for a (src, dst) connection."""
        return self._pick(
            src,
            dst,
            available,
            _DEFAULT_VLINK,
            self.preferences.vlink_methods,
            _CROSS_PARADIGM_VLINK,
            "VLink",
        )

    def choose_circuit(self, src: Host, dst: Host, available: List[str]) -> RouteChoice:
        """Pick the Circuit adapter for the (src, dst) link of a group."""
        return self._pick(
            src,
            dst,
            available,
            _DEFAULT_CIRCUIT,
            self.preferences.circuit_methods,
            _CROSS_PARADIGM_CIRCUIT,
            "Circuit",
        )

    # -- route-level API -----------------------------------------------------------
    def choose_vlink_route(
        self, src: Host, dst: Host, available: List[str], reliable_only: bool = False
    ) -> Route:
        """The full VLink path decision: one hop for directly connected pairs
        (identical to :meth:`choose_vlink`), a multi-hop gateway route when no
        common network exists, an :class:`AbstractionError` when there is no
        path at all.  ``reliable_only`` restricts every hop to drivers that
        never surrender bytes, on both ends."""
        profile = self.topology.link_profile(src, dst)
        if profile.link_class is not LinkClass.NONE:
            # the chosen method must be served on both ends of the link
            usable = self.mutually_available(available, dst, reliable_only)
            return Route(
                src,
                dst,
                [
                    self._pick(
                        src,
                        dst,
                        usable,
                        _DEFAULT_VLINK,
                        self.preferences.vlink_methods,
                        _CROSS_PARADIGM_VLINK,
                        "VLink",
                        reliable=reliable_only,
                    )
                ],
            )
        hops = self.routing.host_path(src, dst)
        choices: List[RouteChoice] = []
        for index, hop in enumerate(hops):
            hop_available = (
                available
                if index == 0
                else self.vlink_methods_on(hop.src, reliable_only=reliable_only)
            )
            choices.append(
                self._pick(
                    hop.src,
                    hop.dst,
                    self.mutually_available(hop_available, hop.dst, reliable_only),
                    _DEFAULT_VLINK,
                    self.preferences.vlink_methods,
                    _CROSS_PARADIGM_VLINK,
                    "VLink",
                    reliable=reliable_only,
                )
            )
        return Route(src, dst, choices)

    def pin_circuit_route(
        self, src: Host, dst: Host, available: Optional[List[str]] = None
    ) -> Route:
        """Pin a concrete method per hop of the ``src -> dst`` circuit leg.

        Routed Circuit legs used to hand the whole path to a bare VLink and
        let every relay re-select autonomously; this computes the decisions
        up front so that each hop gets the best *circuit-hop* method the
        drivers on both of its ends serve (parallel streams / AdOC /
        zero-tolerance VRP on WAN hops, MadIO or plain sockets on SAN/LAN
        hops), with monitoring-driven parameters per hop.  Every hop of the
        chain carries a framed stream, so selection is restricted to
        reliable drivers on both hop ends.  Also used by adaptive circuit
        legs as the rail route provider (single-hop routes for directly
        connected pairs).  Raises :class:`AbstractionError` when the pair is
        unreachable or ``src is dst``.
        """
        hops = self.routing.host_path(src, dst)
        if not hops:
            raise AbstractionError(
                f"no circuit hops to pin between {src.name} and {dst.name}"
            )
        choices: List[RouteChoice] = []
        for index, hop in enumerate(hops):
            hop_available = (
                available
                if index == 0 and available is not None
                else self.vlink_methods_on(hop.src, reliable_only=True)
            )
            choices.append(
                self._pick(
                    hop.src,
                    hop.dst,
                    self.mutually_available(hop_available, hop.dst, reliable_only=True),
                    _DEFAULT_CIRCUIT_HOP,
                    self.preferences.circuit_hop_methods,
                    _CROSS_PARADIGM_VLINK,
                    "Circuit-hop",
                    reliable=True,
                )
            )
        return Route(src, dst, choices)

    def choose_circuit_route(self, src: Host, dst: Host, available: List[str]) -> RouteChoice:
        """Like :meth:`choose_circuit`, but pairs with no common network fall
        back to the routed VLink adapter when a gateway path exists — with
        the per-hop methods pinned through :meth:`pin_circuit_route` and
        carried on the returned choice's ``via`` route."""
        profile = self.topology.link_profile(src, dst)
        if profile.link_class is not LinkClass.NONE:
            return self.choose_circuit(src, dst, available)
        pinned = self.pin_circuit_route(src, dst)  # raises when unreachable
        candidates = self._candidates(
            LinkClass.ROUTED, _DEFAULT_CIRCUIT, self.preferences.circuit_methods
        )
        for method in candidates:
            if method in available:
                return RouteChoice(
                    method=method,
                    network=None,
                    link_class=LinkClass.ROUTED,
                    cross_paradigm=method in _CROSS_PARADIGM_CIRCUIT,
                    reason=(
                        f"Circuit on routed link {src.name}->{dst.name}: "
                        f"picked {method!r} from {candidates}, "
                        f"pinned {pinned.describe()}"
                    ),
                    src=src,
                    dst=dst,
                    via=pinned,
                )
        raise AbstractionError(
            f"no available Circuit method for routed link {src.name}->{dst.name}; "
            f"candidates={candidates}, available={sorted(available)}"
        )

    def vlink_methods_on(self, host: Host, reliable_only: bool = False) -> List[str]:
        """Driver names on an intermediate host (the gateway re-picks at
        forward time anyway; unbooted gateways assume the stock drivers,
        which are all reliable)."""
        manager = host.get_service("vlink")
        if manager is not None:
            if reliable_only:
                return manager.reliable_driver_names()
            return manager.driver_names()
        return ["loopback", "madio", "sysio"]

    def needs_security(self, src: Host, dst: Host) -> bool:
        """True when the preferences require ciphering for this link
        ("if the network is secure, it is useless to cipher data" — §2.1)."""
        if not self.preferences.require_security_cross_site:
            return False
        return src.site != dst.site
