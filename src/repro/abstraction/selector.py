"""The adapter/method selector.

The abstraction layer "is responsible for automatically and dynamically
choosing the best available interface from the arbitration layer according
to the available hardware; then it should map it onto the right abstract
interface through the right adapter" (§3.3).  Besides straight and
cross-paradigm adapters, alternate *methods* (parallel streams on WANs,
online compression on slow links, a loss-tolerant protocol on lossy links,
ciphering between administrative sites) can be preferred per link class.

The default policy implemented here:

========== =========================== ===========================
link class VLink (distributed) adapter Circuit (parallel) adapter
========== =========================== ===========================
LOCAL      loopback                    loopback
SAN        madio  (cross-paradigm)     madio  (straight)
LAN        sysio  (straight)           sysio  (cross-paradigm)
WAN        parallel_streams*           vlink:parallel_streams*
LOSSY_WAN  vrp* / sysio                vlink:vrp* / sysio
========== =========================== ===========================

Entries marked ``*`` require the corresponding method driver to be
registered on the host; otherwise the selector falls back to plain sysio.
User preferences override the defaults per link class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simnet.host import Host
from repro.simnet.network import Network
from repro.abstraction.common import AbstractionError
from repro.abstraction.topology import LinkClass, LinkProfile, TopologyKB


@dataclass
class RouteChoice:
    """The selector's decision for one (src, dst) pair."""

    #: adapter / driver name to use ("madio", "sysio", "loopback",
    #: "parallel_streams", "adoc", "vrp", ...)
    method: str
    #: network the adapter should run on (None for loopback).
    network: Optional[Network]
    #: link class that drove the decision.
    link_class: LinkClass
    #: True when the chosen adapter translates between paradigms.
    cross_paradigm: bool = False
    #: Human-readable explanation (surfaced by the framework status report).
    reason: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        x = " cross" if self.cross_paradigm else ""
        return f"<RouteChoice {self.method} on {self.network.name if self.network else 'local'}{x}>"


@dataclass
class Preferences:
    """User-defined preferences, overriding the default policy per link class.

    ``vlink_methods`` / ``circuit_methods`` map a :class:`LinkClass` to an
    ordered list of method names; the first method that is actually available
    on the host wins.
    """

    vlink_methods: Dict[LinkClass, List[str]] = field(default_factory=dict)
    circuit_methods: Dict[LinkClass, List[str]] = field(default_factory=dict)
    #: force ciphering on links that cross administrative sites.
    require_security_cross_site: bool = False

    def prefer_vlink(self, link_class: LinkClass, *methods: str) -> "Preferences":
        self.vlink_methods[link_class] = list(methods)
        return self

    def prefer_circuit(self, link_class: LinkClass, *methods: str) -> "Preferences":
        self.circuit_methods[link_class] = list(methods)
        return self


_DEFAULT_VLINK = {
    LinkClass.LOCAL: ["loopback", "sysio"],
    LinkClass.SAN: ["madio"],
    LinkClass.LAN: ["sysio"],
    LinkClass.WAN: ["parallel_streams", "sysio"],
    LinkClass.LOSSY_WAN: ["vrp", "adoc", "sysio"],
}

_DEFAULT_CIRCUIT = {
    LinkClass.LOCAL: ["loopback", "sysio"],
    LinkClass.SAN: ["madio"],
    LinkClass.LAN: ["sysio"],
    LinkClass.WAN: ["vlink:parallel_streams", "sysio"],
    LinkClass.LOSSY_WAN: ["vlink:vrp", "sysio"],
}

#: methods that translate between paradigms when used for each interface.
_CROSS_PARADIGM_VLINK = {"madio", "loopback"}
_CROSS_PARADIGM_CIRCUIT = {"sysio", "vlink:parallel_streams", "vlink:vrp", "vlink:adoc"}


class Selector:
    """Chooses adapters/methods per link from the topology KB and preferences."""

    def __init__(self, topology: TopologyKB, preferences: Optional[Preferences] = None):
        self.topology = topology
        self.preferences = preferences or Preferences()

    # -- generic machinery -------------------------------------------------------
    def _candidates(
        self, link_class: LinkClass, table: Dict[LinkClass, List[str]], overrides: Dict[LinkClass, List[str]]
    ) -> List[str]:
        if link_class in overrides:
            return list(overrides[link_class]) + list(table.get(link_class, []))
        return list(table.get(link_class, []))

    def _pick(
        self,
        src: Host,
        dst: Host,
        available: List[str],
        table: Dict[LinkClass, List[str]],
        overrides: Dict[LinkClass, List[str]],
        cross_set,
        interface: str,
    ) -> RouteChoice:
        profile: LinkProfile = self.topology.link_profile(src, dst)
        if profile.link_class is LinkClass.NONE:
            raise AbstractionError(
                f"no common network between {src.name} and {dst.name}: cannot route"
            )
        candidates = self._candidates(profile.link_class, table, overrides)
        for method in candidates:
            if method in available:
                network = self._network_for(method, profile)
                return RouteChoice(
                    method=method,
                    network=network,
                    link_class=profile.link_class,
                    cross_paradigm=method in cross_set,
                    reason=(
                        f"{interface} on {profile.link_class.value} link "
                        f"{src.name}->{dst.name}: picked {method!r} from {candidates}"
                    ),
                )
        raise AbstractionError(
            f"no available {interface} method for {profile.link_class.value} link "
            f"{src.name}->{dst.name}; candidates={candidates}, available={sorted(available)}"
        )

    @staticmethod
    def _network_for(method: str, profile: LinkProfile) -> Optional[Network]:
        if method in ("loopback",):
            return None
        if method == "madio":
            nets = profile.parallel_networks()
            return nets[0] if nets else profile.best_network
        # every other method runs over an IP network
        nets = profile.distributed_networks()
        if nets:
            # fastest distributed network
            return sorted(nets, key=lambda n: (-n.bandwidth, n.latency))[0]
        return profile.best_network

    # -- public API ---------------------------------------------------------------
    def choose_vlink(self, src: Host, dst: Host, available: List[str]) -> RouteChoice:
        """Pick the VLink driver for a (src, dst) connection."""
        return self._pick(
            src,
            dst,
            available,
            _DEFAULT_VLINK,
            self.preferences.vlink_methods,
            _CROSS_PARADIGM_VLINK,
            "VLink",
        )

    def choose_circuit(self, src: Host, dst: Host, available: List[str]) -> RouteChoice:
        """Pick the Circuit adapter for the (src, dst) link of a group."""
        return self._pick(
            src,
            dst,
            available,
            _DEFAULT_CIRCUIT,
            self.preferences.circuit_methods,
            _CROSS_PARADIGM_CIRCUIT,
            "Circuit",
        )

    def needs_security(self, src: Host, dst: Host) -> bool:
        """True when the preferences require ciphering for this link
        ("if the network is secure, it is useless to cipher data" — §2.1)."""
        if not self.preferences.require_security_cross_site:
            return False
        return src.site != dst.site
