"""Circuit adapters: incarnations of the parallel abstract interface.

Adapters are either *straight* (parallel abstraction on a parallel network:
:class:`MadIOCircuitAdapter`) or *cross-paradigm* (parallel abstraction on a
distributed network: :class:`SysIOCircuitAdapter` and
:class:`VLinkCircuitAdapter`, the latter reusing the alternate VLink method
drivers such as parallel streams, AdOC or VRP — §4.2: "Circuit adapters have
been implemented on top of MadIO, SysIO, loopback and VLink (to use the
alternates VLink adapters)").

Cross-paradigm adapters must turn the message-oriented Circuit traffic into
byte streams: each message is framed as ``(src_rank, length, payload)`` and
the framing/parsing work is charged as the cross-paradigm translation cost.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.cost import Cost
from repro.simnet.engine import SimEvent
from repro.simnet.host import Host
from repro.simnet.network import Delivery, Network
from repro.arbitration.madio import MadIO, MadIOChannel
from repro.arbitration.sysio import SysIO
from repro.abstraction.common import (
    AbstractionError,
    CROSS_PARADIGM_FRAMING_OVERHEAD,
    SoftDelivery,
)
from repro.abstraction.circuit import Circuit
from repro.abstraction.selector import RouteChoice
from repro.abstraction.vlink import VLink, VLinkManager


class CircuitAdapter:
    """Base class for per-circuit adapters (one instance per method used)."""

    name = "abstract"

    def __init__(self, circuit: Circuit, route: RouteChoice):
        self.circuit = circuit
        self.route = route
        self.host = circuit.host
        self.sim = circuit.sim
        self.messages_sent = 0
        self.bytes_sent = 0

    def start(self) -> None:
        """Open whatever channels / listeners the adapter needs."""

    def send(self, dst_rank: int, payload: bytes, cost: Cost) -> SimEvent:
        """Transmit one fully packed Circuit message."""
        raise NotImplementedError

    def _account(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} for circuit {self.circuit.name!r}>"


# ---------------------------------------------------------------------------
# Straight adapter: Circuit over MadIO (parallel over parallel)
# ---------------------------------------------------------------------------


class MadIOCircuitAdapter(CircuitAdapter):
    """The straight parallel path: Circuit messages ride MadIO logical channels."""

    name = "madio"

    def __init__(self, circuit: Circuit, route: RouteChoice, madio: Optional[MadIO] = None):
        super().__init__(circuit, route)
        self.madio = madio or self.host.require_service("madio")
        if route.network is None:
            raise AbstractionError("MadIO circuit adapter needs a parallel network")
        self.network: Network = route.network
        self.channel: Optional[MadIOChannel] = None

    def start(self) -> None:
        self.channel = self.madio.open_logical_channel(
            f"circuit:{self.circuit.name}", self.network, self.circuit.group
        )
        self.channel.set_receive_callback(self._on_message)

    def send(self, dst_rank: int, payload: bytes, cost: Cost) -> SimEvent:
        if self.channel is None:
            raise AbstractionError("adapter not started")
        self._account(len(payload))
        # The Circuit payload is already segment-encoded; it travels as the
        # MadIO body, and the (empty) header rides the combined express
        # segment, so no extra per-segment cost is paid.
        return self.channel.send(dst_rank, b"", payload, extra_cost=cost)

    def _on_message(self, src_rank: int, header: bytes, body: bytes, delivery: Delivery) -> None:
        delivery.traverse(f"circuit-adapter:{self.name}")
        self.circuit._deliver(src_rank, body, delivery)


# ---------------------------------------------------------------------------
# Cross-paradigm adapters: Circuit over byte streams
# ---------------------------------------------------------------------------

_FRAME = struct.Struct("!II")  # src_rank, payload length
_HELLO = struct.Struct("!4sI")  # magic, src_rank
_HELLO_MAGIC = b"CIRC"


class _StreamPeer:
    """Receive-side reassembly state for one incoming byte stream."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.src_rank: Optional[int] = None

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Append stream bytes; return the complete messages extracted."""
        self.buffer += data
        out: List[Tuple[int, bytes]] = []
        while True:
            if self.src_rank is None:
                if len(self.buffer) < _HELLO.size:
                    return out
                magic, rank = _HELLO.unpack_from(self.buffer, 0)
                if magic != _HELLO_MAGIC:
                    raise AbstractionError("bad circuit stream hello")
                self.src_rank = rank
                del self.buffer[: _HELLO.size]
                continue
            if len(self.buffer) < _FRAME.size:
                return out
            src_rank, length = _FRAME.unpack_from(self.buffer, 0)
            if len(self.buffer) < _FRAME.size + length:
                return out
            payload = bytes(self.buffer[_FRAME.size : _FRAME.size + length])
            del self.buffer[: _FRAME.size + length]
            out.append((src_rank, payload))


class StreamMeshCircuitAdapter(CircuitAdapter):
    """Common machinery for Circuit over connected byte streams.

    A lazily built mesh: the first message towards a rank opens a stream to
    that rank's circuit port; incoming streams are identified by a small
    hello record carrying the sender's rank.  Messages are length-prefixed.
    """

    name = "stream-mesh"

    def __init__(self, circuit: Circuit, route: RouteChoice):
        super().__init__(circuit, route)
        self._out_streams: Dict[int, object] = {}
        self._connecting: Dict[int, List[Tuple[bytes, Cost, SimEvent]]] = {}
        self._peers: Dict[int, _StreamPeer] = {}
        # per-destination cursor serializing framed writes: a later small
        # message with a cheaper send-side cost must never overtake an
        # earlier large one towards the same rank (message-level twin of
        # the MadVLink fix).
        self._next_write_at: Dict[int, float] = {}

    # subclass hooks ------------------------------------------------------------
    def _listen(self, port: int, on_incoming: Callable) -> None:
        raise NotImplementedError

    def _connect(self, dst_host: Host, port: int) -> SimEvent:
        raise NotImplementedError

    @staticmethod
    def _write(stream, data: bytes) -> SimEvent:
        return stream.write(data)

    @staticmethod
    def _watch(stream, fn: Callable) -> None:
        """Register the data-readable callback on a stream."""
        if hasattr(stream, "set_data_callback"):
            stream.set_data_callback(fn)
        else:
            stream.set_data_handler(fn)

    @staticmethod
    def _drain(stream) -> bytes:
        return stream.read_available()

    # lifecycle ---------------------------------------------------------------------
    def start(self) -> None:
        self._listen(self.circuit.port, self._on_incoming_stream)

    # send path ---------------------------------------------------------------------
    def send(self, dst_rank: int, payload: bytes, cost: Cost) -> SimEvent:
        cost.charge(CROSS_PARADIGM_FRAMING_OVERHEAD, "circuit.framing")
        self._account(len(payload))
        done = self.sim.event(name=f"circuit-stream-send({len(payload)}B)")
        stream = self._out_streams.get(dst_rank)
        if stream is not None:
            self._send_on(stream, dst_rank, payload, cost, done)
            return done
        pending = self._connecting.get(dst_rank)
        if pending is not None:
            pending.append((payload, cost, done))
            return done
        self._connecting[dst_rank] = [(payload, cost, done)]
        dst_host = self.circuit.host_of(dst_rank)
        attempt = self._connect(dst_host, self.circuit.port)

        def _connected(ev):
            queued = self._connecting.pop(dst_rank, [])
            if not ev.ok:
                for _, _, d in queued:
                    if not d.triggered:
                        d.fail(ev.value)
                return
            stream = ev.value
            self._out_streams[dst_rank] = stream
            self._watch(stream, lambda _s=None: self._on_stream_data(stream))
            hello = _HELLO.pack(_HELLO_MAGIC, self.circuit.rank)
            self._write(stream, hello)
            for p, c, d in queued:
                self._send_on(stream, dst_rank, p, c, d)

        attempt.add_callback(_connected)
        return done

    def _send_on(self, stream, dst_rank: int, payload: bytes, cost: Cost, done: SimEvent) -> None:
        frame = _FRAME.pack(self.circuit.rank, len(payload)) + payload
        # The framing cost delays the actual write, but writes towards one
        # destination stay serialized (same-time events are FIFO in the
        # engine).
        ready = max(self.sim.now + cost.seconds, self._next_write_at.get(dst_rank, 0.0))
        self._next_write_at[dst_rank] = ready
        self.sim.call_later(ready - self.sim.now, self._write_and_chain, stream, frame, done)

    def _write_and_chain(self, stream, frame: bytes, done: SimEvent) -> None:
        self._write(stream, frame).chain(done)

    # receive path ---------------------------------------------------------------------
    def _on_incoming_stream(self, stream, peer_host) -> None:
        self._watch(stream, lambda _s=None: self._on_stream_data(stream))
        # data may already be buffered
        self._on_stream_data(stream)

    def _on_stream_data(self, stream) -> None:
        data = self._drain(stream)
        if not data:
            return
        peer = self._peers.get(id(stream))
        if peer is None:
            peer = _StreamPeer()
            self._peers[id(stream)] = peer
        for src_rank, payload in peer.feed(data):
            rx = SoftDelivery(self.sim)
            rx.traverse(f"circuit-adapter:{self.name}")
            rx.cost.charge(CROSS_PARADIGM_FRAMING_OVERHEAD, "circuit.framing")
            self.circuit._deliver(src_rank, payload, rx)
        # Reuse the reverse direction of an incoming stream when we have no
        # outgoing stream yet (avoids building two sockets per pair).  The
        # peer's parser for that direction has not seen a hello yet, so send
        # ours before any framed message travels back.
        if peer.src_rank is not None and peer.src_rank not in self._out_streams:
            self._out_streams[peer.src_rank] = stream
            self._write(stream, _HELLO.pack(_HELLO_MAGIC, self.circuit.rank))


class SysIOCircuitAdapter(StreamMeshCircuitAdapter):
    """Circuit over SysIO arbitrated sockets (cross-paradigm, LAN/WAN)."""

    name = "sysio"

    #: own SysIO port range: a mixed group (some legs on this adapter, some
    #: on VLink-based adapters) must not collide with the VLink manager's
    #: listener for the same circuit port — the VLink port namespace *is*
    #: the raw SysIO namespace, and the method drivers' offsets stay below
    #: this one.
    PORT_OFFSET = 200000

    def __init__(self, circuit: Circuit, route: RouteChoice, sysio: Optional[SysIO] = None):
        super().__init__(circuit, route)
        self.sysio = sysio or self.host.require_service("sysio")
        self.network = route.network

    def _listen(self, port: int, on_incoming: Callable) -> None:
        self.sysio.listen(
            port + self.PORT_OFFSET, lambda sock: on_incoming(sock, sock.conn.peer_host)
        )

    def _connect(self, dst_host: Host, port: int) -> SimEvent:
        return self.sysio.connect(dst_host, port + self.PORT_OFFSET, network=self.network)


class VLinkCircuitAdapter(StreamMeshCircuitAdapter):
    """Circuit over VLink — gives the parallel interface access to the
    alternate VLink methods (parallel streams, AdOC, VRP) on WAN links."""

    name = "vlink"

    def __init__(
        self,
        circuit: Circuit,
        route: RouteChoice,
        vlink_manager: Optional[VLinkManager] = None,
        method: Optional[str] = None,
    ):
        super().__init__(circuit, route)
        self.vlink_manager = vlink_manager or self.host.require_service("vlink")
        # route.method may be "vlink:parallel_streams" — extract the VLink method.
        if method is None and route.method.startswith("vlink:"):
            method = route.method.split(":", 1)[1]
        self.method = method

    def _listen(self, port: int, on_incoming: Callable) -> None:
        listener = self.vlink_manager.listen(port)
        listener.set_accept_callback(lambda link: on_incoming(link, None))

    def _connect(self, dst_host: Host, port: int) -> SimEvent:
        choice = self._choice_for(dst_host)
        route = choice.via if choice is not None else None
        params = dict(choice.params) if choice is not None and choice.params else None
        return self.vlink_manager.connect(
            dst_host, port, method=self.method, route=route, params=params
        )

    def _choice_for(self, dst_host: Host) -> Optional[RouteChoice]:
        """The circuit's route decision towards ``dst_host`` (this adapter
        instance is shared by every rank using the same method, so the
        per-destination pinning lives on the circuit, not the adapter)."""
        try:
            rank = self.circuit.group.index_of(dst_host)
        except ValueError:
            return None
        return self.circuit._routes_by_rank.get(rank)

    @staticmethod
    def _watch(stream, fn: Callable) -> None:
        if isinstance(stream, VLink):
            stream.set_data_handler(fn)
        else:
            stream.set_data_callback(fn)


class LoopbackCircuitAdapter(CircuitAdapter):
    """Circuit messages between two endpoints hosted on the same node."""

    name = "loopback"

    def __init__(self, circuit: Circuit, route: RouteChoice, per_message_overhead: float = 0.4e-6):
        super().__init__(circuit, route)
        self.per_message_overhead = per_message_overhead

    def send(self, dst_rank: int, payload: bytes, cost: Cost) -> SimEvent:
        if self.circuit.host_of(dst_rank) is not self.host:
            raise AbstractionError("loopback circuit adapter only reaches the local host")
        self._account(len(payload))
        rx = SoftDelivery(self.sim)
        rx.cost.merge(cost)
        rx.cost.charge(self.per_message_overhead, "loopback.msg")
        rx.cost.charge_copy(len(payload), self.host.cpu.memcpy_bandwidth, "loopback.copy")
        rx.traverse("circuit-adapter:loopback")
        src_rank = self.circuit.rank
        self.sim.call_later(
            max(0.0, rx.ready_time() - self.sim.now) * 0.0,  # deliver through _deliver's own delay
            self.circuit._deliver,
            src_rank,
            payload,
            rx,
        )
        done = self.sim.event(name="circuit-loopback-send")
        done.succeed(len(payload), delay=rx.cost.seconds)
        return done
