"""Adaptive VLinks: live connections that survive topology changes.

The abstraction layer selects the best adapter *at connect time*; once the
monitoring subsystem (:mod:`repro.monitoring`) started mutating the topology
knowledge base at runtime, that decision can go stale while the connection
is still open — the WAN under a stream degrades into a lossy WAN, or dies
entirely while a gateway route would still work.  An *adaptive* VLink keeps
the five-primitive VLink surface but decouples the session from the rail
that carries it:

* every byte of each direction has an absolute **stream offset**; payload
  travels in small ``(offset, length)`` frames and the receiver delivers
  strictly by contiguous offset, acknowledging what it has delivered;
* the sender keeps unacknowledged bytes buffered, so when the
  :class:`~repro.abstraction.vlink.VLinkManager` re-runs selection after a
  topology change and the best route differs, the session **migrates**: a
  new rail is opened (through the normal selector/relay machinery, so it
  may ride a different method driver or a gateway chain), a small resume
  handshake exchanges the delivered offsets of both directions, and each
  side retransmits exactly the bytes the other has not seen;
* duplicate suppression by offset makes the scheme idempotent: nothing is
  lost and nothing is reordered, whatever was in flight when the old rail
  disappeared.

Only drivers that never surrender bytes may carry a rail (``reliable_only``
selection): a VRP driver with non-zero tolerance would hole the framed
stream.  Gateways auto-register VRP at zero tolerance for the same reason.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.buffers import ByteRing
from repro.simnet.host import Host
from repro.abstraction.common import AbstractionError
from repro.abstraction.drivers import StreamBuffer
from repro.abstraction.routing import Route, RouteChoice
from repro.abstraction.vlink import VLink, VLinkManager, VLinkOperation, VLinkState


#: session handshake, client -> server on every new rail:
#: magic, session id, kind (new/resume), bytes delivered of the
#: server->client stream at the client.
_HELLO = struct.Struct("!4sQBQ")
_HELLO_MAGIC = b"ADSN"
SESSION_NEW = 0
SESSION_RESUME = 1

#: handshake reply, server -> client: magic, status, bytes delivered of the
#: client->server stream at the server.
_REPLY = struct.Struct("!4sBQ")
_REPLY_MAGIC = b"ADSA"
_STATUS_OK = 1
_STATUS_UNKNOWN = 0

#: rail frame header: type, stream offset, payload length.
_FRAME = struct.Struct("!BQI")
_T_DATA = 1
_T_ACK = 2
_T_CLOSE = 3

#: virtual seconds before an unfinished migration attempt is abandoned.  A
#: connect towards a link that died *after* selection blackholes forever
#: (SYNs vanish); the timeout unblocks the session so the next topology
#: verdict can route around the failure.
MIGRATION_TIMEOUT = 0.5

#: virtual seconds before a dead-rail session retries migration after a
#: failed attempt.  Must be non-zero: a synchronous connect failure (e.g.
#: the route's gateway has no relay) would otherwise re-enter migrate()
#: in the same-timestamp event batch forever, hanging the simulator.
MIGRATION_RETRY_DELAY = MIGRATION_TIMEOUT / 8


def route_signature(route: "Optional[Route | RouteChoice]") -> Optional[Tuple]:
    """A comparable fingerprint of a route decision (method/network/host per
    hop); two rails are equivalent iff their signatures match."""
    if route is None:
        return None
    hops = route.hops if isinstance(route, Route) else [route]
    return tuple(
        (
            hop.method,
            hop.network.name if hop.network is not None else None,
            hop.dst.name if hop.dst is not None else None,
        )
        for hop in hops
    )


class _FrameParser:
    """Per-rail reassembly of ``(type, offset, payload)`` frames.

    Incoming chunks are aliased into a :class:`ByteRing`; headers are peeked
    without assembling payloads, and each payload byte is sliced out exactly
    once.
    """

    def __init__(self) -> None:
        self.buffer = ByteRing()

    def feed(self, data: bytes) -> List[Tuple[int, int, bytes]]:
        ring = self.buffer
        ring.append(data)
        out: List[Tuple[int, int, bytes]] = []
        header_size = _FRAME.size
        while len(ring) >= header_size:
            kind, offset, length = _FRAME.unpack(ring.peek(header_size))
            if len(ring) < header_size + length:
                break
            ring.skip(header_size)
            out.append((kind, offset, ring.take(length)))
        return out


class AdaptiveVLink:
    """One end of a migratable, reliable, ordered byte-stream session.

    Presents the VLink surface (``write``/``read``/``close``, non-blocking
    helpers, data handler); a ``write`` operation completes when the peer
    has *delivered* the bytes (cumulative ack), which is what makes them
    safe to drop from the retransmission buffer.
    """

    def __init__(
        self,
        manager: VLinkManager,
        session_id: int,
        dst_host: Optional[Host],
        port: int,
        role: str,
    ):
        self.manager = manager
        self.sim = manager.sim
        self.session_id = session_id
        self.dst_host = dst_host
        self.port = port
        self.role = role  # "client" originates rails; "server" accepts them
        self.listener: "Optional[AdaptiveListener]" = None  # server side only
        #: optional route source consulted for every rail (initial connect
        #: and each migration): adaptive *circuit* legs pass the selector's
        #: circuit-hop pinning here, so their rails follow circuit policy
        #: instead of the plain VLink table.  Returning ``None`` falls back
        #: to the manager's own selection.
        self.route_provider: Optional[Callable[[], Optional[Route]]] = None
        self.state = VLinkState.CONNECTING
        self.rail: Optional[VLink] = None
        self.rail_signature: Optional[Tuple] = None
        self._parser: Optional[_FrameParser] = None
        self.buffer = StreamBuffer(self.sim)  # inbound, app-visible
        # outbound bookkeeping (absolute stream offsets)
        self.out_offset = 0  # bytes accepted from the application
        self.sent_offset = 0  # bytes pushed onto the current rail
        self.peer_acked = 0  # cumulative ack from the peer
        self.in_delivered = 0  # bytes of the inbound stream delivered
        self._out_buffer: List[Tuple[int, bytes]] = []  # unacked chunks
        self._write_waiters: List[Tuple[int, VLinkOperation]] = []
        self._stash: Dict[int, bytes] = {}  # defensive out-of-order hold
        self.migrations = 0
        #: when the last successful migration attached its rail; the
        #: manager's re-selection enforces a minimum dwell from this point
        #: before a purely preference-driven (signature-change) migration,
        #: so measured-metric noise cannot flap the route (dead rails and
        #: non-viable routes bypass the dwell).
        self.last_migration_at: Optional[float] = None
        self._dwell_recheck = False
        self.last_migration_error: Optional[BaseException] = None
        self._migrating = False
        self._remigrate = False
        #: the current rail died underneath us (close propagated from the
        #: transport).  While True, re-selection must migrate even when the
        #: recomputed route's signature equals the dead rail's — a fresh
        #: rail along the same route is still the fix.
        self._rail_dead = False
        self._attempt = 0  # epoch guarding stale migration completions
        self._migration_timer = None  # cancellable TimerHandle of the attempt
        #: True when the peer closed while promising bytes we never received
        #: (only possible when the carrying wire died with data in flight).
        self.truncated = False
        self.bytes_written = 0
        self.bytes_read = 0

    # -- VLink-compatible primitives -------------------------------------------
    def write(self, data: bytes) -> VLinkOperation:
        """Post a write; completes once the peer has delivered the bytes."""
        if self.state is VLinkState.CLOSED:
            raise AbstractionError("write() on a closed adaptive VLink")
        if type(data) is not bytes:
            data = bytes(data)  # the retransmission buffer must own the bytes
        op = VLinkOperation(self.sim, "write", None)
        if not data:
            op.succeed(0)
            return op
        start = self.out_offset
        self.out_offset += len(data)
        self.bytes_written += len(data)
        self._out_buffer.append((start, data))
        self._write_waiters.append((self.out_offset, op))
        self._flush()
        return op

    def read(self, nbytes: int, exact: bool = True) -> VLinkOperation:
        op = VLinkOperation(self.sim, "read", None)
        inner = self.buffer.recv_exact(nbytes) if exact else self.buffer.recv(nbytes)

        def _done(ev):
            if op.triggered:
                return
            if ev.ok:
                self.bytes_read += len(ev.value)
                op.succeed(ev.value)
            else:
                op.fail(ev.value)

        inner.add_callback(_done)
        return op

    def close(self) -> VLinkOperation:
        op = VLinkOperation(self.sim, "close", None)
        if self.state is VLinkState.CLOSED:
            op.succeed(None)
            return op
        self.state = VLinkState.CLOSED
        self._attempt += 1  # a migration completing after close is stale
        self._cancel_migration_timer()
        rail = self.rail
        if rail is not None and rail.state is VLinkState.ESTABLISHED:
            try:
                # last chance for buffered bytes: push them onto whatever
                # rail is still standing (a migration in flight no longer
                # matters — this session will not resume), then notify.
                self._migrating = False
                self._flush()
                # the transport close must wait for the CLOSE frame to reach
                # the peer (closing a TCP rail aborts unpumped sends); a dead
                # wire is covered by the timeout fallback.
                notify = rail.write(_FRAME.pack(_T_CLOSE, self.out_offset, 0))
                guard = self.sim.call_later(MIGRATION_TIMEOUT, self._close_rail, rail)
                notify.add_callback(
                    lambda _ev: (guard.cancel(), self._close_rail(rail))
                )
            except Exception:
                self._close_rail(rail)
        else:
            self._fail_pending_writes("adaptive VLink closed")
        self._forget()
        self.buffer.close()
        op.succeed(None)
        return op

    def _close_rail(self, rail: VLink) -> None:
        if rail.state is not VLinkState.CLOSED:
            rail.close()
        # acks can no longer arrive: whatever the peer did not confirm by
        # now will never complete — writers must not hang forever.
        self._fail_pending_writes("adaptive VLink closed")

    def _fail_pending_writes(self, reason: str) -> None:
        waiters, self._write_waiters = self._write_waiters, []
        for _end, op in waiters:
            if not op.triggered:
                op.fail(ConnectionError(reason))

    # -- non-blocking helpers ----------------------------------------------------
    def available(self) -> int:
        return self.buffer.available()

    def read_available(self, limit: Optional[int] = None) -> bytes:
        data = self.buffer.read_available(limit)
        self.bytes_read += len(data)
        return data

    def set_data_handler(self, fn: Optional[Callable[["AdaptiveVLink"], None]]) -> None:
        if fn is None:
            self.buffer.set_data_callback(None)
        else:
            self.buffer.set_data_callback(lambda: fn(self))

    @property
    def peer_name(self) -> str:
        if self.dst_host is not None:
            return self.dst_host.name
        return self.rail.peer_name if self.rail is not None else "?"

    @property
    def driver_name(self) -> str:
        return self.rail.driver_name if self.rail is not None else "?"

    @property
    def route(self):
        return self.rail.route if self.rail is not None else None

    @property
    def unacked(self) -> int:
        """Bytes written but not yet delivered at the peer."""
        return self.out_offset - self.peer_acked

    # -- rail management -----------------------------------------------------------
    def _attach_rail(self, rail: VLink, peer_delivered: int, initial: bytes = b"") -> None:
        """Adopt ``rail`` as the carrier; resend everything past
        ``peer_delivered`` (the bytes the peer reported as delivered)."""
        old = self.rail
        if old is not None and old is not rail:
            old.set_close_handler(None)
            old.set_data_handler(lambda link: link.read_available())  # drain strays
            if old.state is not VLinkState.CLOSED:
                old.close()
        self.rail = rail
        self.rail_signature = route_signature(rail.route)
        self._rail_dead = False
        self._parser = _FrameParser()
        self._on_ack(peer_delivered)
        self.sent_offset = peer_delivered
        rail.set_data_handler(self._on_rail_data)
        rail.set_close_handler(self._on_rail_closed)
        if initial:
            self._on_frames(self._parser.feed(initial))
        self._flush()

    def _flush(self) -> None:
        """Push every not-yet-sent byte onto the live rail, in offset order."""
        rail = self.rail
        if rail is None or self._migrating or rail.state is not VLinkState.ESTABLISHED:
            return
        for offset, chunk in self._out_buffer:
            end = offset + len(chunk)
            if end <= self.sent_offset:
                continue
            if offset < self.sent_offset:
                chunk = chunk[self.sent_offset - offset :]
                offset = self.sent_offset
            try:
                rail.write(_FRAME.pack(_T_DATA, offset, len(chunk)) + chunk)
            except Exception:
                return  # rail died mid-flush; bytes stay buffered for resume
            self.sent_offset = offset + len(chunk)

    def _send_ack(self) -> None:
        rail = self.rail
        if rail is None or rail.state is not VLinkState.ESTABLISHED:
            return
        try:
            rail.write(_FRAME.pack(_T_ACK, self.in_delivered, 0))
        except Exception:
            pass

    # -- receive path ----------------------------------------------------------------
    def _on_rail_data(self, rail: VLink) -> None:
        if rail is not self.rail or self._parser is None:
            rail.read_available()
            return
        data = rail.read_available()
        if data:
            self._on_frames(self._parser.feed(data))

    def _on_frames(self, frames: List[Tuple[int, int, bytes]]) -> None:
        got_data = False
        for kind, offset, payload in frames:
            if kind == _T_DATA:
                got_data = self._on_data(offset, payload) or got_data
            elif kind == _T_ACK:
                self._on_ack(offset)
            elif kind == _T_CLOSE:
                self._on_peer_close(offset)
                return
        if got_data:
            self._send_ack()

    def _on_data(self, offset: int, payload: bytes) -> bool:
        end = offset + len(payload)
        if end <= self.in_delivered:
            return False  # duplicate (retransmission overlap): drop
        if offset > self.in_delivered:
            self._stash[offset] = payload  # defensive; rails are in-order
            return False
        fresh = payload[self.in_delivered - offset :]
        self.in_delivered += len(fresh)
        self.buffer.append(fresh)
        while self._stash:
            nxt = self._stash.pop(self.in_delivered, None)
            if nxt is None:
                break
            self.in_delivered += len(nxt)
            self.buffer.append(nxt)
        return True

    def _on_ack(self, acked: int) -> None:
        if acked <= self.peer_acked:
            return
        self.peer_acked = acked
        self._out_buffer = [
            (offset, chunk)
            for offset, chunk in self._out_buffer
            if offset + len(chunk) > acked
        ]
        while self._write_waiters and self._write_waiters[0][0] <= acked:
            end, op = self._write_waiters.pop(0)
            if not op.triggered:
                op.succeed(end)

    def _on_peer_close(self, final_offset: Optional[int] = None) -> None:
        if self.state is VLinkState.CLOSED:
            return
        self.state = VLinkState.CLOSED
        self._attempt += 1  # a migration completing after close is stale
        self._cancel_migration_timer()
        if final_offset is not None and final_offset > self.in_delivered:
            # the peer promised bytes that never reached us: the rails they
            # travelled on are gone.  Flag it — this is not a clean EOF.
            self.truncated = True
        rail = self.rail
        if rail is not None and rail.state is not VLinkState.CLOSED:
            rail.close()
        self._fail_pending_writes("peer closed the adaptive VLink")
        self._forget()
        self.buffer.close()

    def _forget(self) -> None:
        """Drop this session from the manager and (server side) listener."""
        self.manager._unregister_adaptive(self)
        listener = getattr(self, "listener", None)
        if listener is not None:
            listener.sessions.pop(self.session_id, None)

    def _on_rail_closed(self, rail: VLink) -> None:
        """The carrier died under us (relay teardown, peer transport loss)."""
        if rail is not self.rail or self.state is not VLinkState.ESTABLISHED:
            return
        self._rail_dead = True
        if self.role == "client":
            # re-open along whatever the selector currently thinks is best
            # (possibly the same signature: a fresh rail is still the fix).
            self.migrate(reason="rail closed")
        # server role: keep the session; the client will resume on a new rail.

    # -- migration ---------------------------------------------------------------------
    def migrate(self, reason: str = "") -> None:
        """Open a new rail via current selection and resume the session on it."""
        if self.state is not VLinkState.ESTABLISHED or self.role != "client":
            return
        if self._migrating:
            self._remigrate = True
            return
        if self.manager.gateway_provisioner is not None:
            # the replacement route may relay through gateways that are not
            # booted (or lack the WAN method drivers) yet
            self.manager.gateway_provisioner(self.dst_host)
        self._migrating = True
        self._attempt += 1
        attempt_id = self._attempt
        attempt = self.manager.connect(
            self.dst_host, self.port, reliable_only=True, route=self._provided_route()
        )
        attempt.add_callback(lambda ev: self._on_migration_rail(ev, attempt_id))
        self._migration_timer = self.sim.call_later(
            MIGRATION_TIMEOUT, self._migration_timeout, attempt_id
        )

    def _discard_stale_rail(self, rail: VLink) -> None:
        """Drop a rail from a superseded migration attempt — carefully.

        The rail's RESUME hello may already have reached the listener, in
        which case the *server* adopted it as the session carrier and
        detached whatever rail this side still considers current (split
        brain: our writes are drained and dropped over there).  Closing the
        late rail alone would deadlock the session, so treat the current
        rail as suspect and reconverge through a fresh resume handshake —
        idempotent by construction (cumulative acks, duplicate suppression
        by offset).
        """
        if rail.state is not VLinkState.CLOSED:
            rail.close()
        if self.state is VLinkState.ESTABLISHED and self.role == "client":
            self._rail_dead = True
            self.sim.call_later(0.0, self._reroute_self)

    def _provided_route(self) -> Optional[Route]:
        """The externally pinned route for the next rail, if any."""
        if self.route_provider is None:
            return None
        try:
            return self.route_provider()
        except AbstractionError:
            return None

    def _cancel_migration_timer(self) -> None:
        timer, self._migration_timer = self._migration_timer, None
        if timer is not None:
            timer.cancel()

    def _migration_timeout(self, attempt_id: int) -> None:
        self._migration_timer = None
        if attempt_id != self._attempt or not self._migrating:
            return
        self._attempt += 1  # a late completion of this attempt is now stale
        # The attempt's RESUME hello may have reached the listener even
        # though the reply never made it back (it died with a gateway): the
        # server may already carry the session on the abandoned rail.  The
        # old rail is therefore suspect — reconverge through a fresh resume
        # (idempotent) instead of assuming it still reaches the peer.
        # _migration_failed schedules the re-evaluation.
        self._rail_dead = True
        self._migration_failed(TimeoutError("migration attempt timed out"))

    def _on_migration_rail(self, ev, attempt_id: int) -> None:
        if attempt_id != self._attempt:
            if ev.ok:
                self._discard_stale_rail(ev.value)
            return
        if not ev.ok:
            self._migration_failed(ev.value)
            return
        rail: VLink = ev.value
        hello = _HELLO.pack(_HELLO_MAGIC, self.session_id, SESSION_RESUME, self.in_delivered)
        try:
            rail.write(hello)
        except Exception as exc:  # rail already closed under us
            self._migration_failed(ConnectionError(str(exc)))
            return
        rail.read(_REPLY.size).add_callback(
            lambda rev: self._on_resume_reply(rev, rail, attempt_id)
        )

    def _on_resume_reply(self, rev, rail: VLink, attempt_id: int) -> None:
        if attempt_id != self._attempt or self.state is not VLinkState.ESTABLISHED:
            self._discard_stale_rail(rail)
            return
        if not rev.ok:
            rail.close()
            self._migration_failed(rev.value)
            return
        magic, status, peer_delivered = _REPLY.unpack(rev.value)
        if magic != _REPLY_MAGIC or status != _STATUS_OK:
            rail.close()
            self._migration_failed(
                ConnectionRefusedError(
                    f"peer no longer knows adaptive session {self.session_id:#x}"
                )
            )
            return
        self._cancel_migration_timer()
        self._migrating = False
        self.migrations += 1
        self.last_migration_at = self.sim.now
        self.last_migration_error = None
        tele = self.manager.telemetry
        if tele is not None:
            tele.emit(
                "route.migrate",
                session=f"{self.session_id:#x}",
                peer=self.peer_name,
                migrations=self.migrations,
            )
        self._attach_rail(rail, peer_delivered)
        self._send_ack()
        if self._remigrate:
            self._remigrate = False
            self.sim.call_later(0.0, self._reroute_self)

    def _reroute_self(self) -> None:
        # delegate to the manager's route comparison so a migration queued
        # during a migration only happens if the route really changed again.
        self.manager._reroute_adaptive_links()

    def _migration_failed(self, exc: BaseException) -> None:
        self._cancel_migration_timer()
        self._migrating = False
        retry = self._remigrate or self._rail_dead
        self._remigrate = False
        self.last_migration_error = exc
        # With a live old rail the next topology change retries.  But when
        # the rail is already dead — or a re-migration was queued while this
        # attempt was in flight — nobody else will: re-evaluate soon (the
        # dead-rail check in the manager migrates even on an identical
        # route signature).  The delay is what keeps a synchronously
        # failing connect from hot-looping the same timestamp.
        if retry and self.state is VLinkState.ESTABLISHED:
            self.sim.call_later(MIGRATION_RETRY_DELAY, self._reroute_self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdaptiveVLink #{self.session_id:#x} {self.role} -> {self.peer_name} "
            f"state={self.state.value} migrations={self.migrations}>"
        )


class AdaptiveListener:
    """Server side of adaptive sessions on one port.

    Wraps a plain :class:`~repro.abstraction.vlink.VLinkListener`: every raw
    incoming VLink is handshaken first.  New sessions surface through
    ``accept``; resumed sessions are spliced into the existing
    :class:`AdaptiveVLink` without surfacing again.
    """

    def __init__(self, manager: VLinkManager, port: int):
        self.manager = manager
        self.sim = manager.sim
        self.port = port
        self.sessions: Dict[int, AdaptiveVLink] = {}
        self.resumed = 0
        self.rejected = 0
        self.closed = False
        self._accept_callback: Optional[Callable[[AdaptiveVLink], None]] = None
        self._ready: List[AdaptiveVLink] = []
        self._waiters: List[VLinkOperation] = []
        self._raw = manager.listen(port)
        self._raw.set_accept_callback(self._on_raw_link)

    # -- accept surface ---------------------------------------------------------
    def accept(self) -> VLinkOperation:
        op = VLinkOperation(self.sim, "accept")
        if self._ready:
            op.succeed(self._ready.pop(0))
        else:
            self._waiters.append(op)
        return op

    def set_accept_callback(self, fn: Callable[[AdaptiveVLink], None]) -> None:
        self._accept_callback = fn
        while self._ready:
            fn(self._ready.pop(0))

    def close(self) -> None:
        """Stop accepting: the port is released and — because driver-level
        listen callbacks stay installed — late incoming rails are refused
        explicitly (open sessions keep running until closed themselves)."""
        self.closed = True
        self._raw.close()

    # -- handshake ---------------------------------------------------------------
    def _on_raw_link(self, raw: VLink) -> None:
        if self.closed:
            self.rejected += 1
            raw.close()
            return
        hello = bytearray()
        handshaken = [False]

        def _on_data(link: VLink) -> None:
            if handshaken[0]:
                return
            hello.extend(link.read_available())
            if len(hello) < _HELLO.size:
                return
            handshaken[0] = True
            link.set_data_handler(None)
            magic, session_id, kind, client_delivered = _HELLO.unpack_from(hello, 0)
            extra = bytes(hello[_HELLO.size :])
            if magic != _HELLO_MAGIC:
                self.rejected += 1
                link.close()
                return
            self._handshaken(link, session_id, kind, client_delivered, extra)

        raw.set_data_handler(_on_data)
        _on_data(raw)

    def _handshaken(
        self, raw: VLink, session_id: int, kind: int, client_delivered: int, extra: bytes
    ) -> None:
        if kind == SESSION_RESUME:
            session = self.sessions.get(session_id)
            if session is None or session.state is VLinkState.CLOSED:
                self.rejected += 1
                raw.write(_REPLY.pack(_REPLY_MAGIC, _STATUS_UNKNOWN, 0))
                return
            raw.write(_REPLY.pack(_REPLY_MAGIC, _STATUS_OK, session.in_delivered))
            self.resumed += 1
            session._attach_rail(raw, client_delivered, initial=extra)
            return
        session = AdaptiveVLink(self.manager, session_id, None, self.port, role="server")
        session.listener = self
        self.sessions[session_id] = session
        raw.write(_REPLY.pack(_REPLY_MAGIC, _STATUS_OK, 0))
        session.state = VLinkState.ESTABLISHED
        session._attach_rail(raw, client_delivered, initial=extra)
        if self._waiters:
            self._waiters.pop(0).succeed(session)
        elif self._accept_callback is not None:
            self._accept_callback(session)
        else:
            self._ready.append(session)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AdaptiveListener :{self.port} sessions={len(self.sessions)}>"


def adaptive_connect(
    manager: VLinkManager,
    dst_host: Host,
    port: int,
    route_provider: Optional[Callable[[], Optional[Route]]] = None,
) -> VLinkOperation:
    """Client side: open an adaptive session (used by
    :meth:`VLinkManager.connect_adaptive`).  ``route_provider`` pins the
    rail route (initial and per-migration) — adaptive circuit legs use it
    to ride circuit-hop selection."""
    op = VLinkOperation(manager.sim, "connect")
    session_id = (zlib.crc32(manager.host.name.encode("utf-8")) << 32) | next(
        _session_counter(manager)
    )
    link = AdaptiveVLink(manager, session_id, dst_host, port, role="client")
    link.route_provider = route_provider
    attempt = manager.connect(dst_host, port, reliable_only=True, route=link._provided_route())
    pending_rail: List[VLink] = []

    def _handshake_timed_out():
        # the wire can die between rail establishment and the reply; the
        # caller must get a failure, not an eternally pending connect.
        if op.triggered:
            return
        op.fail(TimeoutError(f"adaptive handshake to {dst_host.name}:{port} timed out"))
        for rail in pending_rail:
            if rail.state is not VLinkState.CLOSED:
                rail.close()

    handshake_guard = manager.sim.call_later(MIGRATION_TIMEOUT, _handshake_timed_out)
    op.add_callback(lambda _ev: handshake_guard.cancel())

    def _rail_open(ev):
        if not ev.ok:
            if not op.triggered:
                op.fail(ev.value)
            return
        rail: VLink = ev.value
        if op.triggered:  # timed out while connecting
            rail.close()
            return
        pending_rail.append(rail)
        try:
            rail.write(_HELLO.pack(_HELLO_MAGIC, session_id, SESSION_NEW, 0))
        except Exception:  # the listener refused/closed the rail already
            if not op.triggered:
                op.fail(ConnectionRefusedError(f"no adaptive listener on port {port}"))
            return
        rail.read(_REPLY.size).add_callback(lambda rev: _replied(rev, rail))

    def _replied(rev, rail: VLink):
        if op.triggered:
            return
        if not rev.ok:
            op.fail(rev.value)
            return
        magic, status, _delivered = _REPLY.unpack(rev.value)
        if magic != _REPLY_MAGIC or status != _STATUS_OK:
            rail.close()
            op.fail(ConnectionRefusedError(f"no adaptive listener on port {port}"))
            return
        link.state = VLinkState.ESTABLISHED
        link._attach_rail(rail, 0)
        manager._register_adaptive(link)
        op.succeed(link)

    attempt.add_callback(_rail_open)
    return op


def _session_counter(manager: VLinkManager):
    counter = getattr(manager, "_adaptive_session_counter", None)
    if counter is None:
        import itertools

        counter = itertools.count(1)
        manager._adaptive_session_counter = counter
    return counter
