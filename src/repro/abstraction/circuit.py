"""Circuit: the parallel-paradigm abstract interface.

"The Circuit interface is designed for parallelism.  It manages
communications on a definite set of nodes called a group.  A group may be an
arbitrary set of nodes, eg. a cluster, a subset of a cluster, may span
across multiple clusters or even multiple sites.  Circuit allows
communications from every node to every other node through an interface
optimized for parallel runtimes: it uses incremental packing with explicit
semantics to allow on-the-fly packet reordering, like in Madeleine.  [...]
Circuit adapters have been implemented on top of MadIO, SysIO, loopback and
VLink (to use the alternate VLink adapters); a given instance of Circuit can
use different adapters for different links." (§4.2)

The incremental packing API reuses the Madeleine segment encoding
(:mod:`repro.madeleine.message`) so EXPRESS/CHEAPER semantics survive end to
end; per-destination adapters are chosen by the selector at circuit creation
time and can indeed differ per link (e.g. MadIO inside a cluster, SysIO or
parallel-streams VLink across the WAN).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.simnet.cost import Cost
from repro.simnet.engine import SimEvent
from repro.simnet.host import Host, HostGroup
from repro.madeleine.message import MadIncoming, MadMessage
from repro.abstraction.common import AbstractionError, CIRCUIT_LAYER_OVERHEAD, RxPath
from repro.abstraction.selector import RouteChoice, Selector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.abstraction.adapters import CircuitAdapter


CIRCUIT_SERVICE = "circuit"


def circuit_port(name: str) -> int:
    """Deterministic TCP/VLink port for a circuit name (cross-host stable)."""
    return 20000 + (zlib.crc32(name.encode("utf-8")) % 20000)


class CircuitMessage(MadMessage):
    """A message under incremental packing on a Circuit (same semantics as
    Madeleine packing: EXPRESS segments first, CHEAPER for bulk payload)."""


class CircuitIncoming(MadIncoming):
    """A received Circuit message being incrementally unpacked."""


class Circuit:
    """One host's endpoint in a named circuit over a group of hosts."""

    def __init__(self, manager: "CircuitManager", name: str, group: HostGroup):
        self.manager = manager
        self.host = manager.host
        self.sim = manager.sim
        self.name = name
        self.group = group
        #: the per-circuit adaptive bookkeeping surface
        #: (:class:`~repro.abstraction.adaptive_circuit.AdaptiveCircuitSession`)
        #: when the circuit was created with ``adaptive=True``; None otherwise.
        self.adaptive = None
        if not group.contains(self.host):
            raise AbstractionError(
                f"host {self.host.name!r} is not a member of group {group.name!r}"
            )
        self._adapters_by_rank: Dict[int, "CircuitAdapter"] = {}
        self._routes_by_rank: Dict[int, RouteChoice] = {}
        self._receive_callback: Optional[Callable[[int, CircuitIncoming, RxPath], None]] = None
        self._recv_queue: List[Tuple[int, CircuitIncoming]] = []
        self._recv_waiters: List[Tuple[Optional[int], SimEvent]] = []
        # per-source cursor serializing deliveries: a later small message's
        # cheaper receive-side cost must never let its callback fire before
        # an earlier large message from the same source (the Circuit-layer
        # member of the size-dependent-delay reordering family fixed for
        # MadVLink, AdOC/GSI and TCP segments in PRs 1-3).
        self._next_deliver_at: Dict[int, float] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- identity ----------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.group.index_of(self.host)

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def port(self) -> int:
        return circuit_port(self.name)

    def host_of(self, rank: int) -> Host:
        return self.group[rank]

    def adapter_for(self, dst_rank: int) -> "CircuitAdapter":
        try:
            return self._adapters_by_rank[dst_rank]
        except KeyError:
            raise AbstractionError(
                f"circuit {self.name!r} has no adapter towards rank {dst_rank}"
            ) from None

    def route_for(self, dst_rank: int) -> RouteChoice:
        return self._routes_by_rank[dst_rank]

    def routes(self) -> Dict[int, RouteChoice]:
        return dict(self._routes_by_rank)

    # -- send side ------------------------------------------------------------------
    def new_message(self, dst_rank: int) -> CircuitMessage:
        """Start incremental packing of a message towards ``dst_rank``."""
        if not (0 <= dst_rank < self.size):
            raise AbstractionError(f"rank {dst_rank} outside group of size {self.size}")
        return CircuitMessage(dst_rank, dst_name=self.group[dst_rank].name)

    def post(self, message: CircuitMessage, extra_cost: Optional[Cost] = None) -> SimEvent:
        """Send a packed message; the event fires at local send completion."""
        adapter = self.adapter_for(message.dst_rank)
        cost = Cost()
        if extra_cost is not None:
            cost.merge(extra_cost)
        cost.charge(CIRCUIT_LAYER_OVERHEAD, "circuit.layer")
        payload = message.finish()
        self.messages_sent += 1
        self.bytes_sent += message.payload_bytes
        return adapter.send(message.dst_rank, payload, cost)

    def send(self, dst_rank: int, *buffers: bytes, express_first: bool = True) -> SimEvent:
        """Convenience: pack ``buffers`` (first express, rest cheaper) and post."""
        msg = self.new_message(dst_rank)
        for idx, buf in enumerate(buffers):
            if idx == 0 and express_first:
                msg.pack_express(buf)
            else:
                msg.pack_cheaper(buf)
        return self.post(msg)

    # -- receive side -----------------------------------------------------------------
    def set_receive_callback(
        self, fn: Optional[Callable[[int, CircuitIncoming, RxPath], None]]
    ) -> None:
        """Install the single consumer callback ``fn(src_rank, incoming, rx)``.

        Parallel runtimes (the MPI middleware, the DSM) use this; when no
        callback is installed messages are queued for :meth:`recv`.
        """
        self._receive_callback = fn

    def recv(self, src_rank: Optional[int] = None) -> SimEvent:
        """Event completing with ``(src_rank, CircuitIncoming)``."""
        ev = self.sim.event(name=f"circuit-recv({self.name})")
        for idx, (rank, incoming) in enumerate(self._recv_queue):
            if src_rank is None or rank == src_rank:
                self._recv_queue.pop(idx)
                ev.succeed((rank, incoming))
                return ev
        self._recv_waiters.append((src_rank, ev))
        return ev

    def _deliver(self, src_rank: int, payload: bytes, rx: RxPath) -> None:
        """Called by adapters when a complete message has arrived."""
        rx.traverse(f"circuit:{self.name}")
        rx.cost.charge(CIRCUIT_LAYER_OVERHEAD, "circuit.layer")
        incoming = CircuitIncoming(src_rank, payload, src_name=self.group[src_rank].name)
        self.messages_received += 1
        self.bytes_received += incoming.payload_bytes
        ready = max(rx.ready_time(), self._next_deliver_at.get(src_rank, 0.0))
        self._next_deliver_at[src_rank] = ready
        delay = max(0.0, ready - self.sim.now)
        if self._receive_callback is not None:
            self.sim.call_later(delay, self._receive_callback, src_rank, incoming, rx)
            return
        self.sim.call_later(delay, self._enqueue, src_rank, incoming)

    def _enqueue(self, src_rank: int, incoming: CircuitIncoming) -> None:
        for idx, (want, ev) in enumerate(self._recv_waiters):
            if want is None or want == src_rank:
                self._recv_waiters.pop(idx)
                if not ev.triggered:
                    ev.succeed((src_rank, incoming))
                return
        self._recv_queue.append((src_rank, incoming))

    # -- wiring (done by the manager) ------------------------------------------------------
    def _set_link(self, dst_rank: int, adapter: "CircuitAdapter", route: RouteChoice) -> None:
        self._adapters_by_rank[dst_rank] = adapter
        self._routes_by_rank[dst_rank] = route

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Circuit {self.name!r} rank={self.rank}/{self.size}>"


class CircuitManager:
    """Per-host factory for circuits; holds adapter factories and the selector."""

    def __init__(self, host: Host, selector: Optional[Selector] = None):
        self.host = host
        self.sim = host.sim
        self.selector = selector
        self._factories: Dict[str, Callable[[Circuit, RouteChoice], "CircuitAdapter"]] = {}
        self._circuits: Dict[str, Circuit] = {}
        host.register_service(CIRCUIT_SERVICE, self, replace=True)

    # -- adapter registry -----------------------------------------------------------
    def register_adapter_factory(
        self, name: str, factory: Callable[[Circuit, RouteChoice], "CircuitAdapter"]
    ) -> None:
        self._factories[name] = factory

    def adapter_names(self) -> List[str]:
        """Registered adapter factories that are actually usable right now.

        ``vlink:<method>`` adapters are only available when the corresponding
        VLink method driver has been registered on this host (the framework
        registers the factories eagerly, but the WAN-method drivers are
        optional add-ons).
        """
        names = []
        vlink_manager = self.host.get_service("vlink")
        for name in sorted(self._factories):
            if name.startswith("vlink:") and vlink_manager is not None:
                method = name.split(":", 1)[1]
                if method not in vlink_manager.driver_names():
                    continue
            names.append(name)
        return names

    # -- circuit creation -------------------------------------------------------------
    def create(
        self,
        name: str,
        group: HostGroup,
        *,
        methods: Optional[Dict[int, str]] = None,
        adaptive: bool = False,
    ) -> Circuit:
        """Create the local endpoint of circuit ``name`` over ``group``.

        ``methods`` optionally forces the adapter per destination rank
        (used by ablation benchmarks); otherwise the selector decides.
        With ``adaptive=True`` every remote leg rides an adaptive session
        (:mod:`repro.abstraction.adaptive_circuit`): the leg's rail follows
        the selector's circuit-hop pinning and migrates — alone, preserving
        per-source byte order — when its hop degrades or its gateway dies.
        Every member of the group must agree on the flag (an adaptive
        endpoint handshakes sessions, a static one expects raw streams).
        """
        if name in self._circuits:
            return self._circuits[name]
        if adaptive and methods:
            # forcing a concrete adapter per rank and asking for migratable
            # sessions contradict each other; failing beats silently
            # measuring the wrong transport in an ablation run.
            raise AbstractionError(
                "circuit(adaptive=True) cannot honour a forced `methods` map; "
                "drop one of the two"
            )
        circuit = Circuit(self, name, group)
        adapters_by_method: Dict[str, "CircuitAdapter"] = {}
        for dst_rank, dst_host in enumerate(group):
            if dst_host is self.host:
                continue
            route = self._route(circuit, dst_host, methods, dst_rank)
            factory_name = route.method
            if adaptive and route.method not in ("loopback",):
                # local legs cannot lose their rail; everything else rides
                # a migratable session.
                factory_name = "adaptive"
            adapter = adapters_by_method.get(factory_name)
            if adapter is None:
                factory = self._factories.get(factory_name)
                if factory is None:
                    raise AbstractionError(
                        f"no Circuit adapter factory {factory_name!r} on host {self.host.name}; "
                        f"registered: {self.adapter_names()}"
                    )
                adapter = factory(circuit, route)
                adapter.start()
                adapters_by_method[factory_name] = adapter
            circuit._set_link(dst_rank, adapter, route)
        if adaptive:
            from repro.abstraction.adaptive_circuit import (
                AdaptiveCircuitAdapter,
                AdaptiveCircuitSession,
            )

            adapter = adapters_by_method.get("adaptive")
            if isinstance(adapter, AdaptiveCircuitAdapter):
                circuit.adaptive = AdaptiveCircuitSession(circuit, adapter)
        self._circuits[name] = circuit
        return circuit

    def _route(
        self,
        circuit: Circuit,
        dst_host: Host,
        methods: Optional[Dict[int, str]],
        dst_rank: int,
    ) -> RouteChoice:
        from repro.abstraction.topology import LinkClass

        if methods is not None and dst_rank in methods:
            forced = methods[dst_rank]
            network = None
            if self.selector is not None:
                profile = self.selector.topology.link_profile(self.host, dst_host)
                network = Selector._network_for(forced, profile)
                link_class = profile.link_class
            else:
                link_class = LinkClass.NONE
            return RouteChoice(
                method=forced, network=network, link_class=link_class, reason="forced"
            )
        if self.selector is not None:
            return self.selector.choose_circuit_route(self.host, dst_host, self.adapter_names())
        # No selector: prefer madio when registered, else sysio.
        for fallback in ("madio", "sysio", "loopback"):
            if fallback in self._factories:
                return RouteChoice(
                    method=fallback, network=None, link_class=LinkClass.NONE, reason="fallback"
                )
        raise AbstractionError(f"no Circuit adapters registered on host {self.host.name}")

    def circuit(self, name: str) -> Circuit:
        return self._circuits[name]

    def circuits(self) -> List[Circuit]:
        return list(self._circuits.values())
