"""The multi-hop routing subsystem of the abstraction layer.

The paper's headline scenario is transparently bridging heterogeneous
deployments — "clusters on SANs reached across a WAN" (§2.1).  Real grid
topologies have *front-end gateway* nodes: compute nodes sit on a SAN and a
private LAN, and only the gateway also holds a WAN interface.  A direct
common network between two arbitrary hosts therefore often does not exist,
yet a path through one or more gateways does.

This module turns the :class:`~repro.abstraction.topology.TopologyKB` into a
weighted host–network graph and runs shortest-path search over it:

* :class:`RoutingEngine` — Dijkstra over hosts, edge weights derived from the
  first-order transfer-time model of :mod:`repro.simnet.cost` (latency plus
  a reference payload over the wire bandwidth, a loss penalty, and a
  store-and-forward penalty per intermediate node so direct links always win
  ties).  Host paths and adjacency are memoized in a generation-stamped
  cache invalidated whenever the topology changes.
* :class:`RouteChoice` — the selector's decision for one hop (historically
  the whole decision; it now also records which hosts the hop joins).
* :class:`Route` — an ordered sequence of :class:`RouteChoice` hops from a
  source to a destination; single-hop routes are exactly what the seed
  selector produced for directly connected pairs.
* :class:`GatewayRelay` — the forwarding service booted on every
  :class:`~repro.core.framework.PadicoNode`: it accepts VLink streams on a
  reserved port, reads a small relay handshake naming the final destination,
  opens the next leg through its own VLink manager (which may recursively
  relay again) and then store-and-forwards bytes between the two rails.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.simnet.buffers import ByteRing
from repro.simnet.cost import MILLISECOND, latency_bandwidth_time
from repro.simnet.host import Host
from repro.simnet.network import Network
from repro.abstraction.common import AbstractionError, GATEWAY_FORWARD_OVERHEAD
from repro.abstraction.topology import LinkClass, TopologyKB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.abstraction.vlink import VLink, VLinkManager


#: reserved VLink port every booted node's GatewayRelay listens on.
GATEWAY_RELAY_PORT = 19909

#: relay handshakes start with this TTL; each relay decrements it, so a
#: routing loop (or an absurdly long gateway chain) fails cleanly.
MAX_RELAY_TTL = 8

#: reference payload for edge weights: big enough that bandwidth matters,
#: small enough that latency still separates a SAN from a LAN.
ROUTE_WEIGHT_REF_BYTES = 64 * 1024

#: extra weight per intermediate node: a gateway costs store-and-forward
#: work, and ties between a direct link and a two-hop path must go direct.
ROUTE_RELAY_PENALTY = 1.0 * MILLISECOND


@dataclass
class RouteChoice:
    """The selector's decision for one hop of a route."""

    #: adapter / driver name to use ("madio", "sysio", "loopback",
    #: "parallel_streams", "adoc", "vrp", ...)
    method: str
    #: network the adapter should run on (None for loopback).
    network: Optional[Network]
    #: link class that drove the decision.
    link_class: LinkClass
    #: True when the chosen adapter translates between paradigms.
    cross_paradigm: bool = False
    #: Human-readable explanation (surfaced by the framework status report).
    reason: str = ""
    #: hosts this hop joins (None on legacy single-hop construction sites).
    src: Optional[Host] = None
    dst: Optional[Host] = None
    #: monitoring-driven method parameters (e.g. ``streams`` for parallel
    #: streams, ``tolerance`` for VRP), derived from the measured metrics of
    #: the hop's network by :meth:`Selector.derive_method_params`.
    params: Dict[str, float] = field(default_factory=dict)
    #: pinned multi-hop continuation for routed Circuit legs: the concrete
    #: per-hop method decisions the relay chain should honour instead of
    #: re-selecting autonomously.
    via: Optional["Route"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        x = " cross" if self.cross_paradigm else ""
        p = f" {self.params}" if self.params else ""
        return f"<RouteChoice {self.method} on {self.network.name if self.network else 'local'}{x}{p}>"


@dataclass
class Hop:
    """One edge of a host path: ``src`` reaches ``dst`` over ``network``."""

    src: Host
    dst: Host
    network: Network
    weight: float

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Hop {self.src.name}->{self.dst.name} via {self.network.name}>"


@dataclass
class Route:
    """An end-to-end path: an ordered sequence of per-hop choices."""

    src: Host
    dst: Host
    hops: List[RouteChoice] = field(default_factory=list)

    @property
    def is_direct(self) -> bool:
        return len(self.hops) <= 1

    @property
    def first(self) -> RouteChoice:
        return self.hops[0]

    def gateways(self) -> List[Host]:
        """The intermediate hosts traffic is relayed through."""
        return [hop.dst for hop in self.hops[:-1]]

    def describe(self) -> str:
        parts = [self.src.name]
        for hop in self.hops:
            net = hop.network.name if hop.network is not None else "local"
            parts.append(f"-[{hop.method}/{net}]-> {hop.dst.name if hop.dst else '?'}")
        return " ".join(parts)

    def __len__(self) -> int:
        return len(self.hops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Route {self.describe()}>"


class RoutingEngine:
    """Shortest-path search over the host–network graph of a TopologyKB.

    All query results (adjacency, host paths) are memoized and stamped with
    :attr:`TopologyKB.generation`; registering a host or a network — or
    attaching a NIC anywhere in the simulation — invalidates them.
    """

    def __init__(self, topology: TopologyKB):
        self.topology = topology
        self._adjacency: Optional[Dict[Host, List[Tuple[float, Host, Network]]]] = None
        self._adjacency_generation = -1
        self._path_cache: Dict[Tuple[int, int], Tuple[int, List[Hop]]] = {}

    # -- edge weights ----------------------------------------------------------
    def edge_weight(self, network: Network) -> float:
        """First-order cost of moving a reference payload over ``network``.

        Latency + payload/bandwidth, inflated by the loss rate (a lossy WAN
        triggers TCP backoff well beyond its nominal parameters).  Uses the
        topology KB's *effective* metrics, so measured degradations pushed by
        the monitoring subsystem steer routes away from sick links.
        """
        topology = self.topology
        base = latency_bandwidth_time(
            ROUTE_WEIGHT_REF_BYTES,
            topology.effective_latency(network),
            topology.effective_bandwidth(network),
        )
        return base * (1.0 + 10.0 * topology.effective_loss_rate(network))

    # -- graph construction -----------------------------------------------------
    def _graph(self) -> Dict[Host, List[Tuple[float, Host, Network]]]:
        generation = self.topology.generation
        if self._adjacency is not None and self._adjacency_generation == generation:
            return self._adjacency
        adjacency: Dict[Host, List[Tuple[float, Host, Network]]] = {}
        registered = {id(h) for h in self.topology.hosts()}
        for network in self.topology.networks():
            if not self.topology.is_link_up(network):
                continue
            members = [
                h
                for h in network.hosts()
                if id(h) in registered and self.topology.is_host_up(h)
            ]
            if len(members) < 2:
                continue
            weight = self.edge_weight(network)
            for a in members:
                edges = adjacency.setdefault(a, [])
                for b in members:
                    if b is not a:
                        edges.append((weight, b, network))
        for host in self.topology.hosts():
            adjacency.setdefault(host, [])
        self._adjacency = adjacency
        self._adjacency_generation = generation
        self._path_cache.clear()
        return adjacency

    # -- queries -----------------------------------------------------------------
    def host_path(self, src: Host, dst: Host) -> List[Hop]:
        """Cheapest hop sequence from ``src`` to ``dst`` (Dijkstra).

        Returns a single hop for directly connected pairs, an empty list for
        ``src is dst``, and raises :class:`AbstractionError` when the graph
        holds no path at all.
        """
        if src is dst:
            return []
        generation = self.topology.generation
        key = (id(src), id(dst))
        cached = self._path_cache.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        hops = self._dijkstra(src, dst)
        self._path_cache[key] = (generation, hops)
        return hops

    def reachable(self, src: Host, dst: Host) -> bool:
        try:
            self.host_path(src, dst)
            return True
        except AbstractionError:
            return False

    def gateways_between(self, src: Host, dst: Host) -> List[Host]:
        """The intermediate hosts on the cheapest src->dst path."""
        return [hop.dst for hop in self.host_path(src, dst)[:-1]]

    def describe(self) -> Dict[str, object]:
        graph = self._graph()
        return {
            "generation": self.topology.generation,
            "hosts": len(graph),
            "edges": sum(len(v) for v in graph.values()),
            "cached_paths": len(self._path_cache),
        }

    # -- internals ----------------------------------------------------------------
    def _dijkstra(self, src: Host, dst: Host) -> List[Hop]:
        graph = self._graph()
        if src not in graph or dst not in graph:
            raise AbstractionError(
                f"no route between {src.name} and {dst.name}: "
                f"host not part of the registered topology"
            )
        dist: Dict[Host, float] = {src: 0.0}
        prev: Dict[Host, Tuple[Host, Network, float]] = {}
        visited: set = set()
        counter = 0  # tie-breaker: hosts are not orderable
        queue: List[Tuple[float, int, Host]] = [(0.0, counter, src)]
        while queue:
            d, _, here = heapq.heappop(queue)
            if here in visited:
                continue
            if here is dst:
                break
            visited.add(here)
            for weight, neighbour, network in graph[here]:
                if neighbour in visited:
                    continue
                cost = d + weight
                if neighbour is not dst:
                    cost += ROUTE_RELAY_PENALTY
                if cost < dist.get(neighbour, float("inf")):
                    dist[neighbour] = cost
                    prev[neighbour] = (here, network, weight)
                    counter += 1
                    heapq.heappush(queue, (cost, counter, neighbour))
        if dst not in prev:
            raise AbstractionError(
                f"no route between {src.name} and {dst.name}: "
                f"no chain of common networks connects them"
            )
        hops: List[Hop] = []
        here = dst
        while here is not src:
            earlier, network, weight = prev[here]
            hops.append(Hop(earlier, here, network, weight))
            here = earlier
        hops.reverse()
        return hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RoutingEngine over {self.topology!r}>"


# ---------------------------------------------------------------------------
# The gateway relay: store-and-forward between two VLink rails
# ---------------------------------------------------------------------------

#: relay handshake: magic, final port, TTL, destination-name length,
#: pinned-hop blob length.
_RELAY_HELLO = struct.Struct("!4sHBHH")
_RELAY_MAGIC = b"PRLY"
_RELAY_OK = b"\x01"
_RELAY_FAIL = b"\x00"

GATEWAY_RELAY_SERVICE = "gateway-relay"


def pack_relay_hello(dst_name: str, port: int, ttl: int, pinned: bytes = b"") -> bytes:
    """The client side of the relay handshake.

    ``pinned`` optionally carries the encoded method decisions for the
    remaining hops (see :func:`encode_pinned_hops`); an empty blob keeps the
    historical behaviour where every relay re-selects autonomously.
    """
    name = dst_name.encode("utf-8")
    return _RELAY_HELLO.pack(_RELAY_MAGIC, port, ttl, len(name), len(pinned)) + name + pinned


def encode_pinned_hops(hops: List[RouteChoice]) -> bytes:
    """Serialize per-hop method decisions for the relay handshake.

    Each hop encodes as ``method@dst[#key=value...]``; hops are joined with
    ``;``.  Pinning requires explicit hop endpoints — any hop without a
    ``dst`` yields an empty blob (the relays then re-select autonomously,
    the pre-pinning behaviour).
    """
    parts = []
    for hop in hops:
        if hop.dst is None:
            return b""
        spec = f"{hop.method}@{hop.dst.name}"
        for key in sorted(hop.params):
            spec += f"#{key}={hop.params[key]}"
        parts.append(spec)
    return ";".join(parts).encode("utf-8")


def decode_pinned_hops(blob: bytes) -> List[Tuple[str, str, Dict[str, float]]]:
    """Parse a pinned-hop blob into ``(method, dst_name, params)`` triples.

    Raises :class:`ValueError` on malformed input; callers treat that as
    "no pinning" and fall back to autonomous selection.
    """
    triples: List[Tuple[str, str, Dict[str, float]]] = []
    for spec in blob.decode("utf-8").split(";"):
        fields = spec.split("#")
        method, _, dst_name = fields[0].partition("@")
        if not method or not dst_name:
            raise ValueError(f"malformed pinned hop {spec!r}")
        params: Dict[str, float] = {}
        for pair in fields[1:]:
            key, _, raw = pair.partition("=")
            value = float(raw)
            params[key] = int(value) if value.is_integer() and "." not in raw else value
        triples.append((method, dst_name, params))
    return triples


class _RelaySession:
    """One upstream stream being handshaken and then spliced downstream."""

    def __init__(self, relay: "GatewayRelay", upstream: "VLink"):
        self.relay = relay
        self.sim = relay.sim
        self.upstream = upstream
        self.downstream: Optional["VLink"] = None
        self.buffer = ByteRing()
        self.header: Optional[Tuple[int, int, int, int]] = None  # port, ttl, name_len, pin_len
        self.failed = False
        self.closed = False
        # per-direction cursor serializing forwarded writes: a small chunk's
        # shorter copy delay must never let it overtake an earlier large one.
        self._next_write_at: Dict[int, float] = {}
        upstream.set_data_handler(lambda _link: self._on_upstream_data())
        self._on_upstream_data()

    # -- handshake phase -------------------------------------------------------
    def _on_upstream_data(self) -> None:
        if self.failed:
            self.upstream.read_available()
            return
        self.buffer.append(self.upstream.read_available())
        if self.header is None:
            if len(self.buffer) < _RELAY_HELLO.size:
                return
            magic, port, ttl, name_len, pin_len = _RELAY_HELLO.unpack(
                self.buffer.peek(_RELAY_HELLO.size)
            )
            if magic != _RELAY_MAGIC:
                self._refuse("relay: bad handshake magic")
                return
            self.header = (port, ttl, name_len, pin_len)
        port, ttl, name_len, pin_len = self.header
        if len(self.buffer) < _RELAY_HELLO.size + name_len + pin_len:
            return
        self.buffer.skip(_RELAY_HELLO.size)
        dst_name = self.buffer.take(name_len).decode("utf-8")
        pinned = self.buffer.take(pin_len)
        # handshake complete: keep buffering payload while the next leg opens
        self.upstream.set_data_handler(lambda _link: self._buffer_early_payload())
        self._open_downstream(dst_name, port, ttl, pinned)

    def _buffer_early_payload(self) -> None:
        self.buffer.append(self.upstream.read_available())

    def _open_downstream(self, dst_name: str, port: int, ttl: int, pinned: bytes = b"") -> None:
        if ttl <= 0:
            self._refuse(f"relay TTL exhausted towards {dst_name!r}")
            return
        topology = self.relay.topology
        try:
            dst_host = topology.host_by_name(dst_name)
        except LookupError:
            self._refuse(f"relay: unknown destination host {dst_name!r}")
            return
        route = self._pinned_route(dst_host, pinned) if pinned else None
        try:
            # a relay leg carries somebody else's byte stream: only drivers
            # that never surrender bytes may serve it (e.g. a VRP driver is
            # usable only at zero tolerance).
            attempt = self.relay.manager.connect(
                dst_host, port, relay_ttl=ttl - 1, reliable_only=True, route=route
            )
        except AbstractionError as exc:
            self._refuse(str(exc))
            return
        attempt.add_callback(self._on_downstream)

    def _pinned_route(self, dst_host: Host, pinned: bytes) -> Optional["Route"]:
        """Reconstruct the pinned continuation the client handshook.

        Any inconsistency (unknown host, malformed blob, a chain that does
        not end at the destination) degrades gracefully to ``None`` — the
        relay then re-selects autonomously, the pre-pinning behaviour.
        """
        topology = self.relay.topology
        try:
            triples = decode_pinned_hops(pinned)
        except (ValueError, UnicodeDecodeError):
            return None
        if not triples:
            return None
        hops: List[RouteChoice] = []
        src = self.relay.host
        for method, hop_dst_name, params in triples:
            try:
                hop_dst = topology.host_by_name(hop_dst_name)
            except LookupError:
                return None
            hops.append(
                RouteChoice(
                    method=method,
                    network=None,
                    link_class=LinkClass.NONE,
                    reason="pinned by upstream relay handshake",
                    src=src,
                    dst=hop_dst,
                    params=params,
                )
            )
            src = hop_dst
        if hops[-1].dst is not dst_host:
            return None
        return Route(self.relay.host, dst_host, hops)

    def _on_downstream(self, ev) -> None:
        if not ev.ok:
            self._refuse(f"relay: next leg failed: {ev.value!r}")
            return
        self.downstream = ev.value
        self.relay.relayed += 1
        self.upstream.write(_RELAY_OK)
        if self.buffer:
            self._forward(self.downstream, self.buffer.take())
        self.upstream.set_data_handler(
            lambda _link: self._pump(self.upstream, self.downstream)
        )
        self.downstream.set_data_handler(
            lambda _link: self._pump(self.downstream, self.upstream)
        )
        # close() on either leg (local teardown, peer FIN, gateway death)
        # propagates to the other leg and reclaims the session.
        self.upstream.set_close_handler(lambda _link: self.teardown("upstream closed"))
        self.downstream.set_close_handler(lambda _link: self.teardown("downstream closed"))

    def _refuse(self, reason: str) -> None:
        self.failed = True
        self.buffer.clear()
        self.relay.refused += 1
        self.relay.last_error = reason
        self.upstream.write(_RELAY_FAIL)
        self.relay._reclaim(self)

    # -- teardown ---------------------------------------------------------------
    def teardown(self, reason: str = "") -> None:
        """Close both legs of the splice and reclaim the session."""
        if self.closed:
            return
        self.closed = True
        from repro.abstraction.vlink import VLinkState

        for leg in (self.upstream, self.downstream):
            if leg is not None and leg.state is not VLinkState.CLOSED:
                leg.close()
        self.relay._reclaim(self, reason)

    # -- splice phase -----------------------------------------------------------
    def _pump(self, src_link: "VLink", dst_link: "VLink") -> None:
        data = src_link.read_available()
        if data:
            self._forward(dst_link, data)

    def _forward(self, dst_link: "VLink", data: bytes) -> None:
        """Store-and-forward one chunk, charging the gateway's CPU for it.

        Writes towards one leg are serialized: each chunk fires no earlier
        than the previous one (same-time events are FIFO in the simulator),
        so in-order byte-stream semantics survive the relay.
        """
        self.relay.bytes_forwarded += len(data)
        delay = GATEWAY_FORWARD_OVERHEAD + self.relay.host.cpu.copy_time(len(data))
        ready = max(self.sim.now + delay, self._next_write_at.get(id(dst_link), 0.0))
        self._next_write_at[id(dst_link)] = ready
        self.sim.call_later(ready - self.sim.now, self._write_out, dst_link, data)

    @staticmethod
    def _write_out(dst_link: "VLink", data: bytes) -> None:
        from repro.abstraction.vlink import VLinkState

        if dst_link.state is VLinkState.ESTABLISHED:
            dst_link.write(data)


class GatewayRelay:
    """Per-node store-and-forward service between VLink rails.

    Booted on every :class:`~repro.core.framework.PadicoNode`; a node whose
    host sits on several networks thereby becomes a usable gateway.  Clients
    connect to :data:`GATEWAY_RELAY_PORT`, send a :func:`pack_relay_hello`
    naming the final destination, and — once the relay's own VLink manager
    has opened the next leg (possibly relaying again, recursively) — receive
    a one-byte acknowledgement after which the stream is spliced end to end.
    """

    def __init__(self, manager: "VLinkManager", port: int = GATEWAY_RELAY_PORT):
        self.manager = manager
        self.host = manager.host
        self.sim = manager.sim
        self.port = port
        self.relayed = 0
        self.refused = 0
        self.reclaimed = 0
        self.bytes_forwarded = 0
        self.last_error = ""
        self.shut_down = False
        self._sessions: List[_RelaySession] = []
        self._listener = manager.listen(port)
        self._listener.set_accept_callback(self._on_upstream)
        self.host.register_service(GATEWAY_RELAY_SERVICE, self, replace=True)

    @property
    def topology(self) -> TopologyKB:
        selector = self.manager.selector
        if selector is None:
            raise AbstractionError(
                f"gateway relay on {self.host.name} has no selector/topology"
            )
        return selector.topology

    def _on_upstream(self, link: "VLink") -> None:
        if self.shut_down:
            link.close()
            return
        self._sessions.append(_RelaySession(self, link))

    def _reclaim(self, session: _RelaySession, reason: str = "") -> None:
        if session in self._sessions:
            self._sessions.remove(session)
            self.reclaimed += 1

    def sessions(self) -> List[_RelaySession]:
        """The splices currently held open by this relay."""
        return list(self._sessions)

    def shutdown(self, reason: str = "gateway shutdown") -> None:
        """Tear down every live splice and stop accepting new ones.

        Both legs of every session are closed and the sessions reclaimed.
        Whether the *endpoints* observe the close depends on why: on a
        graceful shutdown the close notifications propagate; when the host
        was killed (churn) the host is already down and the notifications
        blackhole — crash semantics, endpoints recover via the monitoring /
        adaptive machinery, not via FIN.  The raw listener stays installed
        (a dead host receives nothing anyway), so :meth:`restart` after a
        revival resumes service.
        """
        if self.shut_down:
            return
        self.shut_down = True
        for session in list(self._sessions):
            session.teardown(reason)
        self._sessions.clear()

    def restart(self) -> None:
        """Resume accepting splices after a shutdown (host revived)."""
        self.shut_down = False

    def describe(self) -> Dict[str, object]:
        return {
            "relayed": self.relayed,
            "refused": self.refused,
            "reclaimed": self.reclaimed,
            "bytes_forwarded": self.bytes_forwarded,
            "sessions": len(self._sessions),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GatewayRelay on {self.host.name}:{self.port} "
            f"relayed={self.relayed} bytes={self.bytes_forwarded}>"
        )
