"""Shared helpers of the abstraction layer.

The parallel-paradigm receive path (Myrinet → Madeleine → MadIO) carries a
:class:`repro.simnet.network.Delivery` object whose cost ledger every layer
charges into, so sub-microsecond layering costs stay visible.  The
distributed-paradigm receive path (TCP → SysIO) surfaces as plain socket
callbacks after the kernel costs have already elapsed; :class:`SoftDelivery`
gives that path the same interface so the layers above (VLink, Circuit,
personalities, middleware) can be written once against the :class:`RxPath`
protocol.
"""

from __future__ import annotations

from typing import Any, List, Protocol, runtime_checkable, TYPE_CHECKING

from repro.simnet.cost import Cost, MICROSECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import SimEvent, Simulator


class AbstractionError(RuntimeError):
    """Misuse of the abstraction layer (bad ranks, closed links, ...)."""


@runtime_checkable
class RxPath(Protocol):
    """What the receive-side layers need from a delivery context."""

    cost: Cost

    def traverse(self, layer_name: str) -> None: ...

    def ready_time(self) -> float: ...

    def complete_into(self, event: "SimEvent", value: Any = None) -> None: ...


class SoftDelivery:
    """An :class:`RxPath` for receive paths that did not start at a NIC."""

    def __init__(self, sim: "Simulator", arrived_at: float = None):
        self.sim = sim
        self.arrived_at = sim.now if arrived_at is None else arrived_at
        self.cost = Cost()
        self.path: List[str] = []

    def traverse(self, layer_name: str) -> None:
        self.path.append(layer_name)

    def ready_time(self) -> float:
        return self.arrived_at + self.cost.seconds

    def complete_into(self, event: "SimEvent", value: Any = None) -> None:
        delay = max(0.0, self.ready_time() - self.sim.now)
        event.succeed(value, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SoftDelivery at {self.arrived_at:.9f}s +{self.cost.microseconds:.2f}us>"


# ---------------------------------------------------------------------------
# Calibrated per-layer software costs (seconds, per message and per side).
# The sum of wire + Madeleine + MadIO + these layer costs is what lands on the
# paper's Table 1 latencies; see EXPERIMENTS.md for the full budget.
# ---------------------------------------------------------------------------

#: Circuit abstract-interface bookkeeping (straight parallel path).
CIRCUIT_LAYER_OVERHEAD = 0.16 * MICROSECOND

#: VLink abstract-interface bookkeeping (descriptor + asynchronous op management).
VLINK_LAYER_OVERHEAD = 0.12 * MICROSECOND

#: Cross-paradigm translation: presenting a client/server byte stream on top
#: of a message-based SAN (the VLink-over-MadIO adapter).
CROSS_PARADIGM_STREAM_OVERHEAD = 0.95 * MICROSECOND

#: Cross-paradigm translation: presenting a group/message interface on top of
#: a connected byte stream (the Circuit-over-SysIO adapter): framing work.
CROSS_PARADIGM_FRAMING_OVERHEAD = 0.45 * MICROSECOND

#: Store-and-forward work done by a gateway relay per forwarded chunk
#: (read-side wakeup + write-side post on the intermediate node); the
#: per-byte memcpy on the gateway is charged separately against its CPU.
GATEWAY_FORWARD_OVERHEAD = 1.5 * MICROSECOND
