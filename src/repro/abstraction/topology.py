"""The topology knowledge base used by the adapter selector.

"VLink and Circuit automatically choose which protocol to use according to a
knowledge base of the network topology managed by PadicoTM and user-defined
preferences." (§4.2)

The knowledge base records which hosts sit on which networks and classifies
every host pair's best link into a :class:`LinkClass` (same node, SAN, LAN,
WAN, lossy WAN).  The :class:`~repro.abstraction.selector.Selector` turns a
link class plus user preferences into a concrete adapter / method choice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.simnet.cost import MILLISECOND
from repro.simnet.host import Host
from repro.simnet.network import Network


class LinkClass(enum.Enum):
    """Coarse classification of the best link between two hosts."""

    LOCAL = "local"          # same host (loopback)
    SAN = "san"              # system-area network (Myrinet, SCI, ...)
    LAN = "lan"              # local IP network
    WAN = "wan"              # long-distance IP network, low loss
    LOSSY_WAN = "lossy_wan"  # long-distance IP network with significant loss
    ROUTED = "routed"        # no common network, but a multi-hop gateway route
    NONE = "none"            # no common network


#: latency above which an IP network is considered a WAN rather than a LAN.
WAN_LATENCY_THRESHOLD = 1.0 * MILLISECOND
#: loss rate above which a WAN is considered lossy enough to justify VRP.
LOSSY_THRESHOLD = 0.01


@dataclass
class LinkProfile:
    """Everything the selector knows about the path between two hosts."""

    src: Host
    dst: Host
    link_class: LinkClass
    networks: List[Network] = field(default_factory=list)
    best_network: Optional[Network] = None
    cross_site: bool = False
    #: True when the classification used *measured* link metrics pushed by
    #: the monitoring subsystem rather than the nominal network parameters.
    measured: bool = False

    @property
    def has_parallel_network(self) -> bool:
        return any(n.is_parallel for n in self.networks)

    @property
    def has_distributed_network(self) -> bool:
        return any(n.is_distributed for n in self.networks)

    def parallel_networks(self) -> List[Network]:
        return [n for n in self.networks if n.is_parallel]

    def distributed_networks(self) -> List[Network]:
        return [n for n in self.networks if n.is_distributed]


@dataclass
class TopologyChange:
    """One mutation of the knowledge base, fanned out to subscribers.

    ``kind`` is one of ``"registration"``, ``"measurement"``,
    ``"link-params"``, ``"link-state"``, ``"host-state"``,
    ``"host-removed"`` or ``"network-removed"``.
    """

    kind: str
    generation: int
    network: Optional[Network] = None
    host: Optional[Host] = None
    detail: str = ""


class TopologyKB:
    """Registry of hosts and networks plus link classification.

    Queries are memoized in a *generation-stamped* cache: every registration
    (and every NIC attachment anywhere in the simulation) bumps the
    :attr:`generation`, and cached :class:`LinkProfile` objects from an older
    generation are recomputed on the next lookup.  The
    :class:`~repro.abstraction.routing.RoutingEngine` stamps its own caches
    with the same counter.

    The KB is *mutable at runtime*: the monitoring subsystem pushes measured
    link metrics (:meth:`apply_measurement`) and liveness verdicts
    (:meth:`mark_link_down`, :meth:`mark_host_down`), each of which bumps
    the generation and notifies :meth:`subscribe`-rs — this is what lets
    open VLinks re-run selection and migrate while the deployment changes
    under them.  The KB view is deliberately distinct from the physical
    ``Network.up`` / ``Host.up`` flags: a link the injector has killed but
    nobody has *detected* yet is still presumed up, exactly like a real
    deployment between fault and failure detection.
    """

    def __init__(self) -> None:
        self._networks: List[Network] = []
        self._hosts: List[Host] = []
        self._host_ids: Set[int] = set()
        self._hosts_by_name: Dict[str, Host] = {}
        self._generation = 0
        self._sim = None
        self._profile_cache: Dict[Tuple[int, int], Tuple[int, LinkProfile]] = {}
        self._subscribers: List[Callable[[TopologyChange], None]] = []
        self._measured: Dict[Network, Dict[str, float]] = {}
        self._down_networks: Set[Network] = set()
        self._down_hosts: Set[Host] = set()
        self._last_class: Dict[Network, LinkClass] = {}

    # -- generation stamping ---------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic topology version; caches stamped with an older value are
        stale.  Combines local registrations with the simulator-wide NIC
        attachment epoch so late ``network.connect(host)`` calls are seen."""
        epoch = getattr(self._sim, "topology_epoch", 0) if self._sim is not None else 0
        return self._generation + epoch

    def invalidate(self) -> None:
        """Explicitly flush every generation-stamped cache."""
        self._generation += 1

    # -- notification fan-out ---------------------------------------------------
    def subscribe(self, fn: Callable[[TopologyChange], None]) -> Callable:
        """Register ``fn(change)`` to be called on every KB mutation."""
        if fn not in self._subscribers:
            self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def _notify(
        self,
        kind: str,
        *,
        network: Optional[Network] = None,
        host: Optional[Host] = None,
        detail: str = "",
    ) -> None:
        if not self._subscribers:
            return
        change = TopologyChange(
            kind=kind, generation=self.generation, network=network, host=host, detail=detail
        )
        for fn in list(self._subscribers):
            fn(change)

    # -- runtime mutation -------------------------------------------------------
    def apply_measurement(
        self,
        network: Network,
        *,
        latency: Optional[float] = None,
        bandwidth: Optional[float] = None,
        loss_rate: Optional[float] = None,
        detail: str = "",
    ) -> None:
        """Override the KB's view of a network with *measured* metrics.

        Pushed by the monitoring feedback loop; the nominal network object is
        untouched — only what the selector / routing engine believe changes.
        """
        record = self._measured.setdefault(network, {})
        if latency is not None:
            record["latency"] = latency
        if bandwidth is not None:
            record["bandwidth"] = bandwidth
        if loss_rate is not None:
            record["loss_rate"] = loss_rate
        self._generation += 1
        self._notify("measurement", network=network, detail=detail)

    def clear_measurement(self, network: Network, detail: str = "") -> None:
        if self._measured.pop(network, None) is not None:
            self._generation += 1
            self._notify("measurement", network=network, detail=detail or "cleared")

    def measurement(self, network: Network) -> Dict[str, float]:
        """The measured overrides currently applied to ``network`` (may be empty)."""
        return dict(self._measured.get(network, {}))

    def touch_network(self, network: Network, detail: str = "") -> None:
        """Declare that a network's parameters changed in place (oracle mode
        of the churn injector): flush caches and notify subscribers."""
        self._generation += 1
        self._notify("link-params", network=network, detail=detail)

    def mark_link_down(self, network: Network, detail: str = "") -> None:
        """Record the verdict that a link is dead; it stops being offered by
        :meth:`networks_between` and the routing graph until marked up."""
        if network in self._down_networks:
            return
        self._down_networks.add(network)
        self._generation += 1
        self._notify("link-state", network=network, detail=detail or "down")

    def mark_link_up(self, network: Network, detail: str = "") -> None:
        if network not in self._down_networks:
            return
        self._down_networks.discard(network)
        self._generation += 1
        self._notify("link-state", network=network, detail=detail or "up")

    def is_link_up(self, network: Network) -> bool:
        """The KB's *belief* about the link (not the physical wire state)."""
        return network not in self._down_networks

    def mark_host_down(self, host: Host, detail: str = "") -> None:
        if host in self._down_hosts:
            return
        self._down_hosts.add(host)
        self._generation += 1
        self._notify("host-state", host=host, detail=detail or "down")

    def mark_host_up(self, host: Host, detail: str = "") -> None:
        if host not in self._down_hosts:
            return
        self._down_hosts.discard(host)
        self._generation += 1
        self._notify("host-state", host=host, detail=detail or "up")

    def is_host_up(self, host: Host) -> bool:
        return host not in self._down_hosts

    def remove_host(self, host: Host, detail: str = "") -> None:
        """Unregister a host entirely (permanent decommission).

        ``host_by_name`` stays consistent: the name maps to another
        registered host of the same name when one exists, and raises
        otherwise.
        """
        if host not in self._hosts:
            return
        self._hosts.remove(host)
        self._host_ids.discard(id(host))
        if self._hosts_by_name.get(host.name) is host:
            del self._hosts_by_name[host.name]
            for other in self._hosts:
                if other.name == host.name:
                    self._hosts_by_name[host.name] = other
                    break
        # a liveness verdict on the host (if any) is deliberately kept: a
        # removed host must not come back "up" through a stale reference.
        self._generation += 1
        self._notify("host-removed", host=host, detail=detail)

    def remove_network(self, network: Network, detail: str = "") -> None:
        """Unregister a network entirely (permanent decommission)."""
        if network not in self._networks:
            return
        self._networks.remove(network)
        self._measured.pop(network, None)
        self._down_networks.discard(network)
        self._generation += 1
        self._notify("network-removed", network=network, detail=detail)

    # -- effective (measured-aware) metrics -------------------------------------
    def effective_latency(self, network: Network) -> float:
        record = self._measured.get(network)
        if record and "latency" in record:
            return record["latency"]
        return network.latency

    def effective_bandwidth(self, network: Network) -> float:
        record = self._measured.get(network)
        if record and "bandwidth" in record:
            return record["bandwidth"]
        return network.bandwidth

    def effective_loss_rate(self, network: Network) -> float:
        record = self._measured.get(network)
        if record and "loss_rate" in record:
            return record["loss_rate"]
        return network.loss_rate

    # -- registration ---------------------------------------------------------
    def register_network(self, network: Network) -> Network:
        if network not in self._networks:
            self._networks.append(network)
            self._sim = self._sim or network.sim
            self._generation += 1
            self._notify("registration", network=network)
        return network

    def register_host(self, host: Host) -> Host:
        if host not in self._hosts:
            self._hosts.append(host)
            self._host_ids.add(id(host))
            self._hosts_by_name.setdefault(host.name, host)
            self._sim = self._sim or host.sim
            self._generation += 1
            self._notify("registration", host=host)
        return host

    def is_host_registered(self, host: Host) -> bool:
        return id(host) in self._host_ids

    def networks(self) -> List[Network]:
        return list(self._networks)

    def hosts(self) -> List[Host]:
        return list(self._hosts)

    def host_by_name(self, name: str) -> Host:
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise LookupError(f"unknown host {name!r}") from None

    # -- queries -------------------------------------------------------------------
    def networks_between(self, a: Host, b: Host) -> List[Network]:
        """All registered *live* networks that connect ``a`` and ``b``."""
        if a is b:
            return [n for n in self._networks if self.is_link_up(n) and n.is_attached(a)]
        return [n for n in self._networks if self.is_link_up(n) and n.connects(a, b)]

    def classify_network(self, network: Network) -> LinkClass:
        """Class of a single network considered in isolation.

        Uses the *effective* (measured-override-aware) metrics, so a WAN
        whose measured loss crossed :data:`LOSSY_THRESHOLD` reclassifies to
        ``LOSSY_WAN`` and future selections pick VRP.  The lossy verdict is
        hysteretic: once lossy, the link only flips back when its loss drops
        well below the threshold, so measurement noise around the threshold
        cannot flap the adapter choice push by push.
        """
        if network.is_parallel:
            return LinkClass.SAN
        if self.effective_latency(network) >= WAN_LATENCY_THRESHOLD:
            threshold = LOSSY_THRESHOLD
            if self._last_class.get(network) is LinkClass.LOSSY_WAN:
                threshold = LOSSY_THRESHOLD / 4.0
            if self.effective_loss_rate(network) >= threshold:
                result = LinkClass.LOSSY_WAN
            else:
                result = LinkClass.WAN
        else:
            result = LinkClass.LAN
        self._last_class[network] = result
        return result

    def best_network(self, networks: List[Network]) -> Optional[Network]:
        """Rank common networks: parallel first, then by bandwidth, then latency."""
        if not networks:
            return None
        return sorted(
            networks,
            key=lambda n: (
                not n.is_parallel,
                -self.effective_bandwidth(n),
                self.effective_latency(n),
            ),
        )[0]

    def link_profile(self, a: Host, b: Host) -> LinkProfile:
        """Full profile of the (a, b) path used by the selector.

        Memoized per host pair: the selector used to rescan every registered
        network on every call, an O(#networks) walk on the connect hot path.
        """
        key = (id(a), id(b))
        generation = self.generation
        cached = self._profile_cache.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        profile = self._compute_link_profile(a, b)
        self._profile_cache[key] = (generation, profile)
        return profile

    def _compute_link_profile(self, a: Host, b: Host) -> LinkProfile:
        cross_site = a.site != b.site
        if not (
            self.is_host_registered(a)
            and self.is_host_registered(b)
            and self.is_host_up(a)
            and self.is_host_up(b)
        ):
            return LinkProfile(a, b, LinkClass.NONE, [], None, cross_site)
        networks = self.networks_between(a, b)
        if a is b:
            return LinkProfile(
                a, b, LinkClass.LOCAL, networks, self.best_network(networks), cross_site
            )
        if not networks:
            return LinkProfile(a, b, LinkClass.NONE, [], None, cross_site)
        best = self.best_network(networks)
        measured = any(n in self._measured for n in networks)
        return LinkProfile(a, b, self.classify_network(best), networks, best, cross_site, measured)

    def link_class(self, a: Host, b: Host) -> LinkClass:
        return self.link_profile(a, b).link_class

    # -- descriptive -----------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """A serialisable snapshot (used by the framework's status report)."""
        return {
            "hosts": [h.name for h in self._hosts],
            "networks": [n.describe() for n in self._networks],
            "down_links": sorted(n.name for n in self._down_networks),
            "down_hosts": sorted(h.name for h in self._down_hosts),
            "measured": {n.name: dict(m) for n, m in self._measured.items()},
        }

    def adjacency(self) -> Dict[Tuple[str, str], str]:
        """Link class for every registered host pair (debugging / tests)."""
        result: Dict[Tuple[str, str], str] = {}
        for i, a in enumerate(self._hosts):
            for b in self._hosts[i + 1 :]:
                result[(a.name, b.name)] = self.link_class(a, b).value
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TopologyKB hosts={len(self._hosts)} networks={len(self._networks)}>"
