"""The topology knowledge base used by the adapter selector.

"VLink and Circuit automatically choose which protocol to use according to a
knowledge base of the network topology managed by PadicoTM and user-defined
preferences." (§4.2)

The knowledge base records which hosts sit on which networks and classifies
every host pair's best link into a :class:`LinkClass` (same node, SAN, LAN,
WAN, lossy WAN).  The :class:`~repro.abstraction.selector.Selector` turns a
link class plus user preferences into a concrete adapter / method choice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simnet.cost import MB, MILLISECOND
from repro.simnet.host import Host
from repro.simnet.network import Network


class LinkClass(enum.Enum):
    """Coarse classification of the best link between two hosts."""

    LOCAL = "local"          # same host (loopback)
    SAN = "san"              # system-area network (Myrinet, SCI, ...)
    LAN = "lan"              # local IP network
    WAN = "wan"              # long-distance IP network, low loss
    LOSSY_WAN = "lossy_wan"  # long-distance IP network with significant loss
    ROUTED = "routed"        # no common network, but a multi-hop gateway route
    NONE = "none"            # no common network


#: latency above which an IP network is considered a WAN rather than a LAN.
WAN_LATENCY_THRESHOLD = 1.0 * MILLISECOND
#: loss rate above which a WAN is considered lossy enough to justify VRP.
LOSSY_THRESHOLD = 0.01


@dataclass
class LinkProfile:
    """Everything the selector knows about the path between two hosts."""

    src: Host
    dst: Host
    link_class: LinkClass
    networks: List[Network] = field(default_factory=list)
    best_network: Optional[Network] = None
    cross_site: bool = False

    @property
    def has_parallel_network(self) -> bool:
        return any(n.is_parallel for n in self.networks)

    @property
    def has_distributed_network(self) -> bool:
        return any(n.is_distributed for n in self.networks)

    def parallel_networks(self) -> List[Network]:
        return [n for n in self.networks if n.is_parallel]

    def distributed_networks(self) -> List[Network]:
        return [n for n in self.networks if n.is_distributed]


class TopologyKB:
    """Registry of hosts and networks plus link classification.

    Queries are memoized in a *generation-stamped* cache: every registration
    (and every NIC attachment anywhere in the simulation) bumps the
    :attr:`generation`, and cached :class:`LinkProfile` objects from an older
    generation are recomputed on the next lookup.  The
    :class:`~repro.abstraction.routing.RoutingEngine` stamps its own caches
    with the same counter.
    """

    def __init__(self) -> None:
        self._networks: List[Network] = []
        self._hosts: List[Host] = []
        self._hosts_by_name: Dict[str, Host] = {}
        self._generation = 0
        self._sim = None
        self._profile_cache: Dict[Tuple[int, int], Tuple[int, LinkProfile]] = {}

    # -- generation stamping ---------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic topology version; caches stamped with an older value are
        stale.  Combines local registrations with the simulator-wide NIC
        attachment epoch so late ``network.connect(host)`` calls are seen."""
        epoch = getattr(self._sim, "topology_epoch", 0) if self._sim is not None else 0
        return self._generation + epoch

    def invalidate(self) -> None:
        """Explicitly flush every generation-stamped cache."""
        self._generation += 1

    # -- registration ---------------------------------------------------------
    def register_network(self, network: Network) -> Network:
        if network not in self._networks:
            self._networks.append(network)
            self._sim = self._sim or network.sim
            self._generation += 1
        return network

    def register_host(self, host: Host) -> Host:
        if host not in self._hosts:
            self._hosts.append(host)
            self._hosts_by_name.setdefault(host.name, host)
            self._sim = self._sim or host.sim
            self._generation += 1
        return host

    def networks(self) -> List[Network]:
        return list(self._networks)

    def hosts(self) -> List[Host]:
        return list(self._hosts)

    def host_by_name(self, name: str) -> Host:
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise LookupError(f"unknown host {name!r}") from None

    # -- queries -------------------------------------------------------------------
    def networks_between(self, a: Host, b: Host) -> List[Network]:
        """All registered networks that connect ``a`` and ``b``."""
        if a is b:
            return [n for n in self._networks if n.is_attached(a)]
        return [n for n in self._networks if n.connects(a, b)]

    def classify_network(self, network: Network) -> LinkClass:
        """Class of a single network considered in isolation."""
        if network.is_parallel:
            return LinkClass.SAN
        if network.latency >= WAN_LATENCY_THRESHOLD:
            if network.loss_rate >= LOSSY_THRESHOLD:
                return LinkClass.LOSSY_WAN
            return LinkClass.WAN
        return LinkClass.LAN

    def best_network(self, networks: List[Network]) -> Optional[Network]:
        """Rank common networks: parallel first, then by bandwidth, then latency."""
        if not networks:
            return None
        return sorted(
            networks,
            key=lambda n: (not n.is_parallel, -n.bandwidth, n.latency),
        )[0]

    def link_profile(self, a: Host, b: Host) -> LinkProfile:
        """Full profile of the (a, b) path used by the selector.

        Memoized per host pair: the selector used to rescan every registered
        network on every call, an O(#networks) walk on the connect hot path.
        """
        key = (id(a), id(b))
        generation = self.generation
        cached = self._profile_cache.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        profile = self._compute_link_profile(a, b)
        self._profile_cache[key] = (generation, profile)
        return profile

    def _compute_link_profile(self, a: Host, b: Host) -> LinkProfile:
        networks = self.networks_between(a, b)
        cross_site = a.site != b.site
        if a is b:
            return LinkProfile(a, b, LinkClass.LOCAL, networks, self.best_network(networks), cross_site)
        if not networks:
            return LinkProfile(a, b, LinkClass.NONE, [], None, cross_site)
        best = self.best_network(networks)
        return LinkProfile(a, b, self.classify_network(best), networks, best, cross_site)

    def link_class(self, a: Host, b: Host) -> LinkClass:
        return self.link_profile(a, b).link_class

    # -- descriptive -----------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """A serialisable snapshot (used by the framework's status report)."""
        return {
            "hosts": [h.name for h in self._hosts],
            "networks": [n.describe() for n in self._networks],
        }

    def adjacency(self) -> Dict[Tuple[str, str], str]:
        """Link class for every registered host pair (debugging / tests)."""
        result: Dict[Tuple[str, str], str] = {}
        for i, a in enumerate(self._hosts):
            for b in self._hosts[i + 1 :]:
                result[(a.name, b.name)] = self.link_class(a, b).value
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TopologyKB hosts={len(self._hosts)} networks={len(self._networks)}>"
