"""Calibrated network models for the paper's evaluation platform.

The paper's test platform (§5): dual Pentium III 1 GHz nodes, switched
Ethernet-100, Myrinet-2000, Linux 2.2; a VTHD WAN path (French experimental
high-bandwidth WAN, nodes attached through Ethernet-100); and a slow
trans-continental Internet link with a typical 5–10 % loss rate.

The constants below are the *wire-level* parameters; the software costs of
the stack (Madeleine, NetAccess, adapters, personalities, middleware) are
charged by those layers themselves, so end-to-end figures such as
"MPICH 12.06 µs / 238.7 MB/s over Myrinet-2000" emerge from the sum of wire
and software costs rather than being hard-coded anywhere.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.simnet.cost import MB, MICROSECOND, MILLISECOND
from repro.simnet.network import Network, PARADIGM_DISTRIBUTED, PARADIGM_PARALLEL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import Simulator


class Myrinet2000(Network):
    """Myrinet-2000 SAN: 2 Gb/s links, a few microseconds of hardware latency.

    The paper reports 250 MB/s as the maximum hardware bandwidth ("240 MB/s
    … is 96 % of the maximum Myrinet-2000 hardware bandwidth") and one-way
    latencies of 8.4 µs at the Circuit level; the wire itself is modelled at
    6.3 µs / 250 MB/s, with the remaining microseconds charged by the
    Madeleine-like library and the layers above it.
    """

    paradigm = PARADIGM_PARALLEL

    #: raw hardware bandwidth (bytes/s)
    HW_BANDWIDTH = 250.0 * MB
    #: one-way wire + firmware latency (seconds)
    HW_LATENCY = 5.8 * MICROSECOND

    def __init__(self, sim: "Simulator", name: str = "myrinet0", *, seed: int = 101):
        super().__init__(
            sim,
            name,
            latency=self.HW_LATENCY,
            bandwidth=self.HW_BANDWIDTH,
            mtu=1 << 30,  # message-based network: no IP-style fragmentation
            header_bytes=8,
            loss_rate=0.0,
            seed=seed,
        )
        #: Myrinet/GM exposes a very small number of hardware channels; the
        #: MadIO arbitration subsystem multiplexes logical channels on top.
        self.hardware_channels = 2

    def make_address(self, host, index: int) -> str:
        return f"myri://{host.name}:{index}"


class SciNetwork(Network):
    """SCI (Scalable Coherent Interface) SAN — remote-memory style network.

    Listed by the paper among the supported networks (via the Sisci driver).
    A single hardware channel is available, so everything above relies on
    MadIO multiplexing.
    """

    paradigm = PARADIGM_PARALLEL

    def __init__(self, sim: "Simulator", name: str = "sci0", *, seed: int = 102):
        super().__init__(
            sim,
            name,
            latency=3.5 * MICROSECOND,
            bandwidth=85.0 * MB,
            mtu=1 << 30,
            header_bytes=16,
            loss_rate=0.0,
            seed=seed,
        )
        self.hardware_channels = 1

    def make_address(self, host, index: int) -> str:
        return f"sci://{host.name}:{index}"


class _IpNetwork(Network):
    """Common behaviour of IP-class (distributed-paradigm) networks."""

    paradigm = PARADIGM_DISTRIBUTED
    #: Ethernet + IP + TCP headers per segment.
    TCP_HEADER_BYTES = 58

    def __init__(self, sim, name, *, latency, bandwidth, mtu=1460, loss_rate=0.0, seed=0):
        super().__init__(
            sim,
            name,
            latency=latency,
            bandwidth=bandwidth,
            mtu=mtu,
            header_bytes=self.TCP_HEADER_BYTES,
            loss_rate=loss_rate,
            seed=seed,
        )
        self._subnet = abs(hash(name)) % 250 + 1

    def make_address(self, host, index: int) -> str:
        return f"10.{self._subnet}.0.{index}"

    @property
    def rtt(self) -> float:
        """Round-trip wire time for a small segment."""
        return 2.0 * self.latency


class Ethernet100(_IpNetwork):
    """Switched Fast Ethernet (100 Mb/s): the paper's LAN and WAN access link.

    100 Mb/s = 12.5 MB/s of raw wire bandwidth; per-segment TCP/IP framing
    and kernel-side copies bring the application-visible plateau to ~11 MB/s,
    the reference curve of Figure 3.
    """

    RAW_BANDWIDTH = 12.5 * MB

    def __init__(self, sim: "Simulator", name: str = "eth0", *, seed: int = 201):
        super().__init__(
            sim,
            name,
            latency=51.0 * MICROSECOND,
            bandwidth=self.RAW_BANDWIDTH,
            mtu=1460,
            loss_rate=0.0,
            seed=seed,
        )


class GigabitEthernet(_IpNetwork):
    """Gigabit Ethernet: not part of the paper's platform, provided for
    completeness of the deployment configurations users can describe."""

    def __init__(self, sim: "Simulator", name: str = "geth0", *, seed: int = 202):
        super().__init__(
            sim,
            name,
            latency=25.0 * MICROSECOND,
            bandwidth=125.0 * MB,
            mtu=1460,
            loss_rate=0.0,
            seed=seed,
        )


class WanVthd(_IpNetwork):
    """The VTHD high-bandwidth WAN path used in §5.

    The backbone itself is fast (2.5 Gb/s), but each node reaches it through
    an Ethernet-100 access link, so the per-path ceiling is ~12.5 MB/s.  The
    paper measures ~9 MB/s with a single TCP stream and ~12 MB/s with
    parallel streams; the gap comes from the residual loss rate of the long
    path interacting with TCP congestion control, which is exactly what the
    :mod:`repro.simnet.tcp` window model reproduces.
    """

    #: path ceiling: the Ethernet-100 access links at both ends.
    ACCESS_BANDWIDTH = 12.5 * MB
    #: nominal backbone bandwidth (documentation only; never the bottleneck).
    BACKBONE_BANDWIDTH = 312.5 * MB

    def __init__(self, sim: "Simulator", name: str = "vthd", *, seed: int = 301):
        super().__init__(
            sim,
            name,
            latency=8.0 * MILLISECOND,
            bandwidth=self.ACCESS_BANDWIDTH,
            mtu=1460,
            loss_rate=1.5e-4,
            seed=seed,
        )


class LossyInternet(_IpNetwork):
    """A slow trans-continental Internet path with 5–10 % packet loss.

    §5: "The link exhibits a typical loss-rate of 5-10 %.  With TCP/IP and
    plain sockets, we get 150 KB/s; if we give up some reliability and allow
    up to 10 % loss with VRP, we get an average of 500 KB/s on the same
    link."  The path capacity is therefore well above what TCP achieves —
    the collapse is TCP's reaction to loss, not a lack of raw bandwidth.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str = "transcontinental",
        *,
        loss_rate: float = 0.07,
        seed: int = 401,
    ):
        super().__init__(
            sim,
            name,
            latency=22.0 * MILLISECOND,
            bandwidth=0.55 * MB,
            mtu=1460,
            loss_rate=loss_rate,
            seed=seed,
        )


class Loopback(Network):
    """Intra-node communication (two middleware systems inside one node).

    PadicoTM provides a loopback VLink driver / Circuit adapter; the cost is
    essentially a memory copy.
    """

    paradigm = PARADIGM_PARALLEL

    def __init__(self, sim: "Simulator", name: str = "lo", *, seed: int = 501):
        super().__init__(
            sim,
            name,
            latency=0.4 * MICROSECOND,
            bandwidth=800.0 * MB,
            mtu=1 << 30,
            header_bytes=0,
            loss_rate=0.0,
            seed=seed,
        )

    def transmit(self, src, dst, payload, **kwargs):
        # A loopback "network" may legitimately carry a message from a host
        # to itself; lift the base-class restriction.
        if src is dst:
            return self._transmit_self(src, payload, **kwargs)
        return super().transmit(src, dst, payload, **kwargs)

    def _transmit_self(self, host, payload, *, channel=None, send_cost=None, meta=None):
        from repro.simnet.network import Frame, _immutable_payload

        nic = self.nic_of(host)
        frame = Frame(
            frame_id=next(self._frame_counter),
            src=host,
            dst=host,
            network=self,
            channel=channel,
            payload=_immutable_payload(payload),
            meta=dict(meta or {}),
        )
        sw = send_cost.seconds if send_cost is not None else 0.0
        ready = self.sim.now + sw
        begin, end = nic.reserve_tx(ready, self.serialization_time(frame.nbytes))
        arrival = end + self.latency
        self.frames_sent += 1
        self.bytes_carried += frame.nbytes
        nic.tx_frames += 1
        nic.tx_bytes += frame.nbytes
        self.sim.call_at_partition(host.partition, arrival, nic.handle_arrival, frame, arrival)
        return frame


def standard_cluster_networks(sim: "Simulator"):
    """Convenience: the two intra-cluster networks of the paper's platform."""
    return Myrinet2000(sim), Ethernet100(sim)


class GridDeployment:
    """Handles onto a deployment built by :func:`grid_deployment`."""

    def __init__(self):
        self.clusters = []       # [[Host, ...]] row-major, gateway first
        self.gateways = []       # [Host] one per cluster, row-major
        self.lans = []           # [Ethernet100] one per cluster
        self.wans = []           # [WanVthd] grid links (right, then down, per cell)
        self.wan_pairs = []      # [(gateway_a, gateway_b)] aligned with `wans`

    @property
    def hosts(self):
        return [h for cluster in self.clusters for h in cluster]


def grid_deployment(
    framework,
    *,
    rows: int = 2,
    cols: int = 2,
    hosts_per_cluster: int = 8,
    seed: int = 9000,
    partitions: Optional[int] = None,
) -> GridDeployment:
    """Build a ``rows x cols`` grid of Ethernet clusters on ``framework``.

    The scale testbed behind ``benchmarks/test_engine_scale.py``: each grid
    cell is a cluster of ``hosts_per_cluster`` hosts on a private
    :class:`Ethernet100` LAN; the first host of every cluster doubles as the
    cluster gateway and is linked to the gateways of its right and down
    neighbours through dedicated :class:`WanVthd` paths.  Traffic between
    clusters therefore has to relay through gateways, which is exactly the
    multi-hop byte path the routing subsystem (PR 1) produces.

    On a partitioned kernel (``partitions`` explicit, or defaulted from the
    simulator's ``partition_count``) each Ethernet cluster — its hosts and
    its LAN — is assigned to one event-loop partition, clusters distributed
    round-robin; the inter-cluster WAN links are the partition boundaries
    (owned by their west/north gateway's partition) and their multi-ms
    latency is the conservative lookahead the windows run on.

    ``framework`` is duck-typed (``add_host`` / ``add_network``) so this
    module stays independent of :mod:`repro.core`.  Total host count is
    ``rows * cols * hosts_per_cluster``; 200- and 1000-host deployments are
    ``(5, 5, 8)`` and ``(5, 10, 20)``.
    """
    if rows < 1 or cols < 1 or hosts_per_cluster < 1:
        raise ValueError("grid_deployment needs positive rows/cols/hosts_per_cluster")
    grid = GridDeployment()
    sim = framework.sim
    nparts = partitions if partitions is not None else sim.partition_count
    if nparts < 1:
        raise ValueError(f"grid_deployment needs a positive partition count, got {nparts}")
    if nparts > sim.partition_count:
        # labels beyond the kernel's shard range would only surface later as
        # scheduling errors on the first cross-cluster frame
        raise ValueError(
            f"grid_deployment asked for {nparts} partitions, but the simulator "
            f"has {sim.partition_count}"
        )
    gateway_grid = {}
    for r in range(rows):
        for c in range(cols):
            site = f"g{r}x{c}"
            part = (r * cols + c) % nparts
            hosts = [
                framework.add_host(f"{site}n{i:02d}", site=site)
                for i in range(hosts_per_cluster)
            ]
            for h in hosts:
                h.partition = part
            lan = framework.add_network(
                Ethernet100(sim, f"lan-{site}", seed=seed + 7 * (r * cols + c))
            )
            lan.partition = part
            for h in hosts:
                lan.connect(h)
            grid.clusters.append(hosts)
            grid.lans.append(lan)
            grid.gateways.append(hosts[0])
            gateway_grid[(r, c)] = hosts[0]
    for r in range(rows):
        for c in range(cols):
            here = gateway_grid[(r, c)]
            for dr, dc, tag in ((0, 1, "e"), (1, 0, "s")):
                nr, nc = r + dr, c + dc
                if nr >= rows or nc >= cols:
                    continue
                there = gateway_grid[(nr, nc)]
                wan = framework.add_network(
                    WanVthd(
                        sim,
                        f"wan-g{r}x{c}{tag}",
                        seed=seed + 1000 + 13 * (r * cols + c) + (0 if tag == "e" else 1),
                    )
                )
                # the west/north gateway owns the link (probes + faults run
                # there); `connect` auto-registers spanning WANs as window
                # boundaries on a partitioned kernel.
                wan.partition = here.partition
                wan.connect(here)
                wan.connect(there)
                grid.wans.append(wan)
                grid.wan_pairs.append((here, there))
    return grid
