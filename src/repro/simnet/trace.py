"""Lightweight tracing and statistics helpers for the simulator.

The benchmark harness and several tests want to know *what happened*
(which layer handled a message, how many frames crossed a network, what the
observed bandwidth of a transfer was) without printing anything during the
simulation.  :class:`Trace` is an in-memory, append-only record of events;
:class:`Counter` aggregates named integer/float statistics; the module-level
helpers compute the derived quantities the paper reports (bandwidth in
decimal MB/s, one-way latency from a ping-pong, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.simnet.cost import MB, MICROSECOND


@dataclass
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    label: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.time * 1e6:10.2f}us {self.category}:{self.label} {self.data}>"


class Trace:
    """Append-only event log, filterable by category."""

    def __init__(self, enabled: bool = True, limit: Optional[int] = None):
        self.enabled = enabled
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def record(self, time: float, category: str, label: str, **data: Any) -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time=time, category=category, label=label, data=data))

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def labels(self, category: Optional[str] = None) -> List[str]:
        return [r.label for r in self.records if category is None or r.category == category]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


class Counter:
    """Named accumulators (counts, byte totals, durations)."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        self._values[name] = self._values.get(name, 0.0) + value
        self._counts[name] = self._counts.get(name, 0) + 1

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        n = self._counts.get(name, 0)
        if n == 0:
            raise KeyError(f"no samples for {name!r}")
        return self._values[name] / n

    def names(self) -> Iterable[str]:
        return self._values.keys()

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    def clear(self) -> None:
        self._values.clear()
        self._counts.clear()


@dataclass
class TransferSample:
    """One measured transfer: bytes moved and elapsed virtual time."""

    nbytes: int
    elapsed: float

    @property
    def bandwidth(self) -> float:
        """Bytes per second."""
        if self.elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return self.nbytes / self.elapsed

    @property
    def bandwidth_MBps(self) -> float:
        return self.bandwidth / MB

    @property
    def elapsed_us(self) -> float:
        return self.elapsed / MICROSECOND


def one_way_latency_from_roundtrip(roundtrip: float) -> float:
    """The paper reports one-way latency as half the ping-pong round trip."""
    if roundtrip < 0:
        raise ValueError("round trip time cannot be negative")
    return roundtrip / 2.0


def bandwidth_MBps(nbytes: int, elapsed: float) -> float:
    """Observed bandwidth in decimal MB/s (the unit used by the paper)."""
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    return (nbytes / elapsed) / MB


def summarize_samples(samples: Iterable[TransferSample]) -> Dict[str, float]:
    """Aggregate bandwidth statistics for a series of transfers."""
    samples = list(samples)
    if not samples:
        raise ValueError("no samples")
    total_bytes = sum(s.nbytes for s in samples)
    total_time = sum(s.elapsed for s in samples)
    bws = [s.bandwidth_MBps for s in samples]
    return {
        "count": float(len(samples)),
        "total_bytes": float(total_bytes),
        "total_time": total_time,
        "aggregate_MBps": bandwidth_MBps(total_bytes, total_time),
        "min_MBps": min(bws),
        "max_MBps": max(bws),
        "mean_MBps": sum(bws) / len(bws),
    }


class Probe:
    """A callable hook point: layers call ``probe(label, **data)`` and tests
    or the bench harness subscribe to observe internal behaviour without
    changing the layer code."""

    def __init__(self) -> None:
        self._subscribers: List[Callable[[str, Dict[str, Any]], None]] = []

    def subscribe(self, fn: Callable[[str, Dict[str, Any]], None]) -> None:
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[str, Dict[str, Any]], None]) -> None:
        self._subscribers.remove(fn)

    def __call__(self, label: str, **data: Any) -> None:
        for fn in self._subscribers:
            fn(label, dict(data))
