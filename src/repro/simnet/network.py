"""Base classes for simulated networks, NICs and frame delivery.

The model is deliberately first-order — it is the *software stack above* the
wire that this reproduction studies, exactly like the paper.  A network is
characterised by a one-way wire latency, a wire bandwidth, an MTU, per-frame
header overhead and (for WAN-class networks) a loss rate.  Transmissions are
serialised per sending NIC (link occupancy), so concurrent middleware
systems sharing one NIC really do compete for the wire — which is what the
NetAccess arbitration layer is about.

Two transmission services are offered:

``Network.transmit``
    reliable, in-order message delivery — the service a Madeleine-class SAN
    library or an established TCP connection provides to the layer above.
    (For TCP the *throughput* model lives in :mod:`repro.simnet.tcp`; the
    network only provides the underlying cost parameters.)

``Network.transmit_datagram``
    unreliable, per-packet-lossy delivery used by the UDP-like path of the
    VRP loss-tolerant protocol.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.simnet.cost import Cost, MB, MICROSECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.engine import SimEvent, Simulator
    from repro.simnet.host import Host


PARADIGM_PARALLEL = "parallel"
PARADIGM_DISTRIBUTED = "distributed"


def _immutable_payload(data):
    """``data`` if already immutable, else a ``bytes`` snapshot.

    Frames pin their payload until delivery, so a defensive copy of an
    already-immutable buffer is pure waste — and on the TCP bulk path it is
    *the* dominant per-burst cost (a congestion window is 256 KiB).  The
    rule matches :meth:`repro.simnet.buffers.ByteRing.append`: ``bytes``
    and read-only byte views backed by ``bytes`` ride by reference,
    anything writable is snapshotted.
    """
    if type(data) is bytes or (
        type(data) is memoryview
        and data.readonly
        and data.contiguous
        and data.ndim == 1
        and data.itemsize == 1
        and type(data.obj) is bytes
    ):
        return data
    return bytes(data)


@dataclass
class Frame:
    """One message handed to the wire by a NIC."""

    frame_id: int
    src: "Host"
    dst: "Host"
    network: "Network"
    channel: Any
    #: an immutable buffer: ``bytes``, or a read-only ``bytes``-backed
    #: memoryview on the zero-copy TCP data path (consumers that need a
    #: flat ``bytes`` convert at their own boundary).
    payload: bytes
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame #{self.frame_id} {self.src.name}->{self.dst.name} "
            f"chan={self.channel!r} {self.nbytes}B>"
        )


class Delivery:
    """A frame arriving at a NIC, travelling *up* the receive stack.

    The receive path of the reproduced stack (NetAccess demultiplexing,
    adapter, personality, middleware unmarshalling) is a chain of synchronous
    callbacks executed at the frame's arrival time.  Each stage charges its
    software cost into :attr:`cost`; the terminal consumer then calls
    :meth:`complete_into` so the application-visible completion event fires
    only after the accumulated receive-side cost has elapsed.
    """

    def __init__(self, frame: Frame, arrived_at: float):
        self.frame = frame
        self.arrived_at = arrived_at
        self.cost = Cost()
        self.path: List[str] = []

    @property
    def payload(self) -> bytes:
        return self.frame.payload

    @property
    def sim(self) -> "Simulator":
        return self.frame.network.sim

    def traverse(self, layer_name: str) -> None:
        """Record that a software layer handled this delivery (for tracing)."""
        self.path.append(layer_name)

    def ready_time(self) -> float:
        """Virtual time at which the data is available to the application."""
        return self.arrived_at + self.cost.seconds

    def complete_into(self, event: "SimEvent", value: Any = None) -> None:
        """Trigger ``event`` once the receive-side software cost has elapsed."""
        delay = max(0.0, self.ready_time() - self.sim.now)
        event.succeed(value, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Delivery {self.frame!r} at {self.arrived_at:.9f}s +{self.cost.microseconds:.2f}us>"


class Nic:
    """A host's interface on one network.

    Exactly one receive handler may be registered per NIC: in the paper's
    model the arbitration layer (NetAccess) is "the only client of the
    system-level resources".  Attempting to register a second handler raises,
    and a test asserts this property.
    """

    def __init__(self, host: "Host", network: "Network", address: str):
        self.host = host
        self.network = network
        self.address = address
        self._tx_free_at = 0.0
        #: fluid epoch currently holding pre-committed future reservations
        #: on this NIC (set by :class:`repro.simnet.fluid.FluidController`).
        #: Any reservation by *other* traffic must invalidate it first, so
        #: foreign frames queue behind the in-flight round only — exactly
        #: where the packet model would put them — instead of behind the
        #: epoch's entire planned future.
        self._fluid_holder = None
        self._receive_handler: Optional[Callable[[Delivery], None]] = None
        self._owner: Optional[str] = None
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0

    # -- arbitration hook ----------------------------------------------------
    def set_receive_handler(self, handler: Callable[[Delivery], None], owner: str) -> None:
        """Install the single receive callback (owned by the arbitration layer)."""
        if self._receive_handler is not None and self._owner != owner:
            raise PermissionError(
                f"NIC {self.address} on {self.network.name} is already owned by "
                f"{self._owner!r}; concurrent system-level access must go through "
                "the arbitration layer (NetAccess)"
            )
        self._receive_handler = handler
        self._owner = owner

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    # -- transmit --------------------------------------------------------------
    def reserve_tx(self, start: float, duration: float) -> Tuple[float, float]:
        """Serialise outbound transmissions on this NIC (link occupancy)."""
        holder = self._fluid_holder
        if holder is not None:
            # Competing traffic (a handshake, a datagram, another flow's
            # burst) wants the wire mid-epoch: unwind the epoch's
            # uncommitted reservations so this frame lands at the exact
            # slot the packet model would give it.
            self._fluid_holder = None
            holder.invalidate("nic-contention")
        begin = max(start, self._tx_free_at)
        end = begin + duration
        self._tx_free_at = end
        return begin, end

    @property
    def tx_free_at(self) -> float:
        return self._tx_free_at

    def rewind_tx(self, to: float) -> None:
        """Release future occupancy back to ``to`` (fluid-epoch rollback:
        the unwound rounds' reservations were never really on the wire)."""
        self._tx_free_at = to

    # -- receive ----------------------------------------------------------------
    def handle_arrival(self, frame: Frame, arrived_at: float) -> None:
        self.rx_frames += 1
        self.rx_bytes += frame.nbytes
        delivery = Delivery(frame, arrived_at)
        if self._receive_handler is None:
            self.network.record_drop(frame, reason="no-handler")
            return
        self._receive_handler(delivery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Nic {self.address} host={self.host.name} net={self.network.name}>"


class Network:
    """A simulated network with a first-order latency/bandwidth/loss model."""

    #: paradigm of the network: ``"parallel"`` for SAN-class networks
    #: (Myrinet, SCI), ``"distributed"`` for IP-class networks.
    paradigm = PARADIGM_DISTRIBUTED

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        *,
        latency: float,
        bandwidth: float,
        mtu: int = 1500,
        header_bytes: int = 0,
        loss_rate: float = 0.0,
        duplex: bool = True,
        seed: int = 0x5EED,
    ) -> None:
        if latency < 0 or bandwidth <= 0 or mtu <= 0:
            raise ValueError("invalid network parameters")
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.mtu = mtu
        self.header_bytes = header_bytes
        self.loss_rate = loss_rate
        self.duplex = duplex
        self.rng = random.Random(seed)
        self.nics: Dict["Host", Nic] = {}
        self._frame_counter = itertools.count(1)
        self._address_counter = itertools.count(1)
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_carried = 0
        self.drop_log: List[Tuple[int, str]] = []
        #: physical link state; a down network blackholes every frame.
        #: Flipped by the churn injector (:mod:`repro.monitoring.churn`).
        self.up = True
        #: event-loop partition that owns this link (None: derive from the
        #: first attached host).  Monitoring probes and fault schedules for
        #: the link execute in the owning partition; a network whose hosts
        #: span partitions is a *boundary* link (see
        #: :mod:`repro.simnet.partition`).
        self.partition: Optional[int] = None
        #: traffic observers (passive link probes); see :meth:`add_observer`.
        self._observers: List[Callable[["Network", str, Dict[str, Any]], None]] = []
        #: per-link rate-share ledger for the fluid fast path, created
        #: lazily by :func:`repro.simnet.fluid.ledger_for` the first time a
        #: hybrid-fidelity TCP connection pumps on this link.
        self.fluid_ledger = None

    # -- topology ----------------------------------------------------------------
    def connect(self, host: "Host") -> Nic:
        """Attach ``host`` to this network and return its NIC."""
        if host in self.nics:
            return self.nics[host]
        address = self.make_address(host, next(self._address_counter))
        nic = Nic(host, self, address)
        self.nics[host] = nic
        host.attach_nic(nic)
        if self.sim.partition_count > 1:
            # a partitioned kernel tracks links that span partitions: their
            # latency bounds the conservative window width.
            self.sim.note_network_span(self)
        return nic

    def owning_partition(self) -> int:
        """The partition that owns this link's probes and fault schedules:
        the explicit :attr:`partition` when set, else the partition of the
        first attached host."""
        if self.partition is not None:
            return self.partition
        for host in self.nics:
            return host.partition
        return 0

    def make_address(self, host: "Host", index: int) -> str:
        """Network-specific address syntax (overridden by IP-class networks)."""
        return f"{self.name}:{host.name}#{index}"

    def hosts(self) -> List["Host"]:
        return list(self.nics.keys())

    def is_attached(self, host: "Host") -> bool:
        return host in self.nics

    def connects(self, a: "Host", b: "Host") -> bool:
        return a in self.nics and b in self.nics

    def nic_of(self, host: "Host") -> Nic:
        try:
            return self.nics[host]
        except KeyError:
            raise LookupError(f"host {host.name!r} is not attached to {self.name!r}") from None

    # -- instrumentation ----------------------------------------------------------
    def add_observer(self, fn: Callable[["Network", str, Dict[str, Any]], None]) -> Callable:
        """Register a traffic observer ``fn(network, kind, info)``.

        ``kind`` is ``"frame"`` (a frame was put on the wire and will arrive;
        ``info["frame"]`` carries the timing metadata), ``"datagram-lost"``
        (an unreliable datagram was dropped by the loss model),
        ``"blackhole"`` (a frame was swallowed by a down link or dead host)
        or ``"tcp-burst"`` (a TCP congestion-window burst reporting its
        internal loss draw: ``info["npkts"]``/``info["lost_pkts"]`` — the
        window model absorbs losses instead of dropping frames, so this is
        the only way passive observers see them).
        Passive link probes (:mod:`repro.monitoring.probes`) hang off this.
        """
        self._observers.append(fn)
        return fn

    def remove_observer(self, fn: Callable) -> None:
        if fn in self._observers:
            self._observers.remove(fn)

    def _observe(self, kind: str, **info: Any) -> None:
        for fn in list(self._observers):
            fn(self, kind, info)

    def link_alive(self, src: "Host", dst: "Host") -> bool:
        """True when the wire and both endpoints are physically up."""
        return self.up and src.up and dst.up

    def invalidate_fluid(self, reason: str = "link-params") -> None:
        """Drop every fluidized flow on this link back to the packet model.

        Must be called after any out-of-band change to the link's
        parameters or state (the churn injector does this); fluid flows
        pick up *scheduled* parameter reads per round on their own, but a
        committed multi-round epoch plan has to be rolled back explicitly.
        """
        ledger = self.fluid_ledger
        if ledger is not None:
            ledger.invalidate(reason)

    # -- timing model ---------------------------------------------------------------
    def packets_for(self, nbytes: int) -> int:
        """Number of MTU-sized packets needed for ``nbytes`` of payload."""
        if nbytes <= 0:
            return 1
        return int(math.ceil(nbytes / self.mtu))

    def wire_bytes(self, nbytes: int) -> int:
        """Bytes on the wire including per-packet headers."""
        return nbytes + self.packets_for(nbytes) * self.header_bytes

    def serialization_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` of payload through the wire."""
        return self.wire_bytes(nbytes) / self.bandwidth

    def one_way_time(self, nbytes: int) -> float:
        """Wire latency plus serialisation time (no software costs)."""
        return self.latency + self.serialization_time(nbytes)

    # -- transmission -----------------------------------------------------------------
    def transmit(
        self,
        src: "Host",
        dst: "Host",
        payload: bytes,
        *,
        channel: Any = None,
        send_cost: Optional[Cost] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Frame:
        """Reliable message transmission from ``src`` to ``dst``.

        The frame leaves the source NIC after the accumulated *send-side*
        software cost, waits for the NIC transmit link to be free, occupies
        it for the serialisation time, then arrives at ``dst`` after the wire
        latency.  The destination NIC's receive handler (installed by the
        arbitration layer) is invoked at arrival time.
        """
        src_nic = self.nic_of(src)
        dst_nic = self.nic_of(dst)
        if src is dst:
            raise ValueError(
                f"{self.name}: transmit() to self; use the Loopback network for local links"
            )
        frame = Frame(
            frame_id=next(self._frame_counter),
            src=src,
            dst=dst,
            network=self,
            channel=channel,
            payload=_immutable_payload(payload),
            meta=dict(meta or {}),
        )
        sw = send_cost.seconds if send_cost is not None else 0.0
        ready = self.sim.now + sw
        begin, end = src_nic.reserve_tx(ready, self.serialization_time(frame.nbytes))
        arrival = end + self.latency
        frame.meta.setdefault("tx_begin", begin)
        frame.meta.setdefault("tx_end", end)
        frame.meta.setdefault("arrival", arrival)
        if not self.link_alive(src, dst):
            # The sender cannot tell: the bytes leave the NIC and vanish.
            # Reliability above this point is the job of the layers that the
            # monitoring/adaptive subsystem provides (acks + retransmission).
            self.record_drop(frame, reason="link-down")
            self._observe("blackhole", frame=frame)
            return frame
        self.frames_sent += 1
        self.bytes_carried += frame.nbytes
        src_nic.tx_frames += 1
        src_nic.tx_bytes += frame.nbytes
        # the arrival executes in the *destination's* partition; on a
        # partitioned kernel a cross-partition delivery rides the boundary
        # mailbox (arrival >= window horizon: the wire latency is the
        # lookahead), on the single loop this is a plain call_at.
        self.sim.call_at_partition(dst.partition, arrival, dst_nic.handle_arrival, frame, arrival)
        self._observe("frame", frame=frame)
        return frame

    def transmit_datagram(
        self,
        src: "Host",
        dst: "Host",
        payload: bytes,
        *,
        channel: Any = None,
        send_cost: Optional[Cost] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Optional[Frame]:
        """Unreliable transmission: the whole datagram is dropped with the
        network's per-packet loss probability applied to each MTU segment.

        Returns the frame if it was put on the wire and will arrive, or
        ``None`` if it was lost (the caller — UDP personality or VRP — deals
        with it)."""
        if not self.link_alive(src, dst):
            self.frames_dropped += 1
            self.drop_log.append((len(payload), "link-down"))
            self._observe("datagram-lost", nbytes=len(payload), reason="link-down")
            return None
        packets = self.packets_for(len(payload))
        lost = any(self.rng.random() < self.loss_rate for _ in range(packets))
        if lost:
            self.frames_dropped += 1
            self.drop_log.append((len(payload), "loss"))
            # The bytes still occupy the sender's wire even when dropped
            # downstream; charge occupancy so a lossy link cannot magically
            # exceed its bandwidth by retransmitting for free.
            src_nic = self.nic_of(src)
            sw = send_cost.seconds if send_cost is not None else 0.0
            src_nic.reserve_tx(self.sim.now + sw, self.serialization_time(len(payload)))
            self._observe("datagram-lost", nbytes=len(payload), reason="loss")
            return None
        return self.transmit(
            src, dst, payload, channel=channel, send_cost=send_cost, meta=meta
        )

    def record_drop(self, frame: Frame, reason: str) -> None:
        self.frames_dropped += 1
        self.drop_log.append((frame.nbytes, reason))

    # -- descriptive -----------------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        return self.paradigm == PARADIGM_PARALLEL

    @property
    def is_distributed(self) -> bool:
        return self.paradigm == PARADIGM_DISTRIBUTED

    def describe(self) -> Dict[str, Any]:
        """Static description used by the topology knowledge base."""
        return {
            "name": self.name,
            "paradigm": self.paradigm,
            "latency_us": self.latency / MICROSECOND,
            "bandwidth_MBps": self.bandwidth / MB,
            "mtu": self.mtu,
            "loss_rate": self.loss_rate,
            "up": self.up,
            "hosts": [h.name for h in self.nics],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} lat={self.latency * 1e6:.1f}us "
            f"bw={self.bandwidth / MB:.1f}MB/s hosts={len(self.nics)}>"
        )
