"""Zero-copy byte buffers shared by every byte-stream layer.

The seed implementation of every receive buffer in the stack (TCP, the
driver-level :class:`~repro.abstraction.drivers.StreamBuffer`, the codec
drivers, the adaptive frame parser) was a ``bytearray`` consumed with
``bytes(buf[:take]); del buf[:take]`` — each read copies the taken prefix
*and* memmoves the entire remainder, so draining one TCP burst in framed
pieces moves O(burst^2 / piece) bytes, and a relayed multi-hop transfer
re-pays that at every layer of every hop.

:class:`ByteRing` replaces the pattern with a ring of immutable chunks and
a head offset:

* ``append`` keeps a *reference* to the appended ``bytes`` (no copy —
  writable buffers are defensively snapshotted, see below);
* ``take`` slices each byte out at most once; when a read consumes exactly
  the head chunk, the original object is returned without any copy at all;
* ``peek`` / ``skip`` let frame parsers unpack headers without consuming or
  assembling payloads.

Rules for driver authors
------------------------

* Only hand ``append`` buffers you will not mutate afterwards.  ``bytes``
  and read-only byte views backed by ``bytes`` are stored by reference;
  anything writable (bytearray, writable memoryview) is snapshotted to
  ``bytes``, so passing those is correct but forfeits the zero-copy win —
  produce ``bytes`` or immutable views on the hot path.
* ``take``/``peek`` return ``bytes`` — consumers own them outright.
* A chunk is pinned until fully consumed: taking 1 byte of a 64 KB chunk
  keeps the 64 KB alive.  That matches the simulator's traffic (chunks are
  consumed promptly and completely); do not use ByteRing to hold a tiny
  tail of a huge buffer indefinitely.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class ByteRing:
    """A FIFO of bytes stored as a ring of immutable chunks."""

    __slots__ = ("_chunks", "_head", "_size")

    def __init__(self, data: bytes = b""):
        self._chunks: deque = deque()
        self._head = 0  # read offset into the first chunk
        self._size = 0
        if data:
            self.append(data)

    # -- producing ---------------------------------------------------------
    def append(self, data) -> None:
        """Enqueue ``data``; immutable buffers are kept by reference.

        ``bytes`` are stored as-is.  Read-only byte views backed by
        ``bytes`` (what the fluid fast path delivers) are equally immutable,
        so they are also stored by reference — pinning the view pins the
        backing bytes, and no fresh copy is materialised per delivered
        burst.  Anything writable (bytearray, writable views) is
        defensively snapshotted.  ``take``/``peek`` still hand out plain
        ``bytes``; the conversion happens at that consumer boundary.
        """
        if type(data) is not bytes and not (
            type(data) is memoryview
            and data.readonly
            and data.contiguous
            and data.ndim == 1
            and data.itemsize == 1
            and type(data.obj) is bytes
        ):
            data = bytes(data)
        if not data:
            return
        self._chunks.append(data)
        self._size += len(data)

    # -- sizing ------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- consuming ---------------------------------------------------------
    def take(self, nbytes: Optional[int] = None) -> bytes:
        """Consume and return up to ``nbytes`` (everything when None)."""
        size = self._size
        if nbytes is None or nbytes >= size:
            nbytes = size
        if nbytes <= 0:
            return b""
        chunks = self._chunks
        head = self._head
        first = chunks[0]
        avail = len(first) - head
        if nbytes < avail:
            end = head + nbytes
            self._head = end
            self._size = size - nbytes
            out = first[head:end]
            return out if type(out) is bytes else bytes(out)
        if nbytes == avail:
            chunks.popleft()
            self._head = 0
            self._size = size - nbytes
            out = first[head:] if head else first
            return out if type(out) is bytes else bytes(out)
        parts = []
        remaining = nbytes
        while remaining:
            first = chunks[0]
            avail = len(first) - head
            if avail <= remaining:
                parts.append(first[head:] if head else first)
                chunks.popleft()
                head = 0
                remaining -= avail
            else:
                parts.append(first[head : head + remaining])
                head += remaining
                remaining = 0
        self._head = head
        self._size = size - nbytes
        return b"".join(parts)

    def take_iov(self, nbytes: Optional[int] = None) -> list:
        """Consume up to ``nbytes`` as a list of chunk references (no join).

        The scatter-gather variant of :meth:`take`: consumers that forward
        or account buffers without flattening them (relays, bulk sinks,
        iovec-style personalities) skip the assembly copy entirely.  Chunks
        are immutable buffers the caller owns outright; only a partially
        consumed head chunk is sliced.
        """
        size = self._size
        if nbytes is None or nbytes >= size:
            nbytes = size
        if nbytes <= 0:
            return []
        chunks = self._chunks
        head = self._head
        parts = []
        remaining = nbytes
        while remaining:
            first = chunks[0]
            avail = len(first) - head
            if avail <= remaining:
                parts.append(first[head:] if head else first)
                chunks.popleft()
                head = 0
                remaining -= avail
            else:
                parts.append(first[head : head + remaining])
                head += remaining
                remaining = 0
        self._head = head
        self._size = size - nbytes
        return parts

    def peek(self, nbytes: int) -> bytes:
        """The next ``nbytes`` (or fewer, at the tail) without consuming."""
        size = self._size
        if nbytes > size:
            nbytes = size
        if nbytes <= 0:
            return b""
        head = self._head
        first = self._chunks[0]
        if len(first) - head >= nbytes:
            out = first[head : head + nbytes]
            return out if type(out) is bytes else bytes(out)
        parts = []
        remaining = nbytes
        for chunk in self._chunks:
            avail = len(chunk) - head
            step = avail if avail <= remaining else remaining
            parts.append(chunk[head : head + step])
            head = 0
            remaining -= step
            if not remaining:
                break
        return b"".join(parts)

    def skip(self, nbytes: int) -> int:
        """Consume up to ``nbytes`` without assembling them; returns the
        number of bytes skipped (header consumption in frame parsers)."""
        size = self._size
        if nbytes > size:
            nbytes = size
        if nbytes <= 0:
            return 0
        chunks = self._chunks
        head = self._head
        remaining = nbytes
        while remaining:
            first = chunks[0]
            avail = len(first) - head
            if avail <= remaining:
                chunks.popleft()
                head = 0
                remaining -= avail
            else:
                head += remaining
                remaining = 0
        self._head = head
        self._size = size - nbytes
        return nbytes

    def clear(self) -> None:
        self._chunks.clear()
        self._head = 0
        self._size = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ByteRing {self._size}B in {len(self._chunks)} chunks>"
