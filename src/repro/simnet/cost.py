"""Cost accounting for the software layers of the communication stack.

Every layer of the reproduced PadicoTM stack (Madeleine, MadIO/SysIO, the
VLink/Circuit adapters, the personalities and the middleware systems) is real
Python code that manipulates real bytes, but the *time* it would take on the
paper's platform (dual Pentium III, 1 GHz) is tracked explicitly through a
:class:`Cost` ledger rather than through wall-clock measurement — wall clock
of the simulator host would be meaningless for reproducing 2004 numbers.

Costs come in two flavours:

``charge(seconds)``
    fixed per-operation software overhead (function call chains, header
    manipulation, system call, interrupt, ...).

``charge_copy(nbytes, bandwidth)``
    per-byte work such as a memory copy or a marshalling pass, expressed as
    an equivalent copy bandwidth in bytes/second.

The ledger also keeps a breakdown per label so benchmarks and tests can
assert *where* time went (e.g. "MadIO adds < 0.1 µs over plain Madeleine").
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

MICROSECOND = 1e-6
MILLISECOND = 1e-3
KB = 1024
MB = 1_000_000  # the paper reports MB/s in decimal megabytes


class Cost:
    """Accumulates virtual CPU time spent by software layers on one operation."""

    __slots__ = ("_total", "_breakdown")

    def __init__(self) -> None:
        self._total = 0.0
        self._breakdown: Dict[str, float] = {}

    # -- charging -----------------------------------------------------------
    def charge(self, seconds: float, label: str = "misc") -> "Cost":
        """Add a fixed software overhead (seconds of virtual time)."""
        if seconds < 0:
            raise ValueError(f"negative cost: {seconds!r}")
        self._total += seconds
        self._breakdown[label] = self._breakdown.get(label, 0.0) + seconds
        return self

    def charge_us(self, microseconds: float, label: str = "misc") -> "Cost":
        """Add a fixed software overhead expressed in microseconds."""
        return self.charge(microseconds * MICROSECOND, label)

    def charge_copy(self, nbytes: int, bandwidth: float, label: str = "copy") -> "Cost":
        """Add per-byte work at an equivalent ``bandwidth`` (bytes/second)."""
        if bandwidth <= 0:
            raise ValueError(f"copy bandwidth must be positive, got {bandwidth!r}")
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes!r}")
        return self.charge(nbytes / bandwidth, label)

    def merge(self, other: "Cost") -> "Cost":
        """Fold another ledger into this one (used when layers hand off)."""
        self._total += other._total
        for label, value in other._breakdown.items():
            self._breakdown[label] = self._breakdown.get(label, 0.0) + value
        return self

    # -- reading ------------------------------------------------------------
    @property
    def seconds(self) -> float:
        """Total accumulated virtual time, in seconds."""
        return self._total

    @property
    def microseconds(self) -> float:
        """Total accumulated virtual time, in microseconds."""
        return self._total / MICROSECOND

    def component(self, label: str) -> float:
        """Seconds charged under ``label`` (0.0 if never charged)."""
        return self._breakdown.get(label, 0.0)

    def breakdown(self) -> Dict[str, float]:
        """A copy of the per-label breakdown (seconds)."""
        return dict(self._breakdown)

    def labels(self) -> Iterable[str]:
        return self._breakdown.keys()

    def copy(self) -> "Cost":
        clone = Cost()
        clone._total = self._total
        clone._breakdown = dict(self._breakdown)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{k}={v / MICROSECOND:.3f}us" for k, v in sorted(self._breakdown.items())
        )
        return f"<Cost {self.microseconds:.3f}us [{parts}]>"


def latency_bandwidth_time(nbytes: int, latency: float, bandwidth: float) -> float:
    """Classic first-order transfer time model: ``latency + nbytes/bandwidth``."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return latency + nbytes / bandwidth


def effective_bandwidth(nbytes: int, elapsed: float) -> float:
    """Observed bandwidth in bytes/second for ``nbytes`` moved in ``elapsed`` s."""
    if elapsed <= 0:
        raise ValueError("elapsed time must be positive")
    return nbytes / elapsed


def combine_bandwidths(*bandwidths: float) -> float:
    """Serial composition of per-byte stages (harmonic combination).

    Moving a byte through stages with bandwidths ``b1, b2, ...`` (wire,
    marshalling copy, extra memory copy, ...) takes ``sum(1/bi)`` seconds, so
    the end-to-end bandwidth is the harmonic combination.  This is the model
    the paper implicitly uses when it attributes Mico's 55 MB/s plateau to
    copying marshalling on a 240 MB/s wire.
    """
    inv = 0.0
    for b in bandwidths:
        if b <= 0:
            raise ValueError("bandwidths must be positive")
        inv += 1.0 / b
    if inv == 0.0:
        raise ValueError("at least one bandwidth required")
    return 1.0 / inv


def required_copy_bandwidth(observed: float, wire: float) -> float:
    """Invert :func:`combine_bandwidths` for a single extra stage.

    Given an observed end-to-end bandwidth and the wire bandwidth, return the
    equivalent bandwidth of the additional per-byte stage that explains the
    difference.  Used to calibrate the copying-ORB marshalling profiles from
    the numbers in the paper (Mico 55 MB/s, ORBacus 63 MB/s on a 240 MB/s
    Myrinet path).
    """
    if observed >= wire:
        raise ValueError("observed bandwidth must be below the wire bandwidth")
    return 1.0 / (1.0 / observed - 1.0 / wire)


def split_even(total: int, parts: int) -> Tuple[int, ...]:
    """Split ``total`` bytes into ``parts`` chunks differing by at most one byte."""
    if parts <= 0:
        raise ValueError("parts must be >= 1")
    base, extra = divmod(total, parts)
    return tuple(base + (1 if i < extra else 0) for i in range(parts))


def format_bandwidth(bytes_per_second: float, unit: str = "MB/s") -> str:
    """Human formatting used by the bench harness (decimal MB, like the paper)."""
    if unit == "MB/s":
        return f"{bytes_per_second / MB:.1f} MB/s"
    if unit == "KB/s":
        return f"{bytes_per_second / 1000:.0f} KB/s"
    raise ValueError(f"unknown unit {unit!r}")


def format_latency(seconds: float) -> str:
    """Human formatting of a latency (µs below 1 ms, ms above)."""
    if seconds < MILLISECOND:
        return f"{seconds / MICROSECOND:.2f} us"
    return f"{seconds / MILLISECOND:.2f} ms"
