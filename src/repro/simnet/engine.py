"""Discrete-event simulation kernel.

A deliberately small, dependency-free engine in the style of SimPy:

* :class:`Simulator` owns the virtual clock and the event heap.
* :class:`SimEvent` is a one-shot completion token carrying a value (or an
  exception) plus a list of callbacks.
* :class:`Timeout` is an event that fires after a fixed virtual delay.
* :class:`Process` wraps a generator; the generator *yields* events and is
  resumed with the event value when the event fires.  Processes are
  themselves events (they fire when the generator returns), so processes can
  wait for each other.
* :class:`AllOf` / :class:`AnyOf` combine events.

The engine is fully deterministic: events scheduled for the same virtual
time fire in FIFO order of scheduling (a monotonically increasing sequence
number breaks ties), and the only randomness anywhere in :mod:`repro.simnet`
comes from explicitly seeded generators owned by the network models.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double-firing an event,
    yielding a non-event from a process, running a simulator with no events
    while waiting for a condition, ...)."""


class SimEvent:
    """A one-shot completion token.

    An event starts *pending*; it becomes *triggered* exactly once, either
    through :meth:`succeed` (with a value) or :meth:`fail` (with an
    exception).  Callbacks registered with :meth:`add_callback` run when the
    event is processed by the simulator loop, in registration order.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: List[Callable[["SimEvent"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self.name = name

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator has run the callbacks of this event."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the failure exception)."""
        if self._exc is not None:
            return self._exc
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "SimEvent":
        """Trigger the event successfully, optionally after ``delay``."""
        if delay > 0.0:
            self.sim.call_later(delay, self.succeed, value)
            return self
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        self._triggered = True
        self._value = value
        self.sim._push_triggered(self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "SimEvent":
        """Trigger the event with an exception, optionally after ``delay``."""
        if delay > 0.0:
            self.sim.call_later(delay, self.fail, exc)
            return self
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._push_triggered(self)
        return self

    # -- composition ------------------------------------------------------
    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately (in
        the caller's stack frame), which keeps chained completions correct
        even when a lower layer fires synchronously.
        """
        if self._processed:
            fn(self)
        else:
            self.callbacks.append(fn)

    def chain(self, other: "SimEvent") -> "SimEvent":
        """Propagate this event's outcome into ``other`` when it fires."""

        def _propagate(ev: "SimEvent") -> None:
            if ev.ok:
                if not other.triggered:
                    other.succeed(ev.value)
            else:
                if not other.triggered:
                    other.fail(ev.value)

        self.add_callback(_propagate)
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {self.name or hex(id(self))} {state}>"


class Timeout(SimEvent):
    """An event that fires ``delay`` seconds of virtual time after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        super().__init__(sim, name=name or f"timeout({delay:g})")
        self.delay = float(delay)
        sim.call_later(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self._triggered:
            self.succeed(value)


class Process(SimEvent):
    """Wraps a generator that yields :class:`SimEvent` instances.

    The process itself is an event: it succeeds with the generator's return
    value, or fails with the exception the generator raised.  A failure of a
    yielded event is re-raised *inside* the generator so it can be handled
    with ordinary ``try/except``.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[SimEvent] = None
        # Bootstrap: resume the generator once the loop starts.
        boot = SimEvent(sim, name=f"{self.name}/boot")
        boot.add_callback(self._resume)
        boot.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield point."""
        if self._triggered:
            return
        target = self._waiting_on
        self._waiting_on = None
        # Deliver asynchronously so we do not re-enter the generator from
        # arbitrary stacks.
        self.sim.call_later(0.0, self._throw, Interrupt(cause), target)

    def _throw(self, exc: BaseException, stale_target: Optional[SimEvent]) -> None:
        if self._triggered:
            return
        try:
            nxt = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # pragma: no cover - defensive
            self.fail(err)
            return
        self._wait_for(nxt)

    def _resume(self, ev: SimEvent) -> None:
        if self._triggered:
            return
        try:
            if ev.ok:
                nxt = self._gen.send(ev.value)
            else:
                nxt = self._gen.throw(ev.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.fail(err)
            return
        self._wait_for(nxt)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, SimEvent):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield SimEvent instances"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Interrupt(Exception):
    """Raised inside a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class PeriodicTask:
    """A lightweight recurring task: run ``fn(*args)`` every ``interval``.

    The engine-level helper behind simulator *processes* that only need a
    fixed-rate tick (active link probes, estimator push loops): cheaper than
    a full generator process and explicitly cancellable.  Note that a live
    periodic task keeps the event heap non-empty, so ``run(until=None)``
    will not terminate until every periodic task has been cancelled.
    """

    __slots__ = ("sim", "interval", "fn", "args", "cancelled", "runs")

    def __init__(self, sim: "Simulator", interval: float, fn: Callable, *args: Any):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.runs = 0
        sim.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if self.cancelled:
            return
        self.fn(*self.args)
        self.runs += 1
        self.sim.call_later(self.interval, self._tick)

    def cancel(self) -> None:
        """Stop the task; the currently scheduled tick becomes a no-op."""
        self.cancelled = True


class AllOf(SimEvent):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent], name: str = ""):
        super().__init__(sim, name=name or "all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: SimEvent) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(SimEvent):
    """Fires as soon as one child fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent], name: str = ""):
        super().__init__(sim, name=name or "any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=idx: self._child_done(i, e))

    def _child_done(self, idx: int, ev: SimEvent) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed((idx, ev.value))
        else:
            self.fail(ev.value)


class Simulator:
    """The event loop: a virtual clock plus a time-ordered event heap."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List = []
        self._counter = itertools.count()
        self._stopped = False

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    # -- event construction helpers ---------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event firing after ``delay`` virtual seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, gen, name=name)

    def every(self, interval: float, fn: Callable, *args: Any) -> PeriodicTask:
        """Run ``fn(*args)`` every ``interval`` virtual seconds until cancelled."""
        return PeriodicTask(self, interval, fn, *args)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), fn, args))

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past (t={when!r} < now={self._now!r})")
        heapq.heappush(self._heap, (when, next(self._counter), fn, args))

    def _push_triggered(self, ev: SimEvent) -> None:
        heapq.heappush(self._heap, (self._now, next(self._counter), self._process_event, (ev,)))

    @staticmethod
    def _process_event(ev: SimEvent) -> None:
        ev._processed = True
        callbacks, ev.callbacks = ev.callbacks, []
        for fn in callbacks:
            fn(ev)

    # -- main loop ---------------------------------------------------------
    def step(self) -> bool:
        """Run one scheduled entry.  Returns False when the heap is empty."""
        if not self._heap:
            return False
        when, _, fn, args = heapq.heappop(self._heap)
        if when < self._now - 1e-15:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = max(self._now, when)
        fn(*args)
        return True

    def run(self, until: Optional[Any] = None, max_time: Optional[float] = None) -> Any:
        """Run the loop.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain; a :class:`SimEvent` — run
            until that event is processed and return its value (raising its
            exception if it failed); a number — run until virtual time
            reaches that instant.
        max_time:
            Safety cap on virtual time; exceeding it raises
            :class:`SimulationError` (used by tests as a deadlock guard).
        """
        self._stopped = False
        target_event: Optional[SimEvent] = None
        target_time: Optional[float] = None
        if isinstance(until, SimEvent):
            target_event = until
        elif until is not None:
            target_time = float(until)

        while not self._stopped:
            if target_event is not None and target_event.processed:
                break
            if not self._heap:
                if target_event is not None and not target_event.triggered:
                    raise SimulationError(
                        f"simulation ran out of events while waiting for {target_event!r} "
                        "(deadlock: nobody will ever trigger it)"
                    )
                break
            next_when = self._heap[0][0]
            if target_time is not None and next_when > target_time:
                self._now = target_time
                break
            if max_time is not None and next_when > max_time:
                raise SimulationError(f"virtual time exceeded max_time={max_time}")
            self.step()

        if target_event is not None and target_event.triggered:
            if target_event.ok:
                return target_event.value
            raise target_event.value
        return None

    def stop(self) -> None:
        """Stop :meth:`run` at the next iteration (used by watchdogs)."""
        self._stopped = True

    def pending_count(self) -> int:
        """Number of scheduled entries still in the heap."""
        return len(self._heap)
