"""Discrete-event simulation kernel.

A deliberately small, dependency-free engine in the style of SimPy:

* :class:`Simulator` owns the virtual clock and the timer structures.
* :class:`SimEvent` is a one-shot completion token carrying a value (or an
  exception) plus a list of callbacks.
* :class:`Timeout` is an event that fires after a fixed virtual delay.
* :class:`Process` wraps a generator; the generator *yields* events and is
  resumed with the event value when the event fires.  Processes are
  themselves events (they fire when the generator returns), so processes can
  wait for each other.
* :class:`AllOf` / :class:`AnyOf` combine events.

The engine is fully deterministic: events scheduled for the same virtual
time fire in FIFO order of scheduling (a monotonically increasing sequence
number breaks ties), and the only randomness anywhere in :mod:`repro.simnet`
comes from explicitly seeded generators owned by the network models.

Scheduling internals
--------------------

The kernel used to be a single monolithic ``heapq``; at grid scale (hundreds
of booted hosts, thousands of concurrent timers) the heap churns on three
workloads that have cheaper homes:

* **same-timestamp completions** — the vast majority of entries are
  triggered events and zero-delay callbacks that fire *now*; they live in a
  plain FIFO deque (:attr:`Simulator._ready`) and never touch the heap;
* **near-future timers** — entries within the wheel horizon go into a
  hierarchical timer wheel (:attr:`Simulator._buckets`): per-bucket append
  is O(1) and each bucket is sorted once when its turn comes (sorting one
  small, mostly-ordered bucket is far cheaper than maintaining a global
  heap invariant per event);
* **far-future timers** — everything past the horizon waits in an overflow
  heap and is re-bucketed wheel-window by wheel-window.

Every scheduling call returns a :class:`TimerHandle`; cancellation is lazy
(the handle is flagged and skipped when its slot drains) so cancelling is
O(1) and dead entries no longer churn the queue.  The executed order is the
exact ``(when, seq)`` order of the historical heap kernel —
:class:`ReferenceSimulator` keeps that original scheduler alive as an
executable specification, and the tier-1 suite asserts trace equality
between the two on recorded scenarios.
"""

from __future__ import annotations

import contextlib
import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double-firing an event,
    yielding a non-event from a process, running a simulator with no events
    while waiting for a condition, ...)."""


#: :class:`TimerHandle` lifecycle states.
_PENDING, _FIRED, _CANCELLED = 0, 1, 2

class TimerHandle:
    """One scheduled callback, cancellable in O(1).

    Returned by :meth:`Simulator.call_later` / :meth:`Simulator.call_at`.
    :meth:`cancel` flags the entry and drops the callback references
    immediately; the slot itself is removed lazily when the wheel (or the
    overflow heap) drains past it, so cancellation never has to search a
    queue.  Handles order by ``(when, seq)`` — the engine-wide total order.
    """

    __slots__ = ("when", "seq", "sim", "fn", "args", "_state")

    def __init__(self, when: float, seq: int, sim: "Simulator", fn: Callable, args: tuple):
        self.when = when
        self.seq = seq
        self.sim = sim
        self.fn = fn
        self.args = args
        self._state = _PENDING

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def fired(self) -> bool:
        return self._state == _FIRED

    def cancel(self) -> bool:
        """Cancel the entry; True if it was still pending."""
        if self._state != _PENDING:
            return False
        self._state = _CANCELLED
        self.fn = None
        self.args = None
        sim = self.sim
        sim._live -= 1
        sim._cancellations += 1
        return True

    def __lt__(self, other: "TimerHandle") -> bool:
        if self.when != other.when:
            return self.when < other.when
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "fired", "cancelled")[self._state]
        return f"<TimerHandle t={self.when:g} #{self.seq} {state}>"


class SimStats:
    """Counter snapshot returned by :meth:`Simulator.stats`."""

    __slots__ = (
        "events_processed",
        "timers_scheduled",
        "cancellations",
        "peak_pending",
        "wheel_rebuilds",
    )

    def __init__(self, events_processed: int, timers_scheduled: int, cancellations: int,
                 peak_pending: int, wheel_rebuilds: int):
        self.events_processed = events_processed
        self.timers_scheduled = timers_scheduled
        self.cancellations = cancellations
        self.peak_pending = peak_pending
        self.wheel_rebuilds = wheel_rebuilds

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<SimStats {inner}>"


class SimEvent:
    """A one-shot completion token.

    An event starts *pending*; it becomes *triggered* exactly once, either
    through :meth:`succeed` (with a value) or :meth:`fail` (with an
    exception).  Callbacks registered with :meth:`add_callback` run when the
    event is processed by the simulator loop, in registration order.
    """

    #: ``seq`` is stamped by the simulator when the event triggers (it
    #: orders the ready FIFO against due timers); unset while pending.
    #: ``uid`` is a construction-order identifier assigned only when the
    #: simulator installs an ``_event_tracker`` (the process-pool executor
    #: uses it to name events across address spaces); unset otherwise.
    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_exc",
        "_triggered",
        "_processed",
        "name",
        "seq",
        "uid",
        "__weakref__",
    )

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: List[Callable[["SimEvent"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        self.name = name
        if sim._event_tracker is not None:
            sim._event_tracker(self)

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the simulator has run the callbacks of this event."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the failure exception)."""
        if self._exc is not None:
            return self._exc
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "SimEvent":
        """Trigger the event successfully, optionally after ``delay``."""
        if delay > 0.0:
            self.sim.call_later(delay, self.succeed, value)
            return self
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        self._triggered = True
        self._value = value
        self.sim._push_triggered(self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "SimEvent":
        """Trigger the event with an exception, optionally after ``delay``."""
        if delay > 0.0:
            self.sim.call_later(delay, self.fail, exc)
            return self
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._push_triggered(self)
        return self

    # -- composition ------------------------------------------------------
    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately (in
        the caller's stack frame), which keeps chained completions correct
        even when a lower layer fires synchronously.
        """
        if self._processed:
            fn(self)
        else:
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["SimEvent"], None]) -> bool:
        """Detach a callback registered with :meth:`add_callback`.

        Returns True if it was found.  Used by :meth:`Process.interrupt` to
        abandon the event the process was waiting on: without the removal, a
        later firing of the abandoned event would re-enter the generator at
        the wrong yield point.
        """
        try:
            self.callbacks.remove(fn)
            return True
        except ValueError:
            return False

    def chain(self, other: "SimEvent") -> "SimEvent":
        """Propagate this event's outcome into ``other`` when it fires."""

        def _propagate(ev: "SimEvent") -> None:
            if ev.ok:
                if not other.triggered:
                    other.succeed(ev.value)
            else:
                if not other.triggered:
                    other.fail(ev.value)

        self.add_callback(_propagate)
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {self.name or hex(id(self))} {state}>"


class Timeout(SimEvent):
    """An event that fires ``delay`` seconds of virtual time after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        super().__init__(sim, name=name or "timeout")
        self.delay = float(delay)
        sim.call_later(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self._triggered:
            self.succeed(value)


class Process(SimEvent):
    """Wraps a generator that yields :class:`SimEvent` instances.

    The process itself is an event: it succeeds with the generator's return
    value, or fails with the exception the generator raised.  A failure of a
    yielded event is re-raised *inside* the generator so it can be handled
    with ordinary ``try/except``.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you forget to call the process function?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[SimEvent] = None
        # Bootstrap: resume the generator once the loop starts.
        boot = SimEvent(sim, name=f"{self.name}/boot")
        boot.add_callback(self._resume)
        boot.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield point."""
        if self._triggered:
            return
        target = self._waiting_on
        self._waiting_on = None
        # Abandon the event we were waiting on: if it fires later it must
        # not resume the generator at the (by then stale) yield point.
        if target is not None:
            target.remove_callback(self._resume)
        # Deliver asynchronously so we do not re-enter the generator from
        # arbitrary stacks.
        self.sim.call_later(0.0, self._throw, Interrupt(cause))

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        try:
            nxt = self._gen.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # pragma: no cover - defensive
            self.fail(err)
            return
        self._wait_for(nxt)

    def _resume(self, ev: SimEvent) -> None:
        if self._triggered:
            return
        try:
            if ev.ok:
                nxt = self._gen.send(ev.value)
            else:
                nxt = self._gen.throw(ev.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.fail(err)
            return
        self._wait_for(nxt)

    def _wait_for(self, target: Any) -> None:
        if not isinstance(target, SimEvent):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield SimEvent instances"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Interrupt(Exception):
    """Raised inside a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class PeriodicTask:
    """A lightweight recurring task: run ``fn(*args)`` every ``interval``.

    The engine-level helper behind simulator *processes* that only need a
    fixed-rate tick (active link probes, estimator push loops): cheaper than
    a full generator process and explicitly cancellable.  Note that a live
    periodic task keeps the timer queue non-empty, so ``run(until=None)``
    will not terminate until every periodic task has been cancelled.
    """

    __slots__ = ("sim", "interval", "fn", "args", "cancelled", "runs", "_handle")

    def __init__(self, sim: "Simulator", interval: float, fn: Callable, *args: Any):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.runs = 0
        self._handle: Optional[TimerHandle] = sim.call_later(self.interval, self._tick)

    def _tick(self) -> None:
        if self.cancelled:
            return
        self.fn(*self.args)
        self.runs += 1
        # the callback may have cancelled the task (self-stopping probes):
        # rescheduling then would leave an uncancellable dead tick
        if not self.cancelled:
            self._handle = self.sim.call_later(self.interval, self._tick)

    def cancel(self) -> None:
        """Stop the task and remove the scheduled tick from the queue."""
        if self.cancelled:
            return
        self.cancelled = True
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.cancel()


class AllOf(SimEvent):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent], name: str = ""):
        super().__init__(sim, name=name or "all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: SimEvent) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(SimEvent):
    """Fires as soon as one child fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent], name: str = ""):
        super().__init__(sim, name=name or "any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=idx: self._child_done(i, e))

    def _child_done(self, idx: int, ev: SimEvent) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed((idx, ev.value))
        else:
            self.fail(ev.value)

class Simulator:
    """The event loop: a virtual clock plus the timer wheel.

    ``wheel_width`` (seconds per bucket) and ``wheel_buckets`` define the
    near-future horizon ``wheel_width * wheel_buckets``; timers past the
    horizon wait in the overflow heap and are re-bucketed one window at a
    time.  The defaults (64 µs x 512 = ~33 ms) fit the simulated stacks:
    per-message software costs and LAN round trips land in the wheel while
    probe intervals and WAN timeouts ride the overflow heap.

    Internally every structure stores ``(when, seq, handle)`` triples so all
    ordering comparisons run as C tuple compares; triggered events skip the
    timer structures entirely and ride the ``_ready`` FIFO as
    ``(seq, event)`` pairs.

    ``Simulator(partitions=N)`` with ``N > 1`` returns a
    :class:`~repro.simnet.partition.PartitionedSimulator` instead: the same
    public surface, but the event loop is sharded into ``N`` per-partition
    queues executed in conservative lookahead windows (see
    :mod:`repro.simnet.partition`).  The partition-aware entry points below
    (:meth:`call_at_partition`, :meth:`in_partition`,
    :attr:`partition_count`) are no-ops on the single-loop kernel so model
    code can target partitions unconditionally.
    """

    #: flight-recorder hook (:mod:`repro.telemetry`): ``None`` means
    #: recording is off — instrumented code gates on this one attribute
    #: check, so the disabled state is exactly the pre-telemetry hot path.
    telemetry = None

    #: event-identity hook: ``None`` means events carry no ``uid`` (the
    #: zero-overhead default).  The process-pool executor installs a tracker
    #: that stamps every event with a construction-order uid, so replicated
    #: object graphs in worker processes can name the same logical event.
    _event_tracker = None

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        if cls is Simulator:
            partitions = kwargs.get("partitions")
            if partitions is not None and int(partitions) > 1:
                from repro.simnet.partition import PartitionedSimulator

                return super().__new__(PartitionedSimulator)
        return super().__new__(cls)

    def __init__(
        self,
        *,
        wheel_width: float = 64e-6,
        wheel_buckets: int = 512,
        partitions: Optional[int] = None,
        executor: Optional[Any] = None,
        lookahead: Optional[float] = None,
    ) -> None:
        if partitions is not None and int(partitions) > 1:
            # Simulator(partitions=N) dispatches to PartitionedSimulator via
            # __new__; landing here means a subclass was asked to shard.
            raise SimulationError(
                f"{type(self).__name__} does not support partitions={partitions!r}"
            )
        del partitions, executor, lookahead  # single-loop kernel: no-ops
        if wheel_width <= 0.0 or wheel_buckets < 1:
            raise SimulationError("wheel_width must be positive and wheel_buckets >= 1")
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        # same-timestamp FIFO: (seq, SimEvent) for triggered events and
        # (seq, TimerHandle) for zero-delay callbacks, in seq order
        self._ready: deque = deque()
        # timer wheel: the bucket at `_cursor` is drained through `_batch`
        self._width = float(wheel_width)
        self._inv_width = 1.0 / float(wheel_width)
        self._nbuckets = int(wheel_buckets)
        self._span = self._width * self._nbuckets
        self._buckets: List[List] = [[] for _ in range(self._nbuckets)]
        self._wheel_count = 0
        self._epoch: Optional[float] = None  # None: wheel idle, overflow holds all timers
        self._cursor = -1
        self._batch: List = []
        self._batch_pos = 0
        # sub-bucket-width delays scheduled while their bucket drains
        self._imminent: List = []
        self._head_imminent = False
        # far-future timers: (when, seq, handle) beyond the wheel window
        self._overflow: List = []
        # bumped whenever a timer lands in a timer structure, so the run
        # loop's cached head knows to re-pull
        self._timer_gen = 0
        # counters (see stats())
        self._live = 0
        self._events_processed = 0
        self._timers_scheduled = 0
        self._cancellations = 0
        self._peak_pending = 0
        self._wheel_rebuilds = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    # -- event construction helpers ---------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event firing after ``delay`` virtual seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, gen, name=name)

    def every(self, interval: float, fn: Callable, *args: Any) -> PeriodicTask:
        """Run ``fn(*args)`` every ``interval`` virtual seconds until cancelled."""
        return PeriodicTask(self, interval, fn, *args)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def call_later(self, delay: float, fn: Callable, *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` virtual seconds; cancellable."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        return self._schedule(self._now + delay, fn, args)

    def call_at(self, when: float, fn: Callable, *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` at absolute virtual time ``when``; cancellable."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past (t={when!r} < now={self._now!r})")
        return self._schedule(when, fn, args)

    # -- partition-aware entry points (single-loop: plain pass-throughs) ----
    @property
    def partition_count(self) -> int:
        """Number of event-loop partitions (1 on the single-loop kernel)."""
        return 1

    @property
    def current_partition(self) -> int:
        """Index of the partition whose events are executing right now."""
        return 0

    def call_at_partition(
        self, partition: int, when: float, fn: Callable, *args: Any
    ) -> Optional[TimerHandle]:
        """Schedule ``fn(*args)`` at ``when`` into ``partition``'s queue.

        On the single-loop kernel the partition index is ignored.  On the
        partitioned kernel a cross-partition call rides a boundary mailbox
        and must land at or past the current window horizon (conservative
        lookahead); it returns ``None`` instead of a cancellable handle.
        """
        del partition
        return self.call_at(when, fn, *args)

    def is_boundary(self, network: Any) -> bool:
        """True when ``network`` spans event-loop partitions.  Always False
        on the single-loop kernel (there is nothing to span)."""
        del network
        return False

    def call_at_barrier(self, when: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` to run at a window barrier at/after ``when``.

        Global-state mutations that are unsafe mid-window on a partitioned
        kernel (e.g. churn degrading a *boundary* link's latency below the
        in-flight window) go through this: the partitioned kernel defers
        them to the next window edge, where every shard has reached a common
        virtual time and the next window is sized from the mutated
        parameters.  The single-loop kernel has no windows, so this is a
        plain :meth:`call_at`.  Returns ``None`` (barrier hooks are not
        cancellable).
        """
        self.call_at(when, fn, *args)
        return None

    def in_partition(self, partition: int):
        """Context manager routing scheduling calls to ``partition``.

        Deployment construction uses this to boot hosts, probes and fault
        schedules into the partition that owns them; a no-op here.
        """
        del partition
        return contextlib.nullcontext(self)

    def register_wire_handler(self, name: str, fn: Callable) -> Callable:
        """Name a callback for the cross-process mailbox wire protocol.

        On a process-partitioned kernel, a closure scheduled across a
        partition boundary cannot be pickled; registering it (identically in
        every replica, i.e. at deployment-construction time) lets the wire
        codec ship ``(name, args)`` instead.  A no-op on the single loop —
        nothing crosses address spaces — so scenario code can register
        unconditionally.
        """
        del name
        return fn

    def set_build_spec(self, fn: Callable, *args: Any) -> None:
        """Declare how process-executor workers rebuild the deployment
        (``fn(sim, *args)`` run in each worker instead of fork-inheriting
        the parent graph).  Nothing forks on the single loop: a no-op, so
        scenario code can declare its build spec unconditionally."""
        del fn, args

    def register_collector(self, name: str, fn: Callable) -> Callable:
        """Register a per-partition state collector for :meth:`collect`.

        ``fn(p)`` must return a picklable snapshot of partition ``p``'s
        share of some scenario state.  On a process-partitioned kernel,
        :meth:`collect` evaluates the collector *inside the worker process
        owning each partition*; registering at construction time replicates
        the closure into every worker.  Here it simply stores the callable.
        """
        collectors = getattr(self, "_collectors", None)
        if collectors is None:
            collectors = self._collectors = {}
        collectors[name] = fn
        return fn

    def collect(self, name: str) -> List[Any]:
        """Evaluate a registered collector, one entry per partition."""
        collectors = getattr(self, "_collectors", None)
        if collectors is None or name not in collectors:
            raise SimulationError(f"no collector registered under {name!r}")
        return [collectors[name](0)]

    def _push_triggered(self, ev: SimEvent) -> None:
        # fast path: a triggered event is processed at the current timestamp
        # and is not cancellable — no TimerHandle, no timer structure.
        ev.seq = self._seq = self._seq + 1
        live = self._live = self._live + 1
        if live > self._peak_pending:
            self._peak_pending = live
        self._ready.append(ev)

    @staticmethod
    def _process_event(ev: SimEvent) -> None:
        ev._processed = True
        callbacks, ev.callbacks = ev.callbacks, []
        for fn in callbacks:
            fn(ev)

    def _schedule(self, when: float, fn: Callable, args: tuple) -> TimerHandle:
        seq = self._seq = self._seq + 1
        handle = TimerHandle(when, seq, self, fn, args)
        live = self._live = self._live + 1
        if live > self._peak_pending:
            self._peak_pending = live
        self._timers_scheduled += 1
        if when <= self._now:
            # fires at the current timestamp: FIFO deque, no heap traffic
            self._ready.append(handle)
            return handle
        self._timer_gen += 1
        epoch = self._epoch
        if epoch is not None:
            idx = int((when - epoch) * self._inv_width)
            if idx <= self._cursor:
                # lands inside the bucket currently being drained (delays
                # shorter than the bucket width: layering costs, dispatch
                # delays).  A dedicated small heap keeps this O(log m)
                # whatever the batch size.
                heapq.heappush(self._imminent, (when, seq, handle))
            elif idx < self._nbuckets:
                self._buckets[idx].append((when, seq, handle))
                self._wheel_count += 1
            else:
                heapq.heappush(self._overflow, (when, seq, handle))
        else:
            heapq.heappush(self._overflow, (when, seq, handle))
        return handle

    # -- timer-wheel internals ---------------------------------------------
    def _pop_timer(self) -> None:
        """Remove the triple last returned by :meth:`_pull` from its home."""
        if self._head_imminent:
            heapq.heappop(self._imminent)
        else:
            self._batch_pos += 1

    def _pull(self) -> Optional[tuple]:
        """The next live timer triple in (when, seq) order, or None.  The
        triple is left in place; pop it with :meth:`_pop_timer`."""
        imminent = self._imminent
        while imminent and imminent[0][2]._state != _PENDING:
            heapq.heappop(imminent)
        while True:
            batch = self._batch
            pos = self._batch_pos
            size = len(batch)
            while pos < size:
                triple = batch[pos]
                if triple[2]._state == _PENDING:
                    self._batch_pos = pos
                    if imminent and imminent[0] < triple:
                        self._head_imminent = True
                        return imminent[0]
                    self._head_imminent = False
                    return triple
                pos += 1
            self._batch_pos = pos
            if imminent:
                # everything in `imminent` precedes every future bucket
                self._head_imminent = True
                return imminent[0]
            if self._wheel_count:
                cursor = self._cursor + 1
                buckets = self._buckets
                nbuckets = self._nbuckets
                while cursor < nbuckets and not buckets[cursor]:
                    cursor += 1
                if cursor < nbuckets:
                    self._cursor = cursor
                    bucket = buckets[cursor]
                    buckets[cursor] = []
                    self._wheel_count -= len(bucket)
                    bucket.sort()
                    self._batch = bucket
                    self._batch_pos = 0
                    continue
                self._wheel_count = 0  # pragma: no cover - defensive resync
            # wheel exhausted: build the next window around the overflow head
            overflow = self._overflow
            while overflow and overflow[0][2]._state != _PENDING:
                heapq.heappop(overflow)
            if not overflow:
                self._epoch = None
                self._cursor = -1
                self._batch = []
                self._batch_pos = 0
                return None
            epoch = overflow[0][0]
            window_end = epoch + self._span
            self._epoch = epoch
            self._cursor = -1
            self._wheel_rebuilds += 1
            buckets = self._buckets
            nbuckets = self._nbuckets
            inv_width = self._inv_width
            count = 0
            while overflow and overflow[0][0] < window_end:
                triple = heapq.heappop(overflow)
                if triple[2]._state != _PENDING:
                    continue
                idx = int((triple[0] - epoch) * inv_width)
                if idx >= nbuckets:  # pragma: no cover - float boundary guard
                    idx = nbuckets - 1
                buckets[idx].append(triple)
                count += 1
            self._wheel_count = count
            self._batch = []
            self._batch_pos = 0

    def _execute_ready(self, item) -> None:
        """Run one ``_ready`` entry (SimEvent or zero-delay TimerHandle)."""
        self._live -= 1
        self._events_processed += 1
        if item.__class__ is TimerHandle:
            item._state = _FIRED
            fn = item.fn
            args = item.args
            item.fn = None
            item.args = None
            fn(*args)
        else:
            item._processed = True
            callbacks, item.callbacks = item.callbacks, []
            for fn in callbacks:
                fn(item)

    def _execute_timer(self, handle: TimerHandle) -> None:
        when = handle.when
        if when > self._now:
            self._now = when
        handle._state = _FIRED
        fn = handle.fn
        args = handle.args
        handle.fn = None
        handle.args = None
        self._live -= 1
        self._events_processed += 1
        fn(*args)

    def _next_ready(self):
        """The live head of the same-timestamp FIFO, or None."""
        ready = self._ready
        while ready:
            item = ready[0]
            if item.__class__ is not TimerHandle or item._state == _PENDING:
                return item
            ready.popleft()
        return None

    # -- main loop ---------------------------------------------------------
    def step(self) -> bool:
        """Run one scheduled entry.  Returns False when nothing is pending."""
        ready_head = self._next_ready()
        timer_head = self._pull()
        if ready_head is not None and (
            timer_head is None
            or self._now < timer_head[0]
            or (self._now == timer_head[0] and ready_head.seq < timer_head[1])
        ):
            self._ready.popleft()
            self._execute_ready(ready_head)
            return True
        if timer_head is None:
            return False
        self._pop_timer()
        self._execute_timer(timer_head[2])
        return True

    def run(self, until: Optional[Any] = None, max_time: Optional[float] = None) -> Any:
        """Run the loop.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain; a :class:`SimEvent` — run
            until that event is processed and return its value (raising its
            exception if it failed); a number — run until virtual time
            reaches that instant.
        max_time:
            Safety cap on virtual time; exceeding it raises
            :class:`SimulationError` (used by tests as a deadlock guard).
        """
        self._stopped = False
        target_event: Optional[SimEvent] = None
        target_time: Optional[float] = None
        if isinstance(until, SimEvent):
            target_event = until
        elif until is not None:
            target_time = float(until)

        # The loop interleaves the same-timestamp FIFO with due timers in
        # exact (when, seq) order.  The next-timer triple is cached across
        # ready-FIFO drains: executed events can only add timers through
        # `_schedule`, which bumps `_timer_gen`, and cancellations are
        # caught by the handle-state check.
        ready = self._ready
        timer = None
        timer_gen = -1
        while not self._stopped:
            if target_event is not None and target_event._processed:
                break
            if timer is None or timer_gen != self._timer_gen or timer[2]._state != _PENDING:
                timer = self._pull()
                timer_gen = self._timer_gen
            if ready:
                item = ready[0]
                is_handle = item.__class__ is TimerHandle
                if is_handle and item._state != _PENDING:
                    ready.popleft()
                    continue
                if (
                    timer is None
                    or self._now < timer[0]
                    or (self._now == timer[0] and item.seq < timer[1])
                ):
                    ready.popleft()
                    self._live -= 1
                    self._events_processed += 1
                    if is_handle:
                        item._state = _FIRED
                        fn = item.fn
                        args = item.args
                        item.fn = None
                        item.args = None
                        fn(*args)
                    else:
                        item._processed = True
                        callbacks = item.callbacks
                        item.callbacks = []
                        for fn in callbacks:
                            fn(item)
                    continue
            if timer is None:
                if target_event is not None and not target_event.triggered:
                    raise SimulationError(
                        f"simulation ran out of events while waiting for {target_event!r} "
                        "(deadlock: nobody will ever trigger it)"
                    )
                break
            when = timer[0]
            if target_time is not None and when > target_time:
                self._now = target_time
                break
            if max_time is not None and when > max_time:
                raise SimulationError(f"virtual time exceeded max_time={max_time}")
            self._pop_timer()
            self._execute_timer(timer[2])
            timer = None

        if target_event is not None and target_event.triggered:
            if target_event.ok:
                return target_event.value
            raise target_event.value
        return None

    def stop(self) -> None:
        """Stop :meth:`run` at the next iteration (used by watchdogs)."""
        self._stopped = True

    # -- introspection -----------------------------------------------------
    def pending_count(self) -> int:
        """Number of *live* scheduled entries (cancelled entries awaiting
        lazy deletion are not counted)."""
        return self._live

    def stats(self) -> SimStats:
        """Kernel counters: events processed, timers scheduled, cancellations,
        peak pending entries, wheel-window rebuilds."""
        return SimStats(
            events_processed=self._events_processed,
            timers_scheduled=self._timers_scheduled,
            cancellations=self._cancellations,
            peak_pending=self._peak_pending,
            wheel_rebuilds=self._wheel_rebuilds,
        )


class ReferenceSimulator(Simulator):
    """The historical monolithic-heap scheduler, kept as an executable
    ordering specification.

    Everything — zero-delay callbacks, triggered events, near and far
    timers — goes through one ``heapq`` ordered by ``(when, seq)``, exactly
    like the pre-wheel kernel.  The tier-1 determinism tests run recorded
    scenarios on both schedulers and assert trace equality; the scale
    benchmark uses it to quantify the wheel's gain on identical workloads.
    Cancellation is honoured (dead entries are skipped when popped) so the
    two kernels accept the same API.
    """

    def __init__(self, *, wheel_width: float = 64e-6, wheel_buckets: int = 512) -> None:
        super().__init__(wheel_width=wheel_width, wheel_buckets=wheel_buckets)
        self._heap: List = []

    def _push_triggered(self, ev: SimEvent) -> None:
        self._schedule(self._now, self._process_event, (ev,))

    def _schedule(self, when: float, fn: Callable, args: tuple) -> TimerHandle:
        seq = self._seq = self._seq + 1
        handle = TimerHandle(when, seq, self, fn, args)
        live = self._live = self._live + 1
        if live > self._peak_pending:
            self._peak_pending = live
        self._timers_scheduled += 1
        heapq.heappush(self._heap, (when, seq, handle))
        return handle

    def _peek_live(self) -> Optional[TimerHandle]:
        heap = self._heap
        while heap:
            handle = heap[0][2]
            if handle._state == _PENDING:
                return handle
            heapq.heappop(heap)
        return None

    def step(self) -> bool:
        handle = self._peek_live()
        if handle is None:
            return False
        heapq.heappop(self._heap)
        self._execute_timer(handle)
        return True

    def run(self, until: Optional[Any] = None, max_time: Optional[float] = None) -> Any:
        self._stopped = False
        target_event: Optional[SimEvent] = None
        target_time: Optional[float] = None
        if isinstance(until, SimEvent):
            target_event = until
        elif until is not None:
            target_time = float(until)

        while not self._stopped:
            if target_event is not None and target_event._processed:
                break
            head = self._peek_live()
            if head is None:
                if target_event is not None and not target_event.triggered:
                    raise SimulationError(
                        f"simulation ran out of events while waiting for {target_event!r} "
                        "(deadlock: nobody will ever trigger it)"
                    )
                break
            if target_time is not None and head.when > target_time:
                self._now = target_time
                break
            if max_time is not None and head.when > max_time:
                raise SimulationError(f"virtual time exceeded max_time={max_time}")
            heapq.heappop(self._heap)
            self._execute_timer(head)

        if target_event is not None and target_event.triggered:
            if target_event.ok:
                return target_event.value
            raise target_event.value
        return None
